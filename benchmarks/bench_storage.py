"""Storage-tier latency: the paged disk backend vs the in-memory engine.

For each workload dataset the differential statement mix (see
``repro.backends.differential``) is executed end to end on the in-memory
backend and on the disk backend — the same compiled plans, with only the
storage tier underneath them swapped — best-of-N per backend.  As with
``bench_backends.py``, the interesting number is the **ratio**
(disk_ms / memory_ms): both backends run in the same process on the same
data and statements, so the ratio is stable across machines in a way raw
milliseconds are not.

Alongside the query mix, materialization itself is timed (heap files,
B+-trees, hash indexes and the SPIMI text index for the whole database),
and the buffer pool's hit rate over the sweep is recorded — a pool
thrashing its way through the mix shows up here long before raw latency
moves.

Three things are asserted before any timing means anything:

* both backends return canonically equal rows for every statement
  (a re-statement of ``python -m repro diff --backend disk``);
* the pool's page budget held — residency never exceeded capacity
  (``DiskBackend.execute`` raises otherwise);
* the mix is non-empty for every dataset.

Numbers go to ``BENCH_storage.json``; ``check_regression.py`` compares
them against the committed ``BENCH_storage_baseline.json``.  Refresh the
baseline by copying the result file over it after an intentional storage
change.

Run standalone (``python benchmarks/bench_storage.py``) or via
``pytest benchmarks/bench_storage.py``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import DiskBackend, MemoryBackend  # noqa: E402
from repro.backends.differential import collect_statements  # noqa: E402
from repro.backends.normalize import canonical_rows  # noqa: E402

DATASETS = ("university", "tpch", "acmdl")
REPEATS = 3  # best-of-N to shed scheduler noise

#: pool small enough that the workload datasets do not fit resident,
#: so the sweep actually exercises eviction and write-back
POOL_CAPACITY = 64
PAGE_SIZE = 2048

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE / "BENCH_storage.json"
BASELINE_PATH = _HERE / "BENCH_storage_baseline.json"

# the disk backend pays for page decode + pool bookkeeping on every
# access; it must still stay within this factor of the in-memory
# engine on every workload mix, or the storage tier has regressed
MAX_DISK_VS_MEMORY = 60.0

# for a dataset that fits in the pool, a repeated statement mix must be
# served mostly from resident frames; datasets larger than the pool are
# exempt — repeated sequential scans under LRU legitimately miss (the
# classic sequential-flooding pattern), and the ratio gate covers them
MIN_HIT_RATE = 0.50


def _run_mix(backend, statements) -> None:
    for _qid, _source, select in statements:
        backend.execute(select)


def _time_mix(backend, statements) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _run_mix(backend, statements)
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> Dict[str, object]:
    """Per-dataset memory/disk latency, materialization time, hit rate."""
    datasets: Dict[str, Dict[str, float]] = {}
    for dataset in DATASETS:
        database, statements = collect_statements(dataset)
        assert statements, f"{dataset}: empty statement mix"
        memory = MemoryBackend()
        memory.load(database)
        disk = DiskBackend(pool_capacity=POOL_CAPACITY, page_size=PAGE_SIZE)
        try:
            start = time.perf_counter()
            disk.load(database)
            materialize_s = time.perf_counter() - start
            manifest = disk.storage_manifest()
            # correctness first: a benchmark of disagreeing backends
            # measures nothing (and warms both backends for the timing)
            for qid, source, select in statements:
                fast = canonical_rows(memory.execute(select).rows)
                paged = canonical_rows(disk.execute(select).rows)
                assert fast == paged, (
                    f"{dataset} {qid} [{source}]: backends disagree"
                )
            memory_s = _time_mix(memory, statements)
            disk_s = _time_mix(disk, statements)
            counters = disk.pool_counters()
        finally:
            disk.close()
        accesses = counters["hits"] + counters["misses"]
        datasets[dataset] = {
            "statements": len(statements),
            "memory_ms": memory_s * 1000.0,
            "disk_ms": disk_s * 1000.0,
            "ratio": disk_s / memory_s if memory_s else float("inf"),
            "materialize_ms": materialize_s * 1000.0,
            "pages": manifest["totals"]["pages"],
            "rows": manifest["totals"]["rows"],
            "hit_rate": counters["hits"] / accesses if accesses else 1.0,
            "max_resident": counters["max_resident"],
        }
    return {
        "pool_capacity": POOL_CAPACITY,
        "page_size": PAGE_SIZE,
        "datasets": datasets,
    }


def check(result: Dict[str, object]) -> List[str]:
    """Failure messages (empty when the check passes)."""
    failures: List[str] = []
    for dataset, numbers in result["datasets"].items():
        ratio = float(numbers["ratio"])
        if ratio > MAX_DISK_VS_MEMORY:
            failures.append(
                f"{dataset}: disk backend is {ratio:.1f}x slower than the "
                f"in-memory engine (allowed: {MAX_DISK_VS_MEMORY:.1f}x)"
            )
        hit_rate = float(numbers["hit_rate"])
        fits = int(numbers["pages"]) <= int(result["pool_capacity"])
        if fits and hit_rate < MIN_HIT_RATE:
            failures.append(
                f"{dataset}: buffer pool hit rate {hit_rate:.2f} below "
                f"{MIN_HIT_RATE:.2f} — the pool is thrashing"
            )
        if int(numbers["max_resident"]) > int(result["pool_capacity"]):
            failures.append(
                f"{dataset}: {numbers['max_resident']} resident frames "
                f"exceeded the page budget of {result['pool_capacity']}"
            )
    return failures


def write_result(result: Dict[str, object]) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_result(result: Dict[str, object]) -> str:
    lines = []
    for dataset, numbers in result["datasets"].items():
        lines.append(
            f"{dataset}: {numbers['statements']} statements over "
            f"{numbers['pages']} pages, "
            f"memory {numbers['memory_ms']:.1f} ms, "
            f"disk {numbers['disk_ms']:.1f} ms "
            f"(ratio {numbers['ratio']:.2f}), "
            f"materialize {numbers['materialize_ms']:.1f} ms, "
            f"hit rate {numbers['hit_rate']:.2f}"
        )
    return "\n".join(lines)


def test_storage_agrees_and_holds_budget():
    result = measure()
    write_result(result)
    failures = check(result)
    assert not failures, "; ".join(failures) + "\n" + format_result(result)


def main() -> int:
    result = measure()
    write_result(result)
    print(format_result(result))
    print(f"wrote {RESULT_PATH}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
