"""Benchmark of Figure 11: SQL-generation time, semantic engine vs SQAK.

Figure 11 plots only the time to *generate* SQL (not execute it) for every
evaluation query on both systems.  Each parametrized benchmark measures one
(query, system) pair; the per-query series is printed at the end of the
module.  The paper's qualitative claim — both in the millisecond range,
the semantic approach slightly slower — is asserted.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import UnsupportedQueryError
from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES
from repro.observability import Tracer


@pytest.fixture(scope="module")
def series():
    return {"TPCH": {}, "ACMDL": {}}


def _semantic_stages_ms(engine, text):
    """Per-stage milliseconds for one traced run of the semantic engine."""
    trace = engine.search(text, trace=True).trace
    return {name: round(s * 1000.0, 3) for name, s in trace.stage_times().items()}


def _sqak_stages_ms(sqak, text):
    """Per-stage milliseconds for one traced SQAK compile."""
    tracer = Tracer()
    with tracer.span("search", query=text):
        sqak.compile(text, tracer=tracer)
    return {
        name: round(s * 1000.0, 3)
        for name, s in tracer.trace.stage_times().items()
    }


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: f"{s.qid}-ours")
def test_fig11a_semantic_generation(benchmark, spec, tpch_engine, series):
    result = benchmark(lambda: tpch_engine.compile(spec.text))
    assert result
    series["TPCH"].setdefault(spec.qid, {})["ours"] = benchmark.stats.stats.mean
    benchmark.extra_info["system"] = "proposed"
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["stages_ms"] = _semantic_stages_ms(tpch_engine, spec.text)


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: f"{s.qid}-sqak")
def test_fig11a_sqak_generation(benchmark, spec, tpch_sqak, series):
    if spec.sqak_na:
        pytest.skip("SQAK does not handle this query (N.A. in the paper)")
    result = benchmark(lambda: tpch_sqak.compile(spec.text))
    assert result
    series["TPCH"].setdefault(spec.qid, {})["sqak"] = benchmark.stats.stats.mean
    benchmark.extra_info["system"] = "SQAK"
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["stages_ms"] = _sqak_stages_ms(tpch_sqak, spec.text)


@pytest.mark.parametrize("spec", ACMDL_QUERIES, ids=lambda s: f"{s.qid}-ours")
def test_fig11b_semantic_generation(benchmark, spec, acmdl_engine, series):
    result = benchmark(lambda: acmdl_engine.compile(spec.text))
    assert result
    series["ACMDL"].setdefault(spec.qid, {})["ours"] = benchmark.stats.stats.mean
    benchmark.extra_info["system"] = "proposed"
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["stages_ms"] = _semantic_stages_ms(acmdl_engine, spec.text)


@pytest.mark.parametrize("spec", ACMDL_QUERIES, ids=lambda s: f"{s.qid}-sqak")
def test_fig11b_sqak_generation(benchmark, spec, acmdl_sqak, series):
    if spec.sqak_na:
        pytest.skip("SQAK does not handle this query (N.A. in the paper)")
    result = benchmark(lambda: acmdl_sqak.compile(spec.text))
    assert result
    series["ACMDL"].setdefault(spec.qid, {})["sqak"] = benchmark.stats.stats.mean
    benchmark.extra_info["system"] = "SQAK"
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["stages_ms"] = _sqak_stages_ms(acmdl_sqak, spec.text)


def _format_series(series) -> str:
    lines = []
    for dataset, label in (("TPCH", "Figure 11(a)"), ("ACMDL", "Figure 11(b)")):
        rows = series[dataset]
        lines.append(f"{label} - SQL generation time ({dataset})")
        lines.append(f"{'#':<4}{'Proposed (ms)':>16}{'SQAK (ms)':>12}")
        for qid in sorted(rows):
            ours_ms = rows[qid].get("ours", 0.0) * 1000.0
            sqak = rows[qid].get("sqak")
            sqak_text = f"{sqak * 1000.0:.3f}" if sqak is not None else "N.A."
            lines.append(f"{qid:<4}{ours_ms:>16.3f}{sqak_text:>12}")
        lines.append("")
    return "\n".join(lines)


def test_print_figure11(benchmark, series):
    """Print both Figure-11 series and assert the paper's shape claims."""
    text = benchmark(_format_series, series)
    print()
    print(text)
    for dataset in ("TPCH", "ACMDL"):
        for qid, times in series[dataset].items():
            # both systems generate SQL fast (paper: single-digit ms)
            assert times.get("ours", 0.0) * 1000.0 < 1000.0, (dataset, qid)
