"""Benchmark + reproduction of Table 6: normalized ACMDL queries A1-A8."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ACMDL_QUERIES,
    format_answer_table,
    pick_interpretation,
    run_query,
)


@pytest.fixture(scope="module")
def collected():
    return {}


@pytest.mark.parametrize("spec", ACMDL_QUERIES, ids=lambda s: s.qid)
def test_table6_query(benchmark, spec, acmdl_engine, acmdl_sqak, collected):
    outcome = run_query(acmdl_engine, acmdl_sqak, spec)
    collected[spec.qid] = outcome

    def pipeline():
        interpretations = acmdl_engine.compile(spec.text)
        chosen = pick_interpretation(interpretations, spec)
        return acmdl_engine.executor.execute(chosen.select)

    result = benchmark(pipeline)
    assert len(result) == len(outcome.semantic_result)
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["ours"] = outcome.summarize("semantic")
    benchmark.extra_info["sqak"] = outcome.summarize("sqak")


def test_print_table6(benchmark, collected):
    outcomes = [collected[spec.qid] for spec in ACMDL_QUERIES if spec.qid in collected]
    assert len(outcomes) == len(ACMDL_QUERIES)
    text = benchmark(
        format_answer_table, "Table 6 - answers on normalized ACMDL", outcomes
    )
    print()
    print(text)
