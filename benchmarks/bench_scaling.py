"""Scaling behaviour beyond the paper: end-to-end query time vs data size.

The paper fixes one dataset per schema; this bench sweeps the TPC-H
generator's scale to show how compile time (schema-bound, flat) and
execution time (data-bound, growing) separate — the observation behind the
paper's claim that SQL generation overhead is negligible.
"""

from __future__ import annotations

import pytest

from repro.datasets import TpchConfig, generate_tpch
from repro.engine import KeywordSearchEngine
from repro.experiments import TPCH_QUERIES, pick_interpretation, spec_by_id
from repro.relational.executor import Executor

SCALES = {
    "small": TpchConfig(seed=42, parts=80, suppliers=30, customers=60, orders=300),
    "medium": TpchConfig(seed=42),
    "large": TpchConfig(
        seed=42, parts=320, suppliers=120, customers=240, orders=2400
    ),
}

T6 = spec_by_id("T6")


@pytest.fixture(scope="module")
def engines():
    return {
        name: KeywordSearchEngine(generate_tpch(config))
        for name, config in SCALES.items()
    }


@pytest.mark.parametrize("scale", list(SCALES), ids=list(SCALES))
def test_compile_time_is_schema_bound(benchmark, scale, engines):
    """SQL generation touches the schema graph, not the data: compile time
    must stay flat across scales."""
    engine = engines[scale]
    interpretations = benchmark(lambda: engine.compile(T6.text))
    assert interpretations
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["rows"] = sum(engine.database.row_counts().values())


@pytest.mark.parametrize("scale", list(SCALES), ids=list(SCALES))
def test_execution_time_grows_with_data(benchmark, scale, engines):
    engine = engines[scale]
    chosen = pick_interpretation(engine.compile(T6.text), T6)
    select = chosen.select
    result = benchmark(lambda: engine.executor.execute(select))
    assert len(result) > 0
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["suppliers"] = len(result)


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
def test_execution_by_mode(benchmark, mode, engines):
    """Compiled plans vs per-row AST interpretation on the large scale.

    Same Select, same database, same results — the compiled path swaps
    tree-walk evaluation for closures and index-backed scans.
    """
    engine = engines["large"]
    chosen = pick_interpretation(engine.compile(T6.text), T6)
    select = chosen.select
    executor = Executor(engine.database, compile_plans=(mode == "compiled"))
    executor.execute(select)  # warm plan cache / build indexes
    result = benchmark(lambda: executor.execute(select))
    assert result == Executor(engine.database, compile_plans=False).execute(select)
    benchmark.extra_info["mode"] = mode


def test_search_many_batch(benchmark, engines):
    """Warm-cache batch search over the experiment query mix."""
    engine = engines["large"]
    texts = [spec.text for spec in TPCH_QUERIES] * 2
    engine.search_many(texts, parallel=4)  # warm the caches
    results = benchmark(lambda: engine.search_many(texts, parallel=4))
    assert len(results) == len(texts)
