"""Backend latency comparison: the in-memory engine vs SQLite.

For every workload dataset the full statement mix the differential
harness compares (top-k semantic interpretations plus the SQAK baseline
statements — see ``repro.backends.differential``) is executed end to end
on both registered backends, best-of-N per backend.  The interesting
number is the **ratio** (sqlite_ms / memory_ms), which is relative to
the machine the way ``check_regression.py``'s other gates are: both
backends run in the same process on the same data and statements, so the
ratio is stable where raw milliseconds are not.

Two things are asserted before any timing means anything:

* both backends return canonically equal rows for every statement in
  the mix (a re-statement of ``python -m repro diff`` — a benchmark of
  two backends that disagree measures nothing);
* the mix is non-empty for every dataset.

Numbers go to ``BENCH_backends.json``; ``check_regression.py`` compares
them against the committed ``BENCH_backends_baseline.json``.  Refresh
the baseline by copying the result file over it after an intentional
backend change.

Run standalone (``python benchmarks/bench_backends.py``) or via
``pytest benchmarks/bench_backends.py``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends import MemoryBackend, SqliteBackend  # noqa: E402
from repro.backends.differential import collect_statements  # noqa: E402
from repro.backends.normalize import canonical_rows  # noqa: E402

DATASETS = ("university", "tpch", "tpch-unnorm", "acmdl", "acmdl-unnorm")
REPEATS = 3  # best-of-N to shed scheduler noise

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE / "BENCH_backends.json"
BASELINE_PATH = _HERE / "BENCH_backends_baseline.json"

# the memory backend (compiled plans, hash joins, plan cache) must never
# be slower than round-tripping SQL text through SQLite by more than
# this factor on any workload — if it is, the executor has regressed
MAX_MEMORY_VS_SQLITE = 5.0


def _run_mix(backend, statements) -> None:
    for _qid, _source, select in statements:
        backend.execute(select)


def _time_mix(backend, statements) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _run_mix(backend, statements)
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> Dict[str, object]:
    """Per-dataset memory and SQLite latency over the diff statement mix."""
    datasets: Dict[str, Dict[str, float]] = {}
    for dataset in DATASETS:
        database, statements = collect_statements(dataset)
        assert statements, f"{dataset}: empty statement mix"
        memory = MemoryBackend()
        memory.load(database)
        sqlite = SqliteBackend()
        sqlite.load(database)
        try:
            # correctness first: a benchmark of disagreeing backends
            # measures nothing (and warms both backends for the timing)
            for qid, source, select in statements:
                fast = canonical_rows(memory.execute(select).rows)
                oracle = canonical_rows(sqlite.execute(select).rows)
                assert fast == oracle, (
                    f"{dataset} {qid} [{source}]: backends disagree"
                )
            memory_s = _time_mix(memory, statements)
            sqlite_s = _time_mix(sqlite, statements)
        finally:
            sqlite.close()
        datasets[dataset] = {
            "statements": len(statements),
            "memory_ms": memory_s * 1000.0,
            "sqlite_ms": sqlite_s * 1000.0,
            "ratio": sqlite_s / memory_s if memory_s else float("inf"),
        }
    return {"datasets": datasets}


def check(result: Dict[str, object]) -> List[str]:
    """Failure messages (empty when the check passes)."""
    failures: List[str] = []
    for dataset, numbers in result["datasets"].items():
        ratio = float(numbers["ratio"])
        if ratio < 1.0 / MAX_MEMORY_VS_SQLITE:
            failures.append(
                f"{dataset}: memory backend is {1.0 / ratio:.1f}x slower "
                f"than SQLite (allowed: {MAX_MEMORY_VS_SQLITE:.1f}x)"
            )
    return failures


def write_result(result: Dict[str, object]) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_result(result: Dict[str, object]) -> str:
    lines = []
    for dataset, numbers in result["datasets"].items():
        lines.append(
            f"{dataset}: {numbers['statements']} statements, "
            f"memory {numbers['memory_ms']:.1f} ms, "
            f"sqlite {numbers['sqlite_ms']:.1f} ms "
            f"(ratio {numbers['ratio']:.2f})"
        )
    return "\n".join(lines)


def test_backends_agree_and_hold_ratio():
    result = measure()
    write_result(result)
    failures = check(result)
    assert not failures, "; ".join(failures) + "\n" + format_result(result)


def main() -> int:
    result = measure()
    write_result(result)
    print(format_result(result))
    print(f"wrote {RESULT_PATH}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
