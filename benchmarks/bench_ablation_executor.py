"""Ablation 4 (DESIGN.md): hash-join planner vs naive nested joins.

Runs the same three-way join query under both executor modes; correctness
is asserted (identical results), and the benchmark shows the planner's
speedup on the TPC-H scale used in the evaluation.
"""

from __future__ import annotations

import pytest

from repro.relational.executor import Executor
from repro.sql.parser import parse

QUERY = (
    "SELECT N.nationkey, COUNT(O.orderkey) AS numorders "
    'FROM "Order" O, Customer C, Nation N '
    "WHERE O.custkey = C.custkey AND C.nationkey = N.nationkey "
    "GROUP BY N.nationkey"
)

SMALL_QUERY = (
    "SELECT COUNT(L.partkey) AS n FROM Lineitem L, Part P "
    "WHERE L.partkey = P.partkey AND P.pname LIKE '%royal olive%'"
)


def test_hash_join_planner(benchmark, tpch_db):
    executor = Executor(tpch_db, use_hash_joins=True)
    select = parse(QUERY)
    result = benchmark(lambda: executor.execute(select))
    assert len(result) == 25
    benchmark.extra_info["variant"] = "hash joins"


def test_naive_cartesian_planner(benchmark, tpch_db):
    executor = Executor(tpch_db, use_hash_joins=False)
    # the naive planner is quadratic; use the two-table query to keep the
    # benchmark finite while still showing the gap
    select = parse(SMALL_QUERY)
    result = benchmark(lambda: executor.execute(select))
    assert result.scalar() > 0
    benchmark.extra_info["variant"] = "cartesian + filter"


def test_both_planners_agree(tpch_db):
    fast = Executor(tpch_db, use_hash_joins=True)
    slow = Executor(tpch_db, use_hash_joins=False)
    select = parse(SMALL_QUERY)
    assert fast.execute(select) == slow.execute(select)


def test_hash_join_beats_naive_on_two_table_join(benchmark, tpch_db):
    executor = Executor(tpch_db, use_hash_joins=True)
    select = parse(SMALL_QUERY)
    result = benchmark(lambda: executor.execute(select))
    assert result.scalar() > 0
    benchmark.extra_info["variant"] = "hash joins (two-table)"
