"""Closed-loop load generator for the query service.

Measures the serving layer the way the ISSUE's acceptance criteria are
phrased: a single-client baseline p95 first, then closed-loop client
fleets at 1x / 2x / 4x the worker count hammering the same service
instance.  For every offered load it reports p50/p95/p99 latency of the
*admitted* requests plus the shed rate, and asserts the two service-
level guarantees:

* at 4x sustained load the service stays up and every non-admitted
  request is a **clean** rejection (HTTP 429 shed — never a hang, never
  an unhandled error);
* p95 latency of admitted requests stays within ``MAX_P95_RATIO`` of
  the single-client p95 — overload makes the service *refuse* work, not
  slow down the work it accepted.

The result cache runs with ``ttl=0`` so every admitted request does real
engine work (single-flight coalescing still applies, as it would in
production); numbers are written to ``BENCH_service.json`` and compared
against the committed ``BENCH_service_baseline.json`` by
``check_regression.py``.  Refresh the baseline by copying the result
file over it after an intentional serving-layer change.

Run standalone (``python benchmarks/bench_service.py``) or via
``pytest benchmarks/bench_service.py``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import university_database  # noqa: E402
from repro.engine import KeywordSearchEngine  # noqa: E402
from repro.service import QueryService, ServiceConfig, ServiceRequest  # noqa: E402

# One worker, two queue slots: the engine is pure-Python CPU-bound work,
# so parallel workers only time-slice the GIL and inflate each other's
# service time — that would charge a measurement artifact against the
# p95-ratio guarantee.  One worker keeps admitted latency a clean
# function of (service time + bounded queue wait); the concurrency under
# test is the client fleet against admission control, which is exactly
# the serving-layer contract.
WORKERS = 1
QUEUE_LIMIT = 2
MULTIPLIERS = (1, 2, 4)  # client fleets as multiples of the worker count
REQUESTS_PER_LEVEL = 96
SINGLE_CLIENT_REQUESTS = 48
MAX_P95_RATIO = 3.0  # admitted p95 at 4x load vs single-client p95

QUERIES = [
    "COUNT Lecturer GROUPBY Course",
    "Green SUM Credit",
    "COUNT Student GROUPBY Course",
    "AVG Credit",
    "COUNT Student",
    "COUNT Student GROUPBY Grade",
    "COUNT Enrol",
    "MAX COUNT Student",
]

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE / "BENCH_service.json"
BASELINE_PATH = _HERE / "BENCH_service_baseline.json"


def _build_service() -> QueryService:
    engine = KeywordSearchEngine(university_database())
    service = QueryService(
        ServiceConfig(
            max_workers=WORKERS,
            queue_limit=QUEUE_LIMIT,
            cache_ttl_s=0.0,  # every admitted request does real work
            default_deadline_s=30.0,
        )
    )
    service.register_dataset("university", engine)
    return service


def percentile(samples: List[float], q: float) -> float:
    """The *q*-quantile (0..1) by nearest-rank on sorted samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _run_clients(
    service: QueryService, clients: int, total_requests: int
) -> List[Dict[str, object]]:
    """Closed-loop fleet: each client fires its share back-to-back."""
    per_client = total_requests // clients
    records: List[Dict[str, object]] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        for i in range(per_client):
            query = QUERIES[(index * per_client + i) % len(QUERIES)]
            started = time.perf_counter()
            response = service.serve(
                ServiceRequest(query=query), timeout=120.0
            )
            latency_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                records.append(
                    {"status": response.status, "latency_ms": latency_ms}
                )

    threads = [
        threading.Thread(
            target=client, args=(index,), name=f"bench-client-{index}", daemon=True
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300.0)
    assert not any(thread.is_alive() for thread in threads), "client hang"
    return records


def _summarize(records: List[Dict[str, object]]) -> Dict[str, object]:
    admitted = [
        float(record["latency_ms"])
        for record in records
        if record["status"] == "ok"
    ]
    shed = sum(1 for record in records if record["status"] == "shed")
    other = sorted(
        {
            str(record["status"])
            for record in records
            if record["status"] not in ("ok", "shed")
        }
    )
    return {
        "requests": len(records),
        "admitted": len(admitted),
        "shed": shed,
        "shed_rate": shed / len(records) if records else 0.0,
        "unexpected_statuses": other,
        "p50_ms": percentile(admitted, 0.50),
        "p95_ms": percentile(admitted, 0.95),
        "p99_ms": percentile(admitted, 0.99),
    }


def measure() -> Dict[str, object]:
    service = _build_service()
    with service:
        # warm the engine (pattern + plan caches) outside the timings
        _run_clients(service, 1, 2 * len(QUERIES))
        single = _summarize(
            _run_clients(service, 1, SINGLE_CLIENT_REQUESTS)
        )
        loads: Dict[str, Dict[str, object]] = {}
        for multiplier in MULTIPLIERS:
            loads[f"{multiplier}x"] = _summarize(
                _run_clients(
                    service, WORKERS * multiplier, REQUESTS_PER_LEVEL
                )
            )
        counters = service.metrics_snapshot()["service"]["counters"]
    peak = loads[f"{MULTIPLIERS[-1]}x"]
    single_p95 = float(single["p95_ms"]) or 1e-9
    return {
        "workers": WORKERS,
        "queue_limit": QUEUE_LIMIT,
        "single_client": single,
        "loads": loads,
        "p95_ratio_at_peak": float(peak["p95_ms"]) / single_p95,
        "shed_rate_at_peak": float(peak["shed_rate"]),
        "counters_reconcile": counters["requests_admitted"]
        == counters.get("result_cache_hits", 0)
        + counters.get("result_cache_misses", 0)
        + counters.get("singleflight_coalesced", 0),
    }


def check(result: Dict[str, object]) -> List[str]:
    """Failure messages (empty when the serving guarantees hold)."""
    failures: List[str] = []
    for level, summary in result["loads"].items():
        if summary["unexpected_statuses"]:
            failures.append(
                f"{level}: non-clean outcomes under load: "
                f"{summary['unexpected_statuses']}"
            )
        if summary["admitted"] == 0:
            failures.append(f"{level}: no requests admitted at all")
    ratio = float(result["p95_ratio_at_peak"])
    if ratio > MAX_P95_RATIO:
        failures.append(
            f"admitted p95 at peak load is {ratio:.2f}x the single-client "
            f"p95 (allowed: {MAX_P95_RATIO:.1f}x) — overload must shed, "
            f"not slow down"
        )
    if not result["counters_reconcile"]:
        failures.append("service counters do not reconcile after the run")
    return failures


def write_result(result: Dict[str, object]) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_result(result: Dict[str, object]) -> str:
    lines = [
        f"service bench ({result['workers']} workers, "
        f"queue {result['queue_limit']}): "
        f"single-client p95 {result['single_client']['p95_ms']:.1f} ms"
    ]
    for level, summary in result["loads"].items():
        lines.append(
            f"  {level:>3} load: p50 {summary['p50_ms']:.1f} ms, "
            f"p95 {summary['p95_ms']:.1f} ms, p99 {summary['p99_ms']:.1f} ms, "
            f"shed {100.0 * summary['shed_rate']:.0f}% "
            f"({summary['shed']}/{summary['requests']})"
        )
    lines.append(
        f"  peak p95 ratio {result['p95_ratio_at_peak']:.2f}x "
        f"(allowed {MAX_P95_RATIO:.1f}x)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest wiring (collected by `pytest benchmarks/`)
# ----------------------------------------------------------------------
def test_service_survives_overload():
    result = measure()
    write_result(result)
    failures = check(result)
    assert not failures, "; ".join(failures) + "\n" + format_result(result)


def main() -> int:
    result = measure()
    write_result(result)
    print(format_result(result))
    print(f"wrote {RESULT_PATH}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
