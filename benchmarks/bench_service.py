"""Closed-loop load generator for the query service, swept over the
worker-process tier.

Three serving configurations are measured with the same client fleet
logic:

* ``w1`` — the historical single-thread in-process service (one worker
  thread, two queue slots).  This is the committed baseline the p95
  guarantee was written against: overload must *shed*, not slow the
  admitted work down.
* ``w2`` / ``w4`` — pool mode (``worker_processes=2|4``) with the queue
  scaled to the worker count, exercising the compile/execute split, the
  shared plan-artifact cache and cross-worker single-flight coalescing.

For every offered load (client fleets at 1x / 2x / 4x the configuration's
worker count) the bench reports p50/p95/p99 latency of admitted
requests, the shed rate, and **throughput** (ok responses per wall
second) plus **throughput-per-core** (throughput divided by the cores
the configuration can actually use, ``min(workers, cpu_count)``) — the
honest scale-out number on a small machine.

Acceptance gates (``check``):

* every configuration: only clean outcomes under load, counters
  reconcile;
* ``w1``: admitted p95 at peak stays within ``MAX_P95_RATIO`` of the
  single-client p95 (the original serving guarantee, unchanged);
* ``w4`` at 4x load: throughput at least ``MIN_SCALEOUT_SPEEDUP`` times
  the ``w1`` peak throughput, and shed rate at most
  ``MAX_SCALEOUT_SHED_RATE`` (the scale-out acceptance criteria).

The result cache runs with ``ttl=0`` so every admitted request does real
engine work (single-flight coalescing still applies, as it would in
production); numbers are written to ``BENCH_service.json`` and compared
against the committed ``BENCH_service_baseline.json`` by
``check_regression.py``.  Refresh the baseline by copying the result
file over it after an intentional serving-layer change.

Run standalone (``python benchmarks/bench_service.py``) or via
``pytest benchmarks/bench_service.py``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets import university_database  # noqa: E402
from repro.engine import KeywordSearchEngine  # noqa: E402
from repro.service import QueryService, ServiceConfig, ServiceRequest  # noqa: E402

# Worker-process sweep.  w1 keeps the historical shape — one worker
# thread, two queue slots, no process tier — because the engine is
# pure-Python CPU work and extra *threads* only time-slice the GIL; the
# pool configurations scale the queue with the worker count so admission
# control sheds on genuine overload, not on a two-slot artifact.
SWEEP = (
    {"name": "w1", "worker_processes": 0, "threads": 1, "queue_limit": 2},
    {"name": "w2", "worker_processes": 2, "threads": 4, "queue_limit": 16},
    {"name": "w4", "worker_processes": 4, "threads": 8, "queue_limit": 32},
)
MULTIPLIERS = (1, 2, 4)  # client fleets as multiples of the worker count
REQUESTS_PER_LEVEL = 192
SINGLE_CLIENT_REQUESTS = 48
MAX_P95_RATIO = 3.0  # w1: admitted p95 at 4x load vs single-client p95
MIN_SCALEOUT_SPEEDUP = 2.0  # w4 peak throughput vs w1 peak throughput
MAX_SCALEOUT_SHED_RATE = 0.10  # w4 at 4x load

QUERIES = [
    "COUNT Lecturer GROUPBY Course",
    "Green SUM Credit",
    "COUNT Student GROUPBY Course",
    "AVG Credit",
    "COUNT Student",
    "COUNT Student GROUPBY Grade",
    "COUNT Enrol",
    "MAX COUNT Student",
]

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE / "BENCH_service.json"
BASELINE_PATH = _HERE / "BENCH_service_baseline.json"


def _build_service(spec: Dict[str, object]) -> QueryService:
    engine = KeywordSearchEngine(university_database())
    service = QueryService(
        ServiceConfig(
            max_workers=int(spec["threads"]),
            queue_limit=int(spec["queue_limit"]),
            cache_ttl_s=0.0,  # every admitted request does real work
            default_deadline_s=30.0,
            worker_processes=int(spec["worker_processes"]),
        )
    )
    service.register_dataset("university", engine)
    return service


def percentile(samples: List[float], q: float) -> float:
    """The *q*-quantile (0..1) by nearest-rank on sorted samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _run_clients(
    service: QueryService, clients: int, total_requests: int
) -> Dict[str, object]:
    """Closed-loop fleet: each client fires its share back-to-back.

    Returns the per-request records plus the fleet's wall-clock seconds
    (start of the first client to the finish of the last), which is what
    throughput is computed from."""
    per_client = total_requests // clients
    records: List[Dict[str, object]] = []
    lock = threading.Lock()
    # all clients block on the barrier until the whole fleet exists, so
    # thread start-up cost never counts against the measured wall clock
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        barrier.wait(30.0)
        for i in range(per_client):
            query = QUERIES[(index * per_client + i) % len(QUERIES)]
            started = time.perf_counter()
            response = service.serve(
                ServiceRequest(query=query), timeout=120.0
            )
            latency_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                records.append(
                    {"status": response.status, "latency_ms": latency_ms}
                )

    threads = [
        threading.Thread(
            target=client, args=(index,), name=f"bench-client-{index}", daemon=True
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(30.0)
    fleet_started = time.perf_counter()
    for thread in threads:
        thread.join(300.0)
    wall_s = time.perf_counter() - fleet_started
    assert not any(thread.is_alive() for thread in threads), "client hang"
    return {"records": records, "wall_s": wall_s}


def _summarize(run: Dict[str, object], cores: int) -> Dict[str, object]:
    records = run["records"]
    wall_s = max(float(run["wall_s"]), 1e-9)
    admitted = [
        float(record["latency_ms"])
        for record in records
        if record["status"] == "ok"
    ]
    shed = sum(1 for record in records if record["status"] == "shed")
    other = sorted(
        {
            str(record["status"])
            for record in records
            if record["status"] not in ("ok", "shed")
        }
    )
    throughput = len(admitted) / wall_s
    return {
        "requests": len(records),
        "admitted": len(admitted),
        "shed": shed,
        "shed_rate": shed / len(records) if records else 0.0,
        "unexpected_statuses": other,
        "p50_ms": percentile(admitted, 0.50),
        "p95_ms": percentile(admitted, 0.95),
        "p99_ms": percentile(admitted, 0.99),
        "wall_s": wall_s,
        "throughput_rps": throughput,
        "throughput_per_core_rps": throughput / cores,
    }


def _measure_config(spec: Dict[str, object]) -> Dict[str, object]:
    workers = int(spec["worker_processes"])
    cores = max(1, min(workers or 1, os.cpu_count() or 1))
    service = _build_service(spec)
    with service:
        # warm the engines (pattern + plan caches) outside the timings
        _run_clients(service, 1, 2 * len(QUERIES))
        single = _summarize(
            _run_clients(service, 1, SINGLE_CLIENT_REQUESTS), cores
        )
        fleet_unit = workers or 1
        loads: Dict[str, Dict[str, object]] = {}
        for multiplier in MULTIPLIERS:
            loads[f"{multiplier}x"] = _summarize(
                _run_clients(
                    service, fleet_unit * multiplier, REQUESTS_PER_LEVEL
                ),
                cores,
            )
        counters = service.metrics_snapshot()["service"]["counters"]
    peak = loads[f"{MULTIPLIERS[-1]}x"]
    single_p95 = float(single["p95_ms"]) or 1e-9
    return {
        "name": spec["name"],
        "worker_processes": workers,
        "threads": int(spec["threads"]),
        "queue_limit": int(spec["queue_limit"]),
        "cores_used": cores,
        "single_client": single,
        "loads": loads,
        "p95_ratio_at_peak": float(peak["p95_ms"]) / single_p95,
        "shed_rate_at_peak": float(peak["shed_rate"]),
        "throughput_at_peak_rps": float(peak["throughput_rps"]),
        "throughput_per_core_at_peak_rps": float(
            peak["throughput_per_core_rps"]
        ),
        "counters_reconcile": counters["requests_admitted"]
        == counters.get("result_cache_hits", 0)
        + counters.get("result_cache_misses", 0)
        + counters.get("singleflight_coalesced", 0),
    }


def measure() -> Dict[str, object]:
    configs = {spec["name"]: _measure_config(spec) for spec in SWEEP}
    w1 = configs["w1"]
    w4 = configs["w4"]
    base_throughput = float(w1["throughput_at_peak_rps"]) or 1e-9
    return {
        "cpu_count": os.cpu_count() or 1,
        "configs": configs,
        "scaleout": {
            "speedup_at_peak_w4_vs_w1": float(w4["throughput_at_peak_rps"])
            / base_throughput,
            "shed_rate_at_peak_w4": float(w4["shed_rate_at_peak"]),
        },
    }


def check(result: Dict[str, object]) -> List[str]:
    """Failure messages (empty when the serving guarantees hold)."""
    failures: List[str] = []
    for name, config in result["configs"].items():
        for level, summary in config["loads"].items():
            if summary["unexpected_statuses"]:
                failures.append(
                    f"{name} {level}: non-clean outcomes under load: "
                    f"{summary['unexpected_statuses']}"
                )
            if summary["admitted"] == 0:
                failures.append(f"{name} {level}: no requests admitted at all")
        if not config["counters_reconcile"]:
            failures.append(f"{name}: counters do not reconcile after the run")
    # the original single-worker guarantee: overload sheds, the admitted
    # work does not slow down
    w1_ratio = float(result["configs"]["w1"]["p95_ratio_at_peak"])
    if w1_ratio > MAX_P95_RATIO:
        failures.append(
            f"w1: admitted p95 at peak load is {w1_ratio:.2f}x the "
            f"single-client p95 (allowed: {MAX_P95_RATIO:.1f}x) — overload "
            f"must shed, not slow down"
        )
    # the scale-out acceptance criteria: w4 at 4x load beats the w1
    # baseline by MIN_SCALEOUT_SPEEDUP and sheds almost nothing
    scaleout = result["scaleout"]
    speedup = float(scaleout["speedup_at_peak_w4_vs_w1"])
    if speedup < MIN_SCALEOUT_SPEEDUP:
        failures.append(
            f"w4 peak throughput is only {speedup:.2f}x the w1 baseline "
            f"(required: >= {MIN_SCALEOUT_SPEEDUP:.1f}x)"
        )
    shed_rate = float(scaleout["shed_rate_at_peak_w4"])
    if shed_rate > MAX_SCALEOUT_SHED_RATE:
        failures.append(
            f"w4 shed rate at 4x load is {100.0 * shed_rate:.0f}% "
            f"(allowed: <= {100.0 * MAX_SCALEOUT_SHED_RATE:.0f}%)"
        )
    return failures


def write_result(result: Dict[str, object]) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_result(result: Dict[str, object]) -> str:
    lines: List[str] = []
    for name, config in result["configs"].items():
        lines.append(
            f"{name}: {config['worker_processes']} worker processes, "
            f"{config['threads']} threads, queue {config['queue_limit']}, "
            f"single-client p95 {config['single_client']['p95_ms']:.1f} ms"
        )
        for level, summary in config["loads"].items():
            lines.append(
                f"  {level:>3} load: p50 {summary['p50_ms']:.1f} ms, "
                f"p95 {summary['p95_ms']:.1f} ms, "
                f"p99 {summary['p99_ms']:.1f} ms, "
                f"shed {100.0 * summary['shed_rate']:.0f}% "
                f"({summary['shed']}/{summary['requests']}), "
                f"{summary['throughput_rps']:.0f} rps "
                f"({summary['throughput_per_core_rps']:.0f} rps/core)"
            )
    scaleout = result["scaleout"]
    lines.append(
        f"scale-out: w4 peak throughput "
        f"{scaleout['speedup_at_peak_w4_vs_w1']:.2f}x the w1 baseline "
        f"(required {MIN_SCALEOUT_SPEEDUP:.1f}x), shed "
        f"{100.0 * scaleout['shed_rate_at_peak_w4']:.0f}% "
        f"(allowed {100.0 * MAX_SCALEOUT_SHED_RATE:.0f}%)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest wiring (collected by `pytest benchmarks/`)
# ----------------------------------------------------------------------
_RESULT_CACHE: Optional[Dict[str, object]] = None


def _measured() -> Dict[str, object]:
    global _RESULT_CACHE
    if _RESULT_CACHE is None:
        _RESULT_CACHE = measure()
        write_result(_RESULT_CACHE)
    return _RESULT_CACHE


def test_service_survives_overload_and_scales_out():
    result = _measured()
    failures = check(result)
    assert not failures, "; ".join(failures) + "\n" + format_result(result)


def main() -> int:
    result = measure()
    write_result(result)
    print(format_result(result))
    print(f"wrote {RESULT_PATH}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
