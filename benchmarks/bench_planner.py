"""Plan-quality sweep: the cost-based optimizer vs the size-only greedy.

A join-aggregate workload over SF-scaled TPC-H and ACMDL (scale factor
``SCALE_FACTOR`` >= 2) runs twice on the same data in the same process:
once with ``optimizer="cost"`` (statistics, DP join ordering, access
paths) and once with ``optimizer="off"`` (the original size-only greedy
pipeline).  Three numbers gate the sweep:

* **total ratio** — optimizer-on wall time over optimizer-off wall time,
  summed across the whole workload.  The optimizer must never make the
  workload slower overall (``<= MAX_TOTAL_RATIO``).
* **big-join speedup** — optimizer-off over optimizer-on time on the
  >= 4-relation subset, where join-order choices dominate.  The cyclic
  queries (TPC-H Q5 shape: the supplier-customer nation/region edge
  closes a cycle) are the planted traps: the greedy min-product pick
  joins the expanding many-to-many edge early, the DP search defers it.
* **median q-error** — per-operator ``max(est/actual, actual/est)``
  collected from every optimized plan's :attr:`CompiledPlan.last_run`.
  The estimator may be wrong in the tails but must be right in the
  middle (``<= MAX_MEDIAN_Q_ERROR``).

Correctness is asserted before any timing means anything: both modes
must return canonically equal rows for every statement (float aggregates
are compared through ``rows_match``, since a different join order sums
in a different addition order).

Numbers go to ``BENCH_planner.json``; ``check_regression.py`` compares
them against the committed ``BENCH_planner_baseline.json``.  Refresh the
baseline by copying the result file over it after an intentional planner
change.

Run standalone (``python benchmarks/bench_planner.py``) or via
``pytest benchmarks/bench_planner.py``.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends.normalize import rows_match  # noqa: E402
from repro.datasets import generate_acmdl, generate_tpch  # noqa: E402
from repro.datasets.acmdl import AcmdlConfig  # noqa: E402
from repro.datasets.tpch import TpchConfig  # noqa: E402
from repro.observability import Tracer  # noqa: E402
from repro.relational.executor import Executor  # noqa: E402
from repro.sql.parser import parse  # noqa: E402

SCALE_FACTOR = 2.0  # the acceptance floor is SF >= 2
REPEATS = 3  # best-of-N to shed scheduler noise
BIG_JOIN_RELATIONS = 4  # the subset where join ordering dominates

# hard gates (machine-relative: both modes run in-process on the same data)
MAX_TOTAL_RATIO = 1.0  # optimizer-on must not slow the workload down
MIN_BIG_JOIN_SPEEDUP = 1.3  # and must win where join ordering matters
MAX_MEDIAN_Q_ERROR = 4.0  # estimates must be right in the middle

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE / "BENCH_planner.json"
BASELINE_PATH = _HERE / "BENCH_planner_baseline.json"

#: (dataset, qid, sql, relation count).  The >= 4-relation queries are
#: the plan-quality subset; the cyclic ones are the greedy traps.
WORKLOAD: Tuple[Tuple[str, str, str, int], ...] = (
    (
        "tpch",
        "q5-cycle",
        'SELECT N.nname, SUM(O.amount) AS rev FROM Customer C, "Order" O, '
        "Lineitem L, Supplier S, Nation N WHERE C.custkey = O.custkey "
        "AND O.orderkey = L.orderkey AND L.suppkey = S.suppkey "
        "AND S.nationkey = C.nationkey AND N.nationkey = C.nationkey "
        "GROUP BY N.nname",
        5,
    ),
    (
        "tpch",
        "region-cycle",
        "SELECT R.rname, SUM(O.amount) AS rev FROM Region R, Nation N1, "
        'Nation N2, Customer C, "Order" O, Lineitem L, Supplier S '
        "WHERE C.nationkey = N1.nationkey AND S.nationkey = N2.nationkey "
        "AND N1.regionkey = R.regionkey AND N2.regionkey = R.regionkey "
        "AND O.custkey = C.custkey AND L.orderkey = O.orderkey "
        "AND L.suppkey = S.suppkey GROUP BY R.rname",
        7,
    ),
    (
        "tpch",
        "nation-revenue",
        "SELECT N.nname, SUM(O.amount) AS total FROM Supplier S, Customer C, "
        '"Order" O, Nation N WHERE S.nationkey = N.nationkey '
        "AND C.nationkey = N.nationkey AND O.custkey = C.custkey "
        "GROUP BY N.nname",
        4,
    ),
    (
        "tpch",
        "france-parts",
        "SELECT P.type, COUNT(L.quantity) AS n FROM Part P, Lineitem L, "
        "Supplier S, Nation N WHERE L.partkey = P.partkey "
        "AND L.suppkey = S.suppkey AND S.nationkey = N.nationkey "
        "AND N.nname = 'FRANCE' GROUP BY P.type",
        4,
    ),
    (
        "tpch",
        "region-customers",
        "SELECT R.rname, COUNT(C.cname) AS n FROM Region R, Nation N, "
        "Customer C WHERE N.regionkey = R.regionkey "
        "AND C.nationkey = N.nationkey GROUP BY R.rname",
        3,
    ),
    (
        "tpch",
        "big-orders",
        'SELECT C.cname, COUNT(O.orderkey) AS n FROM Customer C, "Order" O '
        "WHERE O.custkey = C.custkey AND O.amount > 50000 GROUP BY C.cname",
        2,
    ),
    (
        "acmdl",
        "publisher-authors",
        "SELECT U.name, COUNT(A.lname) AS n FROM Publisher U, Proceeding P, "
        "Paper R, Write W, Author A WHERE P.publisherid = U.publisherid "
        "AND R.procid = P.procid AND W.paperid = R.paperid "
        "AND W.authorid = A.authorid GROUP BY U.name",
        5,
    ),
    (
        "acmdl",
        "editor-papers",
        "SELECT E.lname, COUNT(R.paperid) AS n FROM Editor E, Edit D, "
        "Proceeding P, Paper R WHERE D.editorid = E.editorid "
        "AND D.procid = P.procid AND R.procid = P.procid GROUP BY E.lname",
        4,
    ),
    (
        "acmdl",
        "long-proceedings",
        "SELECT A.lname, COUNT(P.procid) AS n FROM Author A, Write W, "
        "Paper R, Proceeding P WHERE W.authorid = A.authorid "
        "AND W.paperid = R.paperid AND R.procid = P.procid "
        "AND P.pages > 200 GROUP BY A.lname",
        4,
    ),
    (
        "acmdl",
        "papers-per-proceeding",
        "SELECT P.acronym, COUNT(R.paperid) AS n FROM Proceeding P, Paper R "
        "WHERE R.procid = P.procid GROUP BY P.acronym",
        2,
    ),
)


def _databases():
    return {
        "tpch": generate_tpch(TpchConfig().scaled(SCALE_FACTOR)),
        "acmdl": generate_acmdl(AcmdlConfig().scaled(SCALE_FACTOR)),
    }


def _time_one(executor: Executor, select) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        executor.execute(select)
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> Dict[str, object]:
    """Per-query optimizer-on vs optimizer-off timings plus q-errors."""
    databases = _databases()
    executors = {
        name: (
            Executor(database, optimizer="cost"),
            Executor(database, optimizer="off"),
        )
        for name, database in databases.items()
    }
    queries: List[Dict[str, object]] = []
    q_errors: List[float] = []
    total_on = total_off = 0.0
    big_on = big_off = 0.0
    tracer = Tracer()
    for dataset, qid, sql, relations in WORKLOAD:
        on, off = executors[dataset]
        select = parse(sql)
        # correctness first (and this warms both plan caches): a benchmark
        # of two modes that disagree measures nothing
        assert rows_match(on.execute(select).rows, off.execute(select).rows), (
            f"{dataset} {qid}: optimizer on/off disagree"
        )
        on_s = _time_one(on, select)
        off_s = _time_one(off, select)
        plan = on.plan_for(select, tracer)
        plan.execute(tracer=tracer)
        assert plan.last_run is not None, f"{dataset} {qid}: no run observed"
        per_query_errors = plan.last_run.q_errors()
        q_errors.extend(per_query_errors)
        total_on += on_s
        total_off += off_s
        if relations >= BIG_JOIN_RELATIONS:
            big_on += on_s
            big_off += off_s
        queries.append(
            {
                "dataset": dataset,
                "qid": qid,
                "relations": relations,
                "cost_ms": on_s * 1000.0,
                "heuristic_ms": off_s * 1000.0,
                "speedup": off_s / on_s if on_s else float("inf"),
                "median_q_error": statistics.median(per_query_errors),
            }
        )
    return {
        "scale_factor": SCALE_FACTOR,
        "queries": queries,
        "total_cost_ms": total_on * 1000.0,
        "total_heuristic_ms": total_off * 1000.0,
        "total_ratio": total_on / total_off if total_off else float("inf"),
        "big_join_speedup": big_off / big_on if big_on else float("inf"),
        "median_q_error": statistics.median(q_errors),
        "observations": len(q_errors),
    }


def check(result: Dict[str, object]) -> List[str]:
    """Failure messages (empty when the check passes)."""
    failures: List[str] = []
    ratio = float(result["total_ratio"])
    if ratio > MAX_TOTAL_RATIO:
        failures.append(
            f"optimizer-on workload is {ratio:.2f}x the heuristic total "
            f"(allowed: {MAX_TOTAL_RATIO:.1f}x)"
        )
    speedup = float(result["big_join_speedup"])
    if speedup < MIN_BIG_JOIN_SPEEDUP:
        failures.append(
            f"optimizer wins only {speedup:.2f}x on the "
            f">={BIG_JOIN_RELATIONS}-relation subset "
            f"(required: {MIN_BIG_JOIN_SPEEDUP:.1f}x)"
        )
    q_error = float(result["median_q_error"])
    if q_error > MAX_MEDIAN_Q_ERROR:
        failures.append(
            f"median cardinality q-error is {q_error:.2f} "
            f"(allowed: {MAX_MEDIAN_Q_ERROR:.1f})"
        )
    return failures


def write_result(result: Dict[str, object]) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_result(result: Dict[str, object]) -> str:
    lines = [
        f"SF{result['scale_factor']:g} plan-quality sweep, "
        f"{len(result['queries'])} queries: "
        f"cost {result['total_cost_ms']:.1f} ms, "
        f"heuristic {result['total_heuristic_ms']:.1f} ms "
        f"(ratio {result['total_ratio']:.2f}), "
        f">={BIG_JOIN_RELATIONS}-relation speedup "
        f"{result['big_join_speedup']:.2f}x, "
        f"median q-error {result['median_q_error']:.2f} "
        f"over {result['observations']} operators"
    ]
    for numbers in result["queries"]:
        lines.append(
            f"  {numbers['dataset']}/{numbers['qid']} "
            f"({numbers['relations']} rel): "
            f"cost {numbers['cost_ms']:.1f} ms, "
            f"heuristic {numbers['heuristic_ms']:.1f} ms "
            f"({numbers['speedup']:.2f}x), "
            f"q-err {numbers['median_q_error']:.2f}"
        )
    return "\n".join(lines)


def test_planner_beats_heuristic_and_estimates_hold():
    result = measure()
    write_result(result)
    failures = check(result)
    assert not failures, "; ".join(failures) + "\n" + format_result(result)


def main() -> int:
    result = measure()
    write_result(result)
    print(format_result(result))
    print(f"wrote {RESULT_PATH}")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
