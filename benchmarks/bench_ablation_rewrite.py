"""Ablation 3 (DESIGN.md): the Section-4.1 rewrite rules.

Compares end-to-end execution of the unnormalized Q4 SQL with and without
the Rule 1-3 rewriting — the rewritten statement scans the stored relation
directly instead of joining fragment subqueries, which is the paper's
motivation for the rules.
"""

from __future__ import annotations

import pytest

from repro.datasets import enrolment_database
from repro.engine import KeywordSearchEngine

FDS = {"Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]}
QUERY = "Green George COUNT Code"


@pytest.fixture(scope="module")
def rewritten_engine():
    return KeywordSearchEngine(enrolment_database(), fds=FDS, rewrite_sql=True)


@pytest.fixture(scope="module")
def raw_engine():
    return KeywordSearchEngine(enrolment_database(), fds=FDS, rewrite_sql=False)


def _select_for(engine):
    result = engine.search(QUERY)
    chosen = result.find(distinguishes=True)
    assert chosen is not None
    return chosen.select


def test_rewritten_execution(benchmark, rewritten_engine):
    select = _select_for(rewritten_engine)
    rows = benchmark(lambda: rewritten_engine.executor.execute(select))
    assert rows.sorted_rows() == [("s2", 1), ("s3", 2)]
    benchmark.extra_info["variant"] = "rules 1-3 applied"


def test_raw_subquery_execution(benchmark, raw_engine):
    select = _select_for(raw_engine)
    rows = benchmark(lambda: raw_engine.executor.execute(select))
    assert rows.sorted_rows() == [("s2", 1), ("s3", 2)]
    benchmark.extra_info["variant"] = "no rewriting (Example 9 shape)"


def test_rewrite_reduces_subquery_count(rewritten_engine, raw_engine):
    rewritten_sql = _render(_select_for(rewritten_engine))
    raw_sql = _render(_select_for(raw_engine))
    assert rewritten_sql.count("(SELECT") < raw_sql.count("(SELECT")


def _render(select) -> str:
    from repro.sql.render import render

    return render(select)
