"""Benchmark + reproduction of Table 5: normalized TPC-H queries T1-T8.

Each benchmark measures the full semantic pipeline (compile + select
interpretation + execute) for one query and attaches the paper-style answer
summaries (ours vs SQAK) to the benchmark record; the whole comparison
table is printed once at the end of the module.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    TPCH_QUERIES,
    format_answer_table,
    pick_interpretation,
    run_query,
)


@pytest.fixture(scope="module")
def collected():
    return {}


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.qid)
def test_table5_query(benchmark, spec, tpch_engine, tpch_sqak, collected):
    outcome = run_query(tpch_engine, tpch_sqak, spec)
    collected[spec.qid] = outcome

    def pipeline():
        interpretations = tpch_engine.compile(spec.text)
        chosen = pick_interpretation(interpretations, spec)
        # bypass the per-interpretation cache: execute the AST directly
        return tpch_engine.executor.execute(chosen.select)

    result = benchmark(pipeline)
    assert len(result) == len(outcome.semantic_result)
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["ours"] = outcome.summarize("semantic")
    benchmark.extra_info["sqak"] = outcome.summarize("sqak")


def test_print_table5(benchmark, collected):
    """Render the reproduced table (visible with ``pytest -s``)."""
    outcomes = [collected[spec.qid] for spec in TPCH_QUERIES if spec.qid in collected]
    assert len(outcomes) == len(TPCH_QUERIES)
    text = benchmark(
        format_answer_table, "Table 5 - answers on normalized TPC-H", outcomes
    )
    print()
    print(text)
