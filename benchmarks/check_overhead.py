"""Disabled-mode tracer overhead check: must stay under 2%.

Every pipeline stage takes a ``tracer`` argument defaulting to
:data:`~repro.observability.NULL_TRACER`, so an untraced
``engine.compile()`` still pays one no-op call per instrumentation
point.  This check bounds that cost on the Figure-11 query set:

1. time the untraced pipeline per query (``baseline``, best-of-N to
   shed scheduler noise);
2. count the instrumentation events the pipeline emits per query, by
   running once with an event-counting tracer;
3. micro-benchmark the cost of one no-op ``span()``/``count()`` call;
4. assert ``events x per_event_cost < 2% x baseline`` for every query.

The estimate is deliberately conservative (it charges every event the
no-op *context-manager* cost, the more expensive of the two calls) yet
deterministic enough for CI — unlike differencing two noisy timing
runs, it cannot go negative or flap with machine load.

Run standalone (``python benchmarks/check_overhead.py``) or as part of
the bench suite (``pytest benchmarks/`` collects ``check_*.py`` via
``pyproject.toml``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from repro.engine import KeywordSearchEngine
from repro.errors import ReproError
from repro.observability import NULL_TRACER
from repro.observability.tracer import _NULL_HANDLE

OVERHEAD_BUDGET = 0.02  # 2% of pipeline time
_TIMING_REPEATS = 5
_NULL_OP_LOOPS = 50_000


class _EventCounter:
    """Tracer stand-in that only counts instrumentation events.

    ``enabled`` stays False so the engine follows its disabled-mode code
    paths (no cache bypass accounting differences); every ``span`` /
    ``count`` call the pipeline would issue is tallied.
    """

    enabled = False
    trace = None

    def __init__(self) -> None:
        self.events = 0

    def span(self, name, **attributes):
        self.events += 1
        return _NULL_HANDLE

    def count(self, name, value=1):
        self.events += 1


def null_op_cost() -> float:
    """Seconds per no-op instrumentation event (span open/close)."""
    start = time.perf_counter()
    for _ in range(_NULL_OP_LOOPS):
        with NULL_TRACER.span("x"):
            NULL_TRACER.count("x")
    elapsed = time.perf_counter() - start
    # the loop body is one span + one count: charge the pair, halved per
    # event, then round up by keeping the span cost for both
    return elapsed / (2 * _NULL_OP_LOOPS)


def measure_query(
    engine: KeywordSearchEngine, query: str, per_event: float
) -> Tuple[float, int, float]:
    """(baseline seconds, events, estimated overhead fraction)."""
    baseline = min(
        _timed_compile(engine, query) for _ in range(_TIMING_REPEATS)
    )
    counter = _EventCounter()
    engine.clear_cache()
    engine.compile(query, tracer=counter)
    overhead = (counter.events * per_event) / baseline if baseline else 0.0
    return baseline, counter.events, overhead


def _timed_compile(engine: KeywordSearchEngine, query: str) -> float:
    engine.clear_cache()
    start = time.perf_counter()
    engine.compile(query)
    return time.perf_counter() - start


def check_engine(
    engine: KeywordSearchEngine, specs: Sequence
) -> List[Dict[str, object]]:
    per_event = null_op_cost()
    rows: List[Dict[str, object]] = []
    for spec in specs:
        try:
            baseline, events, overhead = measure_query(
                engine, spec.text, per_event
            )
        except ReproError:
            continue
        rows.append(
            {
                "qid": spec.qid,
                "baseline_ms": baseline * 1000.0,
                "events": events,
                "overhead_pct": overhead * 100.0,
            }
        )
    return rows


def format_rows(title: str, rows: Sequence[Dict[str, object]]) -> str:
    lines = [title]
    lines.append(f"{'#':<4}{'baseline (ms)':>14}{'events':>8}{'overhead':>10}")
    for row in rows:
        lines.append(
            f"{row['qid']:<4}{row['baseline_ms']:>14.3f}"
            f"{row['events']:>8}{row['overhead_pct']:>9.3f}%"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest wiring (collected by `pytest benchmarks/`)
# ----------------------------------------------------------------------
def test_disabled_overhead_tpch(benchmark, tpch_engine):
    from repro.experiments import TPCH_QUERIES

    def run_all():
        for spec in TPCH_QUERIES:
            tpch_engine.clear_cache()
            tpch_engine.compile(spec.text)

    benchmark(run_all)
    rows = check_engine(tpch_engine, TPCH_QUERIES)
    assert rows
    worst = max(row["overhead_pct"] for row in rows)
    benchmark.extra_info["worst_overhead_pct"] = round(worst, 4)
    assert worst < OVERHEAD_BUDGET * 100.0, format_rows("TPCH", rows)


def test_disabled_overhead_acmdl(benchmark, acmdl_engine):
    from repro.experiments import ACMDL_QUERIES

    def run_all():
        for spec in ACMDL_QUERIES:
            acmdl_engine.clear_cache()
            acmdl_engine.compile(spec.text)

    benchmark(run_all)
    rows = check_engine(acmdl_engine, ACMDL_QUERIES)
    assert rows
    worst = max(row["overhead_pct"] for row in rows)
    benchmark.extra_info["worst_overhead_pct"] = round(worst, 4)
    assert worst < OVERHEAD_BUDGET * 100.0, format_rows("ACMDL", rows)


def main() -> int:
    from repro.datasets import generate_acmdl, generate_tpch
    from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES

    failed = False
    for name, db, specs in (
        ("Figure 11(a) - TPCH", generate_tpch(), TPCH_QUERIES),
        ("Figure 11(b) - ACMDL", generate_acmdl(), ACMDL_QUERIES),
    ):
        engine = KeywordSearchEngine(db)
        rows = check_engine(engine, specs)
        print(format_rows(name, rows))
        worst = max(row["overhead_pct"] for row in rows)
        verdict = "OK" if worst < OVERHEAD_BUDGET * 100.0 else "FAIL"
        print(f"worst: {worst:.3f}% (budget {OVERHEAD_BUDGET:.0%}) -> {verdict}")
        print()
        failed = failed or verdict == "FAIL"
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
