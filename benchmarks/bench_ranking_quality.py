"""Extension bench: ranking quality of the interpretation lists.

Not a paper figure — the paper never reports where the intended
interpretation ranks — but the property its top-k protocol silently relies
on.  Benchmarks report generation and prints the rank table.
"""

from __future__ import annotations

import pytest

from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES, ranking_report


def test_tpch_ranking_quality(benchmark, tpch_engine):
    report = benchmark(ranking_report, tpch_engine, TPCH_QUERIES)
    assert report.hits_at_k == len(TPCH_QUERIES)
    print()
    print("Ranking quality, TPCH queries")
    print(report.format_table())
    benchmark.extra_info["mrr"] = round(report.mean_reciprocal_rank, 3)


def test_acmdl_ranking_quality(benchmark, acmdl_engine):
    report = benchmark(ranking_report, acmdl_engine, ACMDL_QUERIES)
    assert report.hits_at_k == len(ACMDL_QUERIES)
    print()
    print("Ranking quality, ACMDL queries")
    print(report.format_table())
    benchmark.extra_info["mrr"] = round(report.mean_reciprocal_rank, 3)
