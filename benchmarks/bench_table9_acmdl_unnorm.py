"""Benchmark + reproduction of Table 9: unnormalized ACMDL (ACMDL')."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ACMDL_QUERIES,
    format_answer_table,
    pick_interpretation,
    run_query,
)


@pytest.fixture(scope="module")
def collected():
    return {}


@pytest.mark.parametrize("spec", ACMDL_QUERIES, ids=lambda s: s.qid)
def test_table9_query(
    benchmark, spec, acmdl_unnorm_engine, acmdl_unnorm_sqak, collected
):
    outcome = run_query(acmdl_unnorm_engine, acmdl_unnorm_sqak, spec)
    collected[spec.qid] = outcome

    def pipeline():
        interpretations = acmdl_unnorm_engine.compile(spec.text)
        chosen = pick_interpretation(interpretations, spec)
        return acmdl_unnorm_engine.executor.execute(chosen.select)

    result = benchmark(pipeline)
    assert len(result) == len(outcome.semantic_result)
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["ours"] = outcome.summarize("semantic")
    benchmark.extra_info["sqak"] = outcome.summarize("sqak")


def test_print_table9(benchmark, collected):
    outcomes = [collected[spec.qid] for spec in ACMDL_QUERIES if spec.qid in collected]
    assert len(outcomes) == len(ACMDL_QUERIES)
    text = benchmark(
        format_answer_table,
        "Table 9 - answers on unnormalized ACMDL (ACMDL')",
        outcomes,
    )
    print()
    print(text)
