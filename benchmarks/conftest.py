"""Benchmark fixtures: databases and engines, built once per session.

Each bench module regenerates one table or figure of the paper; the
reproduced answer rows are attached to the benchmark records via
``benchmark.extra_info`` and printed once per module so the harness output
contains the same rows/series the paper reports (run with ``-s`` to see
them live, or read ``examples/reproduce_paper.py`` for a standalone
report).
"""

from __future__ import annotations

import pytest

from repro.baselines import SqakEngine
from repro.datasets import (
    denormalize_acmdl,
    denormalize_tpch,
    generate_acmdl,
    generate_tpch,
    university_database,
)
from repro.engine import KeywordSearchEngine


@pytest.fixture(scope="session")
def university_db():
    return university_database()


@pytest.fixture(scope="session")
def tpch_db():
    return generate_tpch()


@pytest.fixture(scope="session")
def acmdl_db():
    return generate_acmdl()


@pytest.fixture(scope="session")
def tpch_engine(tpch_db):
    return KeywordSearchEngine(tpch_db)


@pytest.fixture(scope="session")
def tpch_sqak(tpch_db):
    return SqakEngine(tpch_db)


@pytest.fixture(scope="session")
def acmdl_engine(acmdl_db):
    return KeywordSearchEngine(acmdl_db)


@pytest.fixture(scope="session")
def acmdl_sqak(acmdl_db):
    return SqakEngine(acmdl_db)


@pytest.fixture(scope="session")
def tpch_unnorm(tpch_db):
    return denormalize_tpch(tpch_db)


@pytest.fixture(scope="session")
def tpch_unnorm_engine(tpch_unnorm):
    return KeywordSearchEngine(
        tpch_unnorm.database,
        fds=tpch_unnorm.fds,
        name_hints=tpch_unnorm.name_hints,
    )


@pytest.fixture(scope="session")
def tpch_unnorm_sqak(tpch_unnorm):
    return SqakEngine(tpch_unnorm.database, extra_joins=tpch_unnorm.sqak_extra_joins)


@pytest.fixture(scope="session")
def acmdl_unnorm(acmdl_db):
    return denormalize_acmdl(acmdl_db)


@pytest.fixture(scope="session")
def acmdl_unnorm_engine(acmdl_unnorm):
    return KeywordSearchEngine(
        acmdl_unnorm.database,
        fds=acmdl_unnorm.fds,
        name_hints=acmdl_unnorm.name_hints,
    )


@pytest.fixture(scope="session")
def acmdl_unnorm_sqak(acmdl_unnorm):
    return SqakEngine(
        acmdl_unnorm.database, extra_joins=acmdl_unnorm.sqak_extra_joins
    )
