"""Benchmark fixtures: databases and engines, built once per session.

Each bench module regenerates one table or figure of the paper; the
reproduced answer rows are attached to the benchmark records via
``benchmark.extra_info`` and printed once per module so the harness output
contains the same rows/series the paper reports (run with ``-s`` to see
them live, or read ``examples/reproduce_paper.py`` for a standalone
report).

Every engine fixture also registers itself for the observability hook
below: after the benches finish, :func:`pytest_terminal_summary` traces
the engine's evaluation-query set (``engine.search(..., trace=True)``)
and prints a per-stage breakdown table, so each headline benchmark
number can be decomposed into match/generate/disambiguate/rank/translate
time.  The disabled-mode cost of that instrumentation is checked by
``benchmarks/check_overhead.py`` (collected with the benches through the
``check_*.py`` pattern in ``pyproject.toml``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.baselines import SqakEngine
from repro.datasets import (
    denormalize_acmdl,
    denormalize_tpch,
    generate_acmdl,
    generate_tpch,
    university_database,
)
from repro.engine import KeywordSearchEngine
from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES
from repro.observability import stage_breakdown

#: Engines the session actually built, with the query set to trace:
#: label -> (engine, [query text, ...]).  Filled by the fixtures.
_STAGE_SUITES: Dict[str, Tuple[KeywordSearchEngine, List[str]]] = {}


def _register(label: str, engine: KeywordSearchEngine, specs) -> KeywordSearchEngine:
    _STAGE_SUITES[label] = (engine, [spec.text for spec in specs])
    return engine


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Per-stage pipeline breakdown for every engine the benches used."""
    if not _STAGE_SUITES:
        return
    terminalreporter.section("per-stage pipeline breakdown (traced)")
    for label in sorted(_STAGE_SUITES):
        engine, queries = _STAGE_SUITES[label]
        try:
            table = stage_breakdown(
                engine, queries, f"{label} - evaluation query set"
            )
        except Exception as exc:  # the breakdown must never fail the run
            terminalreporter.write_line(f"{label}: breakdown failed ({exc})")
            continue
        for line in table.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")


@pytest.fixture(scope="session")
def university_db():
    return university_database()


@pytest.fixture(scope="session")
def tpch_db():
    return generate_tpch()


@pytest.fixture(scope="session")
def acmdl_db():
    return generate_acmdl()


@pytest.fixture(scope="session")
def tpch_engine(tpch_db):
    return _register("TPCH", KeywordSearchEngine(tpch_db), TPCH_QUERIES)


@pytest.fixture(scope="session")
def tpch_sqak(tpch_db):
    return SqakEngine(tpch_db)


@pytest.fixture(scope="session")
def acmdl_engine(acmdl_db):
    return _register("ACMDL", KeywordSearchEngine(acmdl_db), ACMDL_QUERIES)


@pytest.fixture(scope="session")
def acmdl_sqak(acmdl_db):
    return SqakEngine(acmdl_db)


@pytest.fixture(scope="session")
def tpch_unnorm(tpch_db):
    return denormalize_tpch(tpch_db)


@pytest.fixture(scope="session")
def tpch_unnorm_engine(tpch_unnorm):
    return _register(
        "TPCH' (unnormalized)",
        KeywordSearchEngine(
            tpch_unnorm.database,
            fds=tpch_unnorm.fds,
            name_hints=tpch_unnorm.name_hints,
        ),
        TPCH_QUERIES,
    )


@pytest.fixture(scope="session")
def tpch_unnorm_sqak(tpch_unnorm):
    return SqakEngine(tpch_unnorm.database, extra_joins=tpch_unnorm.sqak_extra_joins)


@pytest.fixture(scope="session")
def acmdl_unnorm(acmdl_db):
    return denormalize_acmdl(acmdl_db)


@pytest.fixture(scope="session")
def acmdl_unnorm_engine(acmdl_unnorm):
    return _register(
        "ACMDL' (unnormalized)",
        KeywordSearchEngine(
            acmdl_unnorm.database,
            fds=acmdl_unnorm.fds,
            name_hints=acmdl_unnorm.name_hints,
        ),
        ACMDL_QUERIES,
    )


@pytest.fixture(scope="session")
def acmdl_unnorm_sqak(acmdl_unnorm):
    return SqakEngine(
        acmdl_unnorm.database, extra_joins=acmdl_unnorm.sqak_extra_joins
    )
