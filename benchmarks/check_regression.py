"""Performance regression checks: compiled-plan speedup and serving SLOs.

Two independent gates share this module's measure/check idiom:

* **Compiled-plan speedup** — the compiled physical plans (closure
  predicates, index-backed scans, plan caching — see
  ``docs/PERFORMANCE.md``) must keep end-to-end keyword search at least
  ``MIN_SPEEDUP``x faster than the interpreted ablation path, and must
  not give back more than ``TOLERANCE`` of the speedup recorded in the
  committed baseline (``BENCH_scaling_baseline.json``).
* **Serving SLOs** — the query service's closed-loop load numbers
  (``bench_service.py``, swept over the worker-process tier) must hold
  the hard p95-ratio and scale-out guarantees and, per configuration,
  must not drift from the committed ``BENCH_service_baseline.json`` by
  more than ``SERVICE_RATIO_TOLERANCE`` (p95 ratio) /
  ``SERVICE_SHED_TOLERANCE`` (absolute shed rate at peak load) /
  ``SERVICE_THROUGHPUT_TOLERANCE`` (peak throughput-per-core).
* **Storage tier** — the paged disk backend (``bench_storage.py``) must
  hold its hard page-budget/ratio gates and, per dataset, must not let
  the disk/memory latency ratio drift more than
  ``STORAGE_RATIO_TOLERANCE`` above ``BENCH_storage_baseline.json`` nor
  the buffer-pool hit rate drop more than
  ``STORAGE_HIT_RATE_TOLERANCE`` below it.

The measurement is *relative* — both paths run on the same process, data
and query mix, so the speedup ratio is stable across machines in a way raw
timings are not (the same trick ``check_overhead.py`` uses).  Each run
writes its numbers to ``BENCH_scaling.json`` next to this file; refresh the
baseline by copying that file over the committed one after an intentional
performance change.

Run standalone (``python benchmarks/check_regression.py``) or as part of
the bench suite (``pytest benchmarks/`` collects ``check_*.py`` via
``pyproject.toml``).
"""

from __future__ import annotations

import importlib.util
import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.datasets import TpchConfig, generate_tpch
from repro.engine import KeywordSearchEngine
from repro.errors import ReproError
from repro.experiments import TPCH_QUERIES, pick_interpretation

MIN_SPEEDUP = 3.0  # compiled must beat interpreted by at least this factor
TOLERANCE = 0.20  # allowed fraction of baseline speedup to give back
_MIX_REPEATS = 3  # best-of-N to shed scheduler noise

LARGE = TpchConfig(seed=42, parts=320, suppliers=120, customers=240, orders=2400)

_HERE = Path(__file__).resolve().parent
RESULT_PATH = _HERE / "BENCH_scaling.json"
BASELINE_PATH = _HERE / "BENCH_scaling_baseline.json"


def _build_engines() -> Tuple[KeywordSearchEngine, KeywordSearchEngine]:
    database = generate_tpch(LARGE)
    compiled = KeywordSearchEngine(database)
    interpreted = KeywordSearchEngine(database, compile_plans=False)
    return compiled, interpreted


def _query_mix(engine: KeywordSearchEngine) -> List:
    specs = []
    for spec in TPCH_QUERIES:
        try:
            engine.compile(spec.text)
        except ReproError:
            continue
        specs.append(spec)
    return specs


def _run_mix(engine: KeywordSearchEngine, specs) -> None:
    """One end-to-end pass: search + pick + execute every query."""
    for spec in specs:
        interpretations = engine.compile(spec.text)
        chosen = pick_interpretation(interpretations, spec)
        chosen.execute()


def _time_mix(engine: KeywordSearchEngine, specs) -> float:
    best = float("inf")
    for _ in range(_MIX_REPEATS):
        start = time.perf_counter()
        _run_mix(engine, specs)
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> Dict[str, object]:
    """Measure the compiled-vs-interpreted end-to-end speedup.

    Both engines are warmed first (pattern caches, plan cache, indexes):
    the scenario is repeated query traffic against loaded data, which is
    where the plan cache is designed to win.
    """
    compiled, interpreted = _build_engines()
    specs = _query_mix(compiled)
    assert specs, "no runnable TPC-H experiment queries"
    _query_mix(interpreted)

    # results must agree before timings mean anything
    for spec in specs:
        fast = pick_interpretation(compiled.compile(spec.text), spec).execute()
        slow = pick_interpretation(interpreted.compile(spec.text), spec).execute()
        assert fast == slow, f"{spec.qid}: compiled and interpreted results differ"

    _run_mix(compiled, specs)  # warm both paths once more before timing
    _run_mix(interpreted, specs)
    compiled_s = _time_mix(compiled, specs)
    interpreted_s = _time_mix(interpreted, specs)
    return {
        "scale": "large",
        "queries": len(specs),
        "compiled_ms": compiled_s * 1000.0,
        "interpreted_ms": interpreted_s * 1000.0,
        "speedup": interpreted_s / compiled_s if compiled_s else float("inf"),
    }


def check(result: Dict[str, object]) -> List[str]:
    """Failure messages (empty when the check passes)."""
    failures: List[str] = []
    speedup = float(result["speedup"])
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"compiled path is only {speedup:.2f}x faster than interpreted "
            f"(required: {MIN_SPEEDUP:.1f}x)"
        )
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
        floor = float(baseline["speedup"]) * (1.0 - TOLERANCE)
        if speedup < floor:
            failures.append(
                f"speedup regressed: {speedup:.2f}x vs baseline "
                f"{baseline['speedup']:.2f}x (floor {floor:.2f}x)"
            )
    return failures


def write_result(result: Dict[str, object]) -> None:
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_result(result: Dict[str, object]) -> str:
    return (
        f"large TPC-H, {result['queries']} queries/mix: "
        f"compiled {result['compiled_ms']:.1f} ms, "
        f"interpreted {result['interpreted_ms']:.1f} ms "
        f"-> {result['speedup']:.1f}x"
    )


# ----------------------------------------------------------------------
# Serving-layer SLO regression (delegates measurement to bench_service)
# ----------------------------------------------------------------------
SERVICE_RATIO_TOLERANCE = 0.50  # allowed fractional growth of the w1 p95 ratio
SERVICE_SHED_TOLERANCE = 0.25  # allowed absolute shed-rate growth at peak
# allowed fractional drop of peak throughput-per-core per configuration:
# generous because closed-loop wall clocks on shared machines are noisy,
# but a real serving-layer regression (lost coalescing, broken memo,
# per-dispatch overhead) costs more than half the throughput
SERVICE_THROUGHPUT_TOLERANCE = 0.50

SERVICE_BASELINE_PATH = _HERE / "BENCH_service_baseline.json"


def _load_bench_service():
    spec = importlib.util.spec_from_file_location(
        "bench_service", _HERE / "bench_service.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_service() -> Dict[str, object]:
    """The closed-loop load numbers, via ``bench_service.measure()``."""
    return _load_bench_service().measure()


def check_service(result: Dict[str, object]) -> List[str]:
    """Hard SLOs plus drift against the committed service baseline.

    Per configuration (w1 / w2 / w4): the peak shed rate must not grow
    past the baseline by more than its tolerance, and peak
    **throughput-per-core** must not drop below
    ``1 - SERVICE_THROUGHPUT_TOLERANCE`` of the baseline — the drift
    gate for the worker-pool scale-out numbers.  The p95 ratio drifts
    only for ``w1``, mirroring the bench's own gate: pool configs keep
    requests queued at peak by design, so their admitted-p95 is a
    function of queue depth, not serving speed — throughput is their
    latency-honest signal."""
    bench_service = _load_bench_service()
    failures = bench_service.check(result)
    if SERVICE_BASELINE_PATH.exists():
        with open(SERVICE_BASELINE_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
        for name, config in result["configs"].items():
            base = baseline["configs"].get(name)
            if base is None:
                continue
            ratio = float(config["p95_ratio_at_peak"])
            ceiling = float(base["p95_ratio_at_peak"]) * (
                1.0 + SERVICE_RATIO_TOLERANCE
            )
            if name == "w1" and ratio > ceiling:
                failures.append(
                    f"{name}: service p95 ratio regressed: {ratio:.2f}x vs "
                    f"baseline {base['p95_ratio_at_peak']:.2f}x "
                    f"(ceiling {ceiling:.2f}x)"
                )
            shed = float(config["shed_rate_at_peak"])
            shed_ceiling = (
                float(base["shed_rate_at_peak"]) + SERVICE_SHED_TOLERANCE
            )
            if shed > shed_ceiling:
                failures.append(
                    f"{name}: service shed rate at peak regressed: "
                    f"{shed:.0%} vs baseline {base['shed_rate_at_peak']:.0%} "
                    f"(ceiling {shed_ceiling:.0%})"
                )
            per_core = float(config["throughput_per_core_at_peak_rps"])
            floor = float(base["throughput_per_core_at_peak_rps"]) * (
                1.0 - SERVICE_THROUGHPUT_TOLERANCE
            )
            if per_core < floor:
                failures.append(
                    f"{name}: peak throughput-per-core regressed: "
                    f"{per_core:.0f} rps/core vs baseline "
                    f"{base['throughput_per_core_at_peak_rps']:.0f} rps/core "
                    f"(floor {floor:.0f})"
                )
    return failures


# ----------------------------------------------------------------------
# Backend latency regression (delegates measurement to bench_backends)
# ----------------------------------------------------------------------
# allowed fractional drop of the sqlite/memory latency ratio per dataset:
# the ratio falling means the memory backend got slower relative to the
# SQLite oracle on the same statements, data and machine
BACKENDS_RATIO_TOLERANCE = 0.50

BACKENDS_BASELINE_PATH = _HERE / "BENCH_backends_baseline.json"


def _load_bench_backends():
    spec = importlib.util.spec_from_file_location(
        "bench_backends", _HERE / "bench_backends.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_backends() -> Dict[str, object]:
    """Per-dataset backend latencies, via ``bench_backends.measure()``."""
    return _load_bench_backends().measure()


def check_backends(result: Dict[str, object]) -> List[str]:
    """Hard agreement/ratio gates plus drift against the baseline."""
    bench_backends = _load_bench_backends()
    failures = bench_backends.check(result)
    if BACKENDS_BASELINE_PATH.exists():
        with open(BACKENDS_BASELINE_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
        for dataset, numbers in result["datasets"].items():
            base = baseline["datasets"].get(dataset)
            if base is None:
                continue
            ratio = float(numbers["ratio"])
            floor = float(base["ratio"]) * (1.0 - BACKENDS_RATIO_TOLERANCE)
            if ratio < floor:
                failures.append(
                    f"{dataset}: memory backend regressed vs SQLite: ratio "
                    f"{ratio:.2f} vs baseline {base['ratio']:.2f} "
                    f"(floor {floor:.2f})"
                )
    return failures


# ----------------------------------------------------------------------
# Storage-tier regression (delegates measurement to bench_storage)
# ----------------------------------------------------------------------
# allowed fractional growth of the disk/memory latency ratio per
# dataset: the ratio growing means the paged storage tier got slower
# relative to the in-memory engine on the same plans, data and machine
STORAGE_RATIO_TOLERANCE = 0.50
# allowed absolute drop of the buffer-pool hit rate per dataset
STORAGE_HIT_RATE_TOLERANCE = 0.10

STORAGE_BASELINE_PATH = _HERE / "BENCH_storage_baseline.json"


def _load_bench_storage():
    spec = importlib.util.spec_from_file_location(
        "bench_storage", _HERE / "bench_storage.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_storage() -> Dict[str, object]:
    """Per-dataset disk-vs-memory numbers, via ``bench_storage.measure()``."""
    return _load_bench_storage().measure()


def check_storage(result: Dict[str, object]) -> List[str]:
    """Hard budget/ratio gates plus drift against the baseline."""
    bench_storage = _load_bench_storage()
    failures = bench_storage.check(result)
    if STORAGE_BASELINE_PATH.exists():
        with open(STORAGE_BASELINE_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
        for dataset, numbers in result["datasets"].items():
            base = baseline["datasets"].get(dataset)
            if base is None:
                continue
            ratio = float(numbers["ratio"])
            ceiling = float(base["ratio"]) * (1.0 + STORAGE_RATIO_TOLERANCE)
            if ratio > ceiling:
                failures.append(
                    f"{dataset}: disk backend regressed vs memory: ratio "
                    f"{ratio:.2f} vs baseline {base['ratio']:.2f} "
                    f"(ceiling {ceiling:.2f})"
                )
            hit_rate = float(numbers["hit_rate"])
            floor = float(base["hit_rate"]) - STORAGE_HIT_RATE_TOLERANCE
            if hit_rate < floor:
                failures.append(
                    f"{dataset}: buffer pool hit rate fell to "
                    f"{hit_rate:.2f} vs baseline {base['hit_rate']:.2f} "
                    f"(floor {floor:.2f})"
                )
    return failures


# ----------------------------------------------------------------------
# Plan-quality regression (delegates measurement to bench_planner)
# ----------------------------------------------------------------------
# allowed fractional growth of the optimizer-on/heuristic total ratio:
# the ratio growing means the cost-based planner got slower relative to
# the size-only greedy on the same workload, data and machine
PLANNER_RATIO_TOLERANCE = 0.50
# allowed fractional drop of the >=4-relation subset speedup: losing it
# means the DP search stopped finding the plans the greedy misses
PLANNER_SPEEDUP_TOLERANCE = 0.35
# allowed absolute growth of the median cardinality q-error: estimates
# drifting here means the statistics or selectivity model regressed
PLANNER_Q_ERROR_TOLERANCE = 1.0

PLANNER_BASELINE_PATH = _HERE / "BENCH_planner_baseline.json"


def _load_bench_planner():
    spec = importlib.util.spec_from_file_location(
        "bench_planner", _HERE / "bench_planner.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_planner() -> Dict[str, object]:
    """The plan-quality sweep numbers, via ``bench_planner.measure()``."""
    return _load_bench_planner().measure()


def check_planner(result: Dict[str, object]) -> List[str]:
    """Hard plan-quality gates plus drift against the baseline."""
    bench_planner = _load_bench_planner()
    failures = bench_planner.check(result)
    if PLANNER_BASELINE_PATH.exists():
        with open(PLANNER_BASELINE_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
        ratio = float(result["total_ratio"])
        ceiling = float(baseline["total_ratio"]) * (
            1.0 + PLANNER_RATIO_TOLERANCE
        )
        if ratio > ceiling:
            failures.append(
                f"planner total ratio regressed: {ratio:.2f} vs baseline "
                f"{baseline['total_ratio']:.2f} (ceiling {ceiling:.2f})"
            )
        speedup = float(result["big_join_speedup"])
        floor = float(baseline["big_join_speedup"]) * (
            1.0 - PLANNER_SPEEDUP_TOLERANCE
        )
        if speedup < floor:
            failures.append(
                f"big-join speedup regressed: {speedup:.2f}x vs baseline "
                f"{baseline['big_join_speedup']:.2f}x (floor {floor:.2f}x)"
            )
        q_error = float(result["median_q_error"])
        q_ceiling = (
            float(baseline["median_q_error"]) + PLANNER_Q_ERROR_TOLERANCE
        )
        if q_error > q_ceiling:
            failures.append(
                f"median q-error regressed: {q_error:.2f} vs baseline "
                f"{baseline['median_q_error']:.2f} (ceiling {q_ceiling:.2f})"
            )
    return failures


# ----------------------------------------------------------------------
# pytest wiring (collected by `pytest benchmarks/`)
# ----------------------------------------------------------------------
def test_compiled_speedup_no_regression():
    result = measure()
    write_result(result)
    failures = check(result)
    assert not failures, "; ".join(failures) + " | " + format_result(result)


def test_backends_no_regression():
    bench_backends = _load_bench_backends()
    result = measure_backends()
    bench_backends.write_result(result)
    failures = check_backends(result)
    assert not failures, "; ".join(failures) + "\n" + bench_backends.format_result(
        result
    )


def test_storage_no_regression():
    bench_storage = _load_bench_storage()
    result = measure_storage()
    bench_storage.write_result(result)
    failures = check_storage(result)
    assert not failures, "; ".join(failures) + "\n" + bench_storage.format_result(
        result
    )


def test_planner_no_regression():
    bench_planner = _load_bench_planner()
    result = measure_planner()
    bench_planner.write_result(result)
    failures = check_planner(result)
    assert not failures, "; ".join(failures) + "\n" + bench_planner.format_result(
        result
    )


def test_service_slo_no_regression():
    bench_service = _load_bench_service()
    result = measure_service()
    bench_service.write_result(result)
    failures = check_service(result)
    assert not failures, "; ".join(failures) + "\n" + bench_service.format_result(
        result
    )


def main() -> int:
    bench_service = _load_bench_service()
    result = measure()
    write_result(result)
    print(format_result(result))
    print(f"wrote {RESULT_PATH}")
    failures = check(result)
    bench_backends = _load_bench_backends()
    backends_result = measure_backends()
    bench_backends.write_result(backends_result)
    print(bench_backends.format_result(backends_result))
    print(f"wrote {bench_backends.RESULT_PATH}")
    failures.extend(check_backends(backends_result))
    bench_storage = _load_bench_storage()
    storage_result = measure_storage()
    bench_storage.write_result(storage_result)
    print(bench_storage.format_result(storage_result))
    print(f"wrote {bench_storage.RESULT_PATH}")
    failures.extend(check_storage(storage_result))
    bench_planner = _load_bench_planner()
    planner_result = measure_planner()
    bench_planner.write_result(planner_result)
    print(bench_planner.format_result(planner_result))
    print(f"wrote {bench_planner.RESULT_PATH}")
    failures.extend(check_planner(planner_result))
    service_result = measure_service()
    bench_service.write_result(service_result)
    print(bench_service.format_result(service_result))
    print(f"wrote {bench_service.RESULT_PATH}")
    failures.extend(check_service(service_result))
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
