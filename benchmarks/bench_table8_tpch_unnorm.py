"""Benchmark + reproduction of Table 8: unnormalized TPC-H (TPCH')."""

from __future__ import annotations

import pytest

from repro.experiments import (
    TPCH_QUERIES,
    format_answer_table,
    pick_interpretation,
    run_query,
)


@pytest.fixture(scope="module")
def collected():
    return {}


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.qid)
def test_table8_query(
    benchmark, spec, tpch_unnorm_engine, tpch_unnorm_sqak, collected
):
    outcome = run_query(tpch_unnorm_engine, tpch_unnorm_sqak, spec)
    collected[spec.qid] = outcome

    def pipeline():
        interpretations = tpch_unnorm_engine.compile(spec.text)
        chosen = pick_interpretation(interpretations, spec)
        return tpch_unnorm_engine.executor.execute(chosen.select)

    result = benchmark(pipeline)
    assert len(result) == len(outcome.semantic_result)
    benchmark.extra_info["query"] = spec.text
    benchmark.extra_info["ours"] = outcome.summarize("semantic")
    benchmark.extra_info["sqak"] = outcome.summarize("sqak")


def test_print_table8(benchmark, collected):
    outcomes = [collected[spec.qid] for spec in TPCH_QUERIES if spec.qid in collected]
    assert len(outcomes) == len(TPCH_QUERIES)
    text = benchmark(
        format_answer_table,
        "Table 8 - answers on unnormalized TPC-H (TPCH')",
        outcomes,
    )
    print()
    print(text)
