"""Ablations 1-2 (DESIGN.md): the two ORA-semantics mechanisms.

* relationship dedup off -> T5 collapses to SQAK's over-count;
* disambiguation off -> T3 collapses to SQAK's single mixed answer.

Both are also timed, showing the semantics cost almost nothing at
SQL-generation time (the paper's Figure-11 argument).
"""

from __future__ import annotations

import pytest

from repro.engine import KeywordSearchEngine
from repro.experiments import pick_interpretation, spec_by_id

T3 = spec_by_id("T3")
T5 = spec_by_id("T5")


@pytest.fixture(scope="module")
def no_dedup_engine(tpch_db):
    return KeywordSearchEngine(tpch_db, dedup_relationships=False)


@pytest.fixture(scope="module")
def no_disambiguation_engine(tpch_db):
    return KeywordSearchEngine(tpch_db, disambiguate=False)


def _answer(engine, spec):
    chosen = pick_interpretation(engine.compile(spec.text), spec)
    return engine.executor.execute(chosen.select)


def test_full_semantics_t5(benchmark, tpch_engine):
    result = benchmark(lambda: _answer(tpch_engine, T5))
    assert result.rows == [(4,)]
    benchmark.extra_info["variant"] = "full ORA semantics"


def test_without_relationship_dedup_t5(benchmark, no_dedup_engine):
    result = benchmark(lambda: _answer(no_dedup_engine, T5))
    # without the DISTINCT FK projection the count collapses to SQAK's 22
    assert result.rows == [(22,)]
    benchmark.extra_info["variant"] = "no relationship dedup"


def test_full_semantics_t3(benchmark, tpch_engine):
    result = benchmark(lambda: _answer(tpch_engine, T3))
    assert len(result) == 8
    benchmark.extra_info["variant"] = "full ORA semantics"


def test_without_disambiguation_t3(benchmark, no_disambiguation_engine):
    spec_no_distinguish = type(T3)(
        qid=T3.qid,
        text=T3.text,
        description=T3.description,
        distinguish=False,
        require_aggs=T3.require_aggs,
        sqak_na=T3.sqak_na,
    )
    result = benchmark(
        lambda: _answer(no_disambiguation_engine, spec_no_distinguish)
    )
    # all eight royal-olive parts mixed into one count, SQAK-style
    assert len(result) == 1
    benchmark.extra_info["variant"] = "no disambiguation"
