"""Worker-pool acceptance tests: crash recovery, deadline recycling,
routing, cache coherence and pool-mode byte equivalence.

The low-level tests drive a :class:`~repro.service.pool.WorkerPool`
directly over stub engines whose behaviour is encoded in the query
string (``sleep:<s>`` blocks inside the compile tier, ``raise:<kind>``
fails it), so worker processes can be killed mid-request and the
parent's recovery observed deterministically.  The high-level tests
mirror ``test_concurrency.py``'s 8-thread mixed-load sweep against a
``worker_processes=4`` service and assert responses are **byte**
identical (canonical JSON) to sequential in-process serving.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.errors import DeadlineExceededError, KeywordQueryError
from repro.service import QueryService, ServiceConfig, ServiceRequest
from repro.service.pool import WorkerPool
from repro.service.proto import RemoteWorkerError
from repro.service.service import (
    analyze_payload,
    canonical_json,
    semantic_search_payload,
    sqak_search_payload,
)


# ----------------------------------------------------------------------
# Stub engines (module level: fork-inherited by worker processes)
# ----------------------------------------------------------------------
class _StubExecuted:
    def __init__(self, query: str) -> None:
        self.columns = ["answer"]
        self.rows = [[f"rows for {query}"]]


class _StubInterpretation:
    def __init__(self, query: str, rank: int) -> None:
        self._query = query
        self.rank = rank
        self.description = f"interpretation {rank} of {query!r}"
        self.sql_compact = f"SELECT {rank} FROM stub"

    def execute(self) -> _StubExecuted:
        return _StubExecuted(self._query)


class _StubBackend:
    name = "memory"


class _StubEngine:
    """Behaviour-by-query-string engine: ``sleep:<s>`` blocks in compile,
    ``raise:invalid`` / ``raise:internal`` fail it."""

    strict = False
    backend = _StubBackend()

    def compile(self, query: str, k: int, backend=None):
        if query.startswith("sleep:"):
            time.sleep(float(query.split(":", 1)[1]))
        if query == "raise:invalid":
            raise KeywordQueryError("no interpretation for stub query")
        if query == "raise:internal":
            raise ValueError("stub engine exploded")
        return [_StubInterpretation(query, rank) for rank in range(1, k + 1)]

    def clear_cache(self) -> None:
        pass


def _stub_runtimes():
    return {"stub": (_StubEngine(), None)}


def _search_msg(query: str, k: int = 3, **extra):
    fields = {"k": k, "backend": "memory", "epoch": 0}
    fields.update(extra)
    return fields


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
def test_worker_killed_mid_request_respawns_and_answers_exactly_once():
    with WorkerPool(_stub_runtimes, workers=1) as pool:
        handle = pool._handles[0]
        first_pid = handle.process.pid
        results, errors = [], []

        def dispatch() -> None:
            try:
                results.append(
                    pool.dispatch("search", "stub", "sleep:0.6", **_search_msg("sleep:0.6"))
                )
            except Exception as exc:  # pragma: no cover - diagnostic aid
                errors.append(exc)

        thread = threading.Thread(target=dispatch, daemon=True)
        thread.start()
        time.sleep(0.2)  # the worker is now inside the 0.6s compile
        os.kill(first_pid, signal.SIGKILL)
        thread.join(30.0)
        assert not thread.is_alive(), "dispatch never returned after the kill"

        # exactly one response, produced by the respawned worker's retry
        assert not errors, errors
        assert len(results) == 1
        payload = results[0]["payload"]
        assert payload["best"]["rows"] == [["rows for sleep:0.6"]]
        assert handle.restarts == 1
        assert handle.process.pid != first_pid
        assert pool.counters["respawns"] == 1
        assert pool.counters["crash_retries"] == 1


def test_dead_idle_worker_is_respawned_on_next_dispatch():
    with WorkerPool(_stub_runtimes, workers=1) as pool:
        handle = pool._handles[0]
        os.kill(handle.process.pid, signal.SIGKILL)
        handle.process.join(5.0)
        result = pool.dispatch("search", "stub", "warm", **_search_msg("warm"))
        assert result["payload"]["query"] == "warm"
        assert handle.restarts == 1
        # the death was noticed before the send: no crash retry needed
        assert pool.counters["crash_retries"] == 0


# ----------------------------------------------------------------------
# Deadline semantics
# ----------------------------------------------------------------------
def test_wedged_worker_is_killed_at_deadline_plus_grace():
    with WorkerPool(_stub_runtimes, workers=1, grace_s=0.2) as pool:
        handle = pool._handles[0]
        wedged_pid = handle.process.pid
        with pytest.raises(DeadlineExceededError):
            pool.dispatch(
                "search",
                "stub",
                "sleep:30",
                deadline_s=0.2,
                **_search_msg("sleep:30"),
            )
        assert pool.counters["deadline_kills"] == 1
        # the pool recovers: the next request lands on a fresh worker
        result = pool.dispatch("search", "stub", "after", **_search_msg("after"))
        assert result["payload"]["query"] == "after"
        assert handle.process.pid != wedged_pid


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
def test_worker_exceptions_surface_as_their_in_process_classes():
    with WorkerPool(_stub_runtimes, workers=1) as pool:
        with pytest.raises(KeywordQueryError, match="no interpretation"):
            pool.dispatch(
                "search", "stub", "raise:invalid", **_search_msg("raise:invalid")
            )
        with pytest.raises(RemoteWorkerError) as excinfo:
            pool.dispatch(
                "search", "stub", "raise:internal", **_search_msg("raise:internal")
            )
        # pre-formatted by the worker: original type, no double wrapping
        assert str(excinfo.value) == "ValueError: stub engine exploded"
        # a classified failure is not a crash: same process, no respawn
        assert pool._handles[0].restarts == 0


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_routing_is_stable_and_covers_every_worker():
    pool = WorkerPool(_stub_runtimes, workers=4)
    owners = {pool.route("stub", f"query {i}") for i in range(200)}
    assert owners == {0, 1, 2, 3}
    for i in range(20):
        key_owner = pool.route("stub", f"query {i}")
        assert all(
            pool.route("stub", f"query {i}") == key_owner for _ in range(5)
        )


def test_route_by_dataset_gives_strict_ownership():
    pool = WorkerPool(_stub_runtimes, workers=4, route_by="dataset")
    owner = pool.route("stub", "query a")
    assert all(pool.route("stub", f"query {i}") == owner for i in range(50))


# ----------------------------------------------------------------------
# Cache coherence (epochs)
# ----------------------------------------------------------------------
def test_epoch_bump_clears_worker_caches_and_fresh_workers_adopt():
    with WorkerPool(_stub_runtimes, workers=1) as pool:
        # first contact at epoch 5: adopt without clearing (fresh caches)
        pool.dispatch("search", "stub", "warm", **_search_msg("warm", epoch=5))
        snapshot = pool.metrics_snapshot()["workers"]["0"]
        assert snapshot["epochs"] == {"stub": 5}
        assert snapshot["counters"]["cache_clears"] == 0
        # same epoch: memo survives (second identical request hits it)
        pool.dispatch("search", "stub", "warm", **_search_msg("warm", epoch=5))
        assert (
            pool.metrics_snapshot()["workers"]["0"]["counters"][
                "compile_memo_hits"
            ]
            == 1
        )
        # epoch moved past the worker's view: it clears before serving
        pool.dispatch("search", "stub", "warm", **_search_msg("warm", epoch=6))
        snapshot = pool.metrics_snapshot()["workers"]["0"]
        assert snapshot["epochs"] == {"stub": 6}
        assert snapshot["counters"]["cache_clears"] == 1
        assert pool.broadcast_clear("stub", 7) == 1
        assert pool.metrics_snapshot()["workers"]["0"]["epochs"] == {"stub": 7}


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------
def test_stop_leaves_no_processes_behind():
    pool = WorkerPool(_stub_runtimes, workers=2)
    pool.start()
    processes = [handle.process for handle in pool._handles]
    assert all(process.is_alive() for process in processes)
    pool.stop()
    assert all(not process.is_alive() for process in processes)
    assert all(handle.process is None for handle in pool._handles)
    assert not pool.running


# ----------------------------------------------------------------------
# Service-level pool mode
# ----------------------------------------------------------------------
def _pool_service(engine, sqak=None, **overrides) -> QueryService:
    config = ServiceConfig(
        **{
            "max_workers": 4,
            "queue_limit": 64,
            "degrade_queue_depth": 64,
            "cache_ttl_s": 60.0,
            "default_deadline_s": 60.0,
            "worker_processes": 4,
            **overrides,
        }
    )
    service = QueryService(config)
    service.register_dataset("university", engine, sqak=sqak)
    return service


def test_pool_mode_requires_fork_or_factory(university_engine):
    service = _pool_service(university_engine, worker_context="spawn")
    with pytest.raises(RuntimeError, match="picklable"):
        service.start()


def test_pool_mode_mixed_load_is_byte_identical(
    university_engine, university_sqak
):
    """The 8-thread / 208-request sweep of ``test_concurrency.py``, served
    by four worker processes: every response must match sequential
    in-process serving byte for byte (canonical JSON)."""
    import random

    clients, per_client = 8, 26
    queries = [
        "COUNT Lecturer GROUPBY Course",
        "Green SUM Credit",
        "COUNT Student GROUPBY Course",
        "AVG Credit",
        "COUNT Student",
        "COUNT Student GROUPBY Grade",
        "COUNT Enrol",
        "MAX COUNT Student",
    ]
    sqak_queries = ["COUNT Student GROUPBY Course", "AVG Credit"]
    service = _pool_service(university_engine, sqak=university_sqak)
    responses, lock, errors = [], threading.Lock(), []

    def client(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(per_client):
                roll = rng.random()
                if roll < 0.1:
                    request = ServiceRequest(
                        query=rng.choice(sqak_queries), engine="sqak"
                    )
                elif roll < 0.2:
                    request = ServiceRequest(
                        query=rng.choice(queries), mode="analyze"
                    )
                else:
                    request = ServiceRequest(
                        query=rng.choice(queries), k=rng.choice([1, 3])
                    )
                response = service.serve(request, timeout=120.0)
                with lock:
                    responses.append((request, response))
        except Exception as exc:  # pragma: no cover - diagnostic aid
            errors.append(exc)

    with service:
        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180.0)
        assert not any(thread.is_alive() for thread in threads)
        snapshot = service.metrics_snapshot()
    assert not errors, errors
    assert len(responses) == clients * per_client
    assert all(response.ok for _, response in responses)

    expected = {}
    for request, response in responses:
        key = (request.engine, request.mode, request.query, request.k)
        if key not in expected:
            if request.engine == "sqak":
                payload = sqak_search_payload(
                    university_sqak, "university", request.query
                )
            elif request.mode == "analyze":
                payload = analyze_payload(
                    university_engine,
                    "university",
                    request.query,
                    request.k or service.config.default_k,
                )
            else:
                payload = semantic_search_payload(
                    university_engine,
                    "university",
                    request.query,
                    request.k or service.config.default_k,
                )
            expected[key] = canonical_json(payload)
        assert response.body() == expected[key], request

    # the lifecycle counters live in the front end: the reconciliation
    # identities hold exactly in pool mode too
    counters = snapshot["service"]["counters"]
    total = clients * per_client
    assert counters["requests_submitted"] == total
    assert counters["requests_admitted"] == total
    assert counters["requests_admitted"] == (
        counters.get("result_cache_hits", 0)
        + counters.get("result_cache_misses", 0)
        + counters.get("singleflight_coalesced", 0)
    )
    # per-worker breakdowns are exported, and the work actually spread
    workers = snapshot["workers"]["workers"]
    assert set(workers) == {"0", "1", "2", "3"}
    served = sum(entry["counters"]["requests"] for entry in workers.values())
    assert served == counters.get("result_cache_misses", 0)
    assert sum(1 for entry in workers.values() if entry["counters"]["requests"]) >= 2


def test_pool_mode_survives_worker_kill_under_load(
    university_engine, university_sqak
):
    """SIGKILL a worker while requests are in flight: every request still
    resolves exactly once with an admissible status, and the pool reports
    the respawn."""
    service = _pool_service(
        university_engine, sqak=university_sqak, cache_ttl_s=0.0
    )
    with service:
        pool = service._pool
        pendings = [
            service.submit(
                ServiceRequest(query="COUNT Student GROUPBY Course", k=3)
            )
            for _ in range(12)
        ]
        for handle in pool._handles:
            if handle.process is not None:
                os.kill(handle.process.pid, signal.SIGKILL)
        responses = [pending.wait(60.0) for pending in pendings]
        assert len(responses) == 12
        # a kill between dispatch attempts can surface as an error, but
        # nothing may hang or be lost; cached/coalesced paths stay ok
        assert {response.status for response in responses} <= {"ok", "error"}
        assert any(response.ok for response in responses)
        expected = canonical_json(
            semantic_search_payload(
                university_engine,
                "university",
                "COUNT Student GROUPBY Course",
                3,
            )
        )
        for response in responses:
            if response.ok:
                assert response.body() == expected
        health = service.health()
        assert health["pool"]["respawns"] >= 1
        follow_up = service.serve(ServiceRequest(query="AVG Credit"), timeout=60.0)
        assert follow_up.ok


def test_pool_mode_deadline_and_breaker_semantics_unchanged(
    university_engine,
):
    """An already-expired deadline times out before any dispatch, and
    repeated worker failures trip the breaker exactly as in-process."""
    service = _pool_service(university_engine, cache_ttl_s=0.0)
    with service:
        timed_out = service.serve(
            ServiceRequest(query="AVG Credit", deadline_s=0.0), timeout=30.0
        )
        assert timed_out.status == "timeout"
        counters = service.metrics_snapshot()["service"]["counters"]
        assert counters["requests_timed_out"] == 1
        # an invalid query is classified in the worker, re-raised in the
        # parent, and recorded as the client's fault (breaker stays closed)
        invalid = service.serve(
            ServiceRequest(query="ZZZ_NO_SUCH_KEYWORD_ZZZ"), timeout=30.0
        )
        assert invalid.status in ("invalid", "ok", "error")
        healthy = service.serve(ServiceRequest(query="AVG Credit"), timeout=30.0)
        assert healthy.ok


def test_pool_mode_invalidation_propagates(university_db):
    from repro.engine import KeywordSearchEngine

    engine = KeywordSearchEngine(university_db)
    service = _pool_service(engine, worker_processes=2, cache_ttl_s=60.0)
    with service:
        first = service.serve(ServiceRequest(query="AVG Credit"), timeout=30.0)
        assert first.ok and first.cache == "miss"
        cached = service.serve(ServiceRequest(query="AVG Credit"), timeout=30.0)
        assert cached.cache == "hit"
        engine.clear_cache()  # fires the service's invalidation hook
        recomputed = service.serve(
            ServiceRequest(query="AVG Credit"), timeout=30.0
        )
        assert recomputed.cache == "miss"
        assert recomputed.body() == first.body()
        workers = service.metrics_snapshot()["workers"]["workers"]
        assert any(
            entry["counters"]["cache_clears"] >= 1 for entry in workers.values()
        )
