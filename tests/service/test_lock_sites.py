"""Stress tests for the two riskiest lock sites the static pass models.

The concurrency analyzer (:mod:`repro.analysis.concurrency`) proves the
*discipline* — every ``CircuitBreaker`` state write holds ``_lock``,
every ``ResultCache`` map write holds ``_lock`` — but discipline alone
does not prove the *protocols* built on top of it.  These tests hammer
the two protocols whose failure modes are silent:

* the breaker's half-open probe admission: ``would_reject`` (the
  non-mutating admission fast path) racing ``allow`` / ``record_*``
  (the worker-side mutators) must admit **exactly one** probe per
  half-open window, whatever the interleaving;
* the result cache's single-flight contract: however many threads miss
  the same key at once, **exactly one** runs the loader; everyone gets
  the same value.

Run them under ``REPRO_LOCK_SANITIZER=strict`` and they double as the
runtime sanitizer's workload for the service locks.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceUnavailableError
from repro.service import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, ResultCache


class TestBreakerHalfOpenRace:
    """would_reject vs allow vs record_* around the OPEN -> HALF_OPEN edge."""

    def _tripped(self, reset_s=0.02):
        breaker = CircuitBreaker(failure_threshold=1, reset_s=reset_s)
        assert breaker.record_failure() == [(CLOSED, OPEN)]
        return breaker

    def test_exactly_one_probe_admitted(self):
        breaker = self._tripped()
        time.sleep(0.05)  # reset window elapsed: next allow() is a probe
        n = 16
        barrier = threading.Barrier(n)
        admitted = []
        rejected = []

        def contender(idx):
            barrier.wait(timeout=10.0)
            try:
                breaker.allow()
            except ServiceUnavailableError:
                rejected.append(idx)
            else:
                admitted.append(idx)

        threads = [
            threading.Thread(
                target=contender, args=(i,), name=f"probe-{i}", daemon=True
            )
            for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(admitted) == 1
        assert len(rejected) == n - 1
        assert breaker.state == HALF_OPEN
        # the lone probe succeeds: breaker closes, backoff resets
        assert breaker.record_success() == [(HALF_OPEN, CLOSED)]
        assert breaker.snapshot()["reset_s"] == breaker.base_reset_s

    def test_would_reject_racing_the_probe_transition(self):
        """The admission fast path must never steal or duplicate a probe."""
        rounds = 30
        for round_no in range(rounds):
            breaker = self._tripped(reset_s=0.005)
            time.sleep(0.01)
            n = 8
            barrier = threading.Barrier(n + 1)
            outcomes = []
            stop = threading.Event()

            def spin_would_reject():
                barrier.wait(timeout=10.0)
                while not stop.is_set():
                    # never raises, never mutates: open-and-due, half-open
                    # and closed all return False
                    assert breaker.would_reject() in (False, True)

            def contender():
                barrier.wait(timeout=10.0)
                try:
                    breaker.allow()
                except ServiceUnavailableError:
                    outcomes.append("rejected")
                else:
                    outcomes.append("admitted")

            spinner = threading.Thread(
                target=spin_would_reject, name="would-reject", daemon=True
            )
            threads = [
                threading.Thread(
                    target=contender, name=f"allow-{i}", daemon=True
                )
                for i in range(n)
            ]
            spinner.start()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10.0)
            stop.set()
            spinner.join(10.0)
            assert outcomes.count("admitted") == 1, (
                f"round {round_no}: {outcomes}"
            )
            # alternate probe verdicts; bookkeeping must stay balanced
            if round_no % 2 == 0:
                assert breaker.record_success() == [(HALF_OPEN, CLOSED)]
                assert breaker.state == CLOSED
            else:
                assert breaker.record_failure() == [(HALF_OPEN, OPEN)]
                assert breaker.state == OPEN
            assert breaker.snapshot()["state"] in (CLOSED, OPEN)

    def test_failed_probe_backs_off_exactly_once(self):
        breaker = self._tripped(reset_s=0.01)
        time.sleep(0.03)
        breaker.allow()
        # concurrent latecomers during the probe are rejected, and their
        # rejections must not touch the backoff bookkeeping
        for _ in range(4):
            with pytest.raises(ServiceUnavailableError):
                breaker.allow()
        breaker.record_failure()
        assert breaker.snapshot()["reset_s"] == pytest.approx(
            0.01 * breaker.backoff_factor
        )


class TestSingleFlightStress:
    """ResultCache: exactly one loader per key, however many racers."""

    def test_one_loader_per_key_under_contention(self):
        cache = ResultCache(size=64, ttl_s=60.0)
        keys = [f"key-{i}" for i in range(8)]
        loads = {key: 0 for key in keys}
        loads_lock = threading.Lock()

        def loader_for(key):
            def compute():
                with loads_lock:
                    loads[key] += 1
                time.sleep(0.01)  # widen the window followers race into
                return f"value-{key}"

            return compute

        n = 32
        barrier = threading.Barrier(n)
        results = [None] * n
        errors = []

        def racer(idx):
            key = keys[idx % len(keys)]
            try:
                barrier.wait(timeout=10.0)
                value, outcome = cache.get_or_compute(
                    key, loader_for(key), timeout=10.0
                )
                results[idx] = (key, value, outcome)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(
                target=racer, args=(i,), name=f"racer-{i}", daemon=True
            )
            for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert errors == []
        assert all(loads[key] == 1 for key in keys), loads
        for idx, (key, value, outcome) in enumerate(results):
            assert value == f"value-{key}"
            assert outcome in ("miss", "coalesced", "hit")
        # per key: exactly one miss (the leader), the rest coalesced/hit
        for key in keys:
            outcomes = [r[2] for r in results if r[0] == key]
            assert outcomes.count("miss") == 1, (key, outcomes)

    def test_repeated_rounds_stay_single_flight(self):
        cache = ResultCache(size=16, ttl_s=60.0)
        loads = []

        def compute():
            loads.append(threading.current_thread().name)
            time.sleep(0.005)
            return 42

        for round_no in range(10):
            cache.invalidate()  # force a fresh flight each round
            n = 12
            barrier = threading.Barrier(n)

            def racer():
                barrier.wait(timeout=10.0)
                value, _ = cache.get_or_compute("k", compute, timeout=10.0)
                assert value == 42

            threads = [
                threading.Thread(
                    target=racer, name=f"r{round_no}-{i}", daemon=True
                )
                for i in range(n)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10.0)
            assert len(loads) == round_no + 1, (
                f"round {round_no} ran {len(loads) - round_no} loaders"
            )

    def test_leader_failure_releases_followers_not_poisons_cache(self):
        cache = ResultCache(size=16, ttl_s=60.0)
        gate = threading.Event()
        boom = RuntimeError("loader exploded")

        def failing():
            gate.wait(5.0)
            raise boom

        follower_errors = []
        started = threading.Barrier(2)

        def leader():
            started.wait(timeout=10.0)
            try:
                cache.get_or_compute("k", failing, timeout=10.0)
            except RuntimeError as exc:
                follower_errors.append(("leader", exc))

        def follower():
            started.wait(timeout=10.0)
            time.sleep(0.02)  # let the leader win the flight
            try:
                cache.get_or_compute("k", failing, timeout=10.0)
            except RuntimeError as exc:
                follower_errors.append(("follower", exc))

        threads = [
            threading.Thread(target=leader, name="leader", daemon=True),
            threading.Thread(target=follower, name="follower", daemon=True),
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(10.0)
        roles = sorted(role for role, _ in follower_errors)
        assert roles in (["follower", "leader"], ["leader"])
        # the failure was not cached: the next compute runs fresh
        value, outcome = cache.get_or_compute("k", lambda: 7, timeout=5.0)
        assert (value, outcome) == (7, "miss")
