"""HTTP front-end tests: routing, status codes, canonical bodies.

One server per module on an OS-assigned port (``port=0``), torn down
explicitly; every request goes through real sockets via urllib.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.service import (
    QueryService,
    ServiceConfig,
    ServiceRequest,
    canonical_json,
    make_server,
)


@pytest.fixture(scope="module")
def served(university_engine, university_sqak):
    service = QueryService(ServiceConfig(max_workers=2, cache_ttl_s=30.0))
    service.register_dataset(
        "university", university_engine, sqak=university_sqak
    )
    server = make_server(service, port=0)
    thread = server.serve_background()
    host, port = server.server_address[:2]
    with service:
        yield service, f"http://{host}:{port}"
        server.shutdown()
    server.server_close()
    thread.join(5.0)


def get(base: str, path: str):
    """(status, parsed json body) for one GET, errors included."""
    try:
        with urllib.request.urlopen(base + path, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRouting:
    def test_healthz(self, served):
        _, base = served
        status, body = get(base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["datasets"] == ["university"]

    def test_unknown_route_404(self, served):
        _, base = served
        status, body = get(base, "/nope")
        assert status == 404
        assert "unknown route" in body["error"]

    def test_missing_query_400(self, served):
        _, base = served
        status, body = get(base, "/search")
        assert status == 400
        assert "missing" in body["error"]

    def test_bad_k_400(self, served):
        _, base = served
        status, _ = get(base, "/search?q=AVG+Credit&k=banana")
        assert status == 400

    def test_bad_deadline_400(self, served):
        _, base = served
        status, _ = get(base, "/search?q=AVG+Credit&deadline_ms=soon")
        assert status == 400


class TestSearch:
    def test_semantic_search(self, served):
        _, base = served
        status, body = get(base, "/search?q=" + quote("AVG Credit"))
        assert status == 200
        assert body["best"]["rows"] == [[4.0]]
        assert body["engine"] == "semantic"
        assert body["interpretations"][0]["rank"] == 1

    def test_sqak_search(self, served):
        _, base = served
        status, body = get(
            base, "/search?q=" + quote("COUNT Student GROUPBY Course") + "&engine=sqak"
        )
        assert status == 200
        assert body["engine"] == "sqak"
        assert "SELECT" in body["sql"]

    def test_unknown_dataset_404(self, served):
        _, base = served
        status, _ = get(base, "/search?q=AVG+Credit&dataset=nope")
        assert status == 404

    def test_unparseable_query_400(self, served):
        _, base = served
        status, body = get(base, "/search?q=zzznomatch+xyzzy")
        assert status == 400
        assert "error" in body

    def test_http_body_matches_service_body(self, served):
        """The HTTP layer adds nothing: bytes are the service's bytes."""
        service, base = served
        with urllib.request.urlopen(
            base + "/search?q=" + quote("COUNT Student"), timeout=30.0
        ) as response:
            http_body = response.read()
        direct = service.serve(
            ServiceRequest(query="COUNT Student"), timeout=30.0
        )
        assert http_body == direct.body()
        assert http_body == canonical_json(direct.payload)

    def test_analyze(self, served):
        _, base = served
        status, body = get(base, "/analyze?q=" + quote("AVG Credit"))
        assert status == 200
        assert body["diagnostics"] == []

    def test_metrics_endpoint(self, served):
        _, base = served
        status, body = get(base, "/metrics")
        assert status == 200
        counters = body["service"]["counters"]
        assert counters["requests_submitted"] >= 1
        assert "university" in body["breakers"]

    def test_expired_deadline_504(self, served):
        _, base = served
        status, body = get(base, "/search?q=" + quote("COUNT Lecturer") + "&deadline_ms=0")
        assert status == 504
        assert "deadline" in body["error"]


class TestServeCli:
    def test_parser_defaults(self):
        from repro.service.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.port == 8080
        assert args.datasets == "university"

    def test_run_serve_rejects_empty_datasets(self, capsys):
        from repro.service.cli import run_serve

        assert run_serve(["--datasets", ","]) == 2

    def test_build_service_registers_sqak(self):
        from repro.service.cli import build_service

        service = build_service(["university"], ServiceConfig(max_workers=1))
        assert service.datasets == ["university"]
        assert service._runtimes["university"].sqak is not None
