"""HTTP front-end tests: routing, status codes, canonical bodies.

One server per module on an OS-assigned port (``port=0``), torn down
explicitly; every request goes through real sockets via urllib.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.service import (
    QueryService,
    ServiceConfig,
    ServiceRequest,
    canonical_json,
    make_server,
)


@pytest.fixture(scope="module")
def served(university_engine, university_sqak):
    service = QueryService(ServiceConfig(max_workers=2, cache_ttl_s=30.0))
    service.register_dataset(
        "university", university_engine, sqak=university_sqak
    )
    server = make_server(service, port=0)
    thread = server.serve_background()
    host, port = server.server_address[:2]
    with service:
        yield service, f"http://{host}:{port}"
        server.shutdown()
    server.server_close()
    thread.join(5.0)


def get(base: str, path: str):
    """(status, parsed json body) for one GET, errors included."""
    try:
        with urllib.request.urlopen(base + path, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRouting:
    def test_healthz(self, served):
        _, base = served
        status, body = get(base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["datasets"] == ["university"]

    def test_unknown_route_404(self, served):
        _, base = served
        status, body = get(base, "/nope")
        assert status == 404
        assert "unknown route" in body["error"]

    def test_missing_query_400(self, served):
        _, base = served
        status, body = get(base, "/search")
        assert status == 400
        assert "missing" in body["error"]

    def test_bad_k_400(self, served):
        _, base = served
        status, _ = get(base, "/search?q=AVG+Credit&k=banana")
        assert status == 400

    def test_bad_deadline_400(self, served):
        _, base = served
        status, _ = get(base, "/search?q=AVG+Credit&deadline_ms=soon")
        assert status == 400


class TestSearch:
    def test_semantic_search(self, served):
        _, base = served
        status, body = get(base, "/search?q=" + quote("AVG Credit"))
        assert status == 200
        assert body["best"]["rows"] == [[4.0]]
        assert body["engine"] == "semantic"
        assert body["interpretations"][0]["rank"] == 1

    def test_sqak_search(self, served):
        _, base = served
        status, body = get(
            base, "/search?q=" + quote("COUNT Student GROUPBY Course") + "&engine=sqak"
        )
        assert status == 200
        assert body["engine"] == "sqak"
        assert "SELECT" in body["sql"]

    def test_unknown_dataset_404(self, served):
        _, base = served
        status, _ = get(base, "/search?q=AVG+Credit&dataset=nope")
        assert status == 404

    def test_unparseable_query_400(self, served):
        _, base = served
        status, body = get(base, "/search?q=zzznomatch+xyzzy")
        assert status == 400
        assert "error" in body

    def test_http_body_matches_service_body(self, served):
        """The HTTP layer adds nothing: bytes are the service's bytes."""
        service, base = served
        with urllib.request.urlopen(
            base + "/search?q=" + quote("COUNT Student"), timeout=30.0
        ) as response:
            http_body = response.read()
        direct = service.serve(
            ServiceRequest(query="COUNT Student"), timeout=30.0
        )
        assert http_body == direct.body()
        assert http_body == canonical_json(direct.payload)

    def test_analyze(self, served):
        _, base = served
        status, body = get(base, "/analyze?q=" + quote("AVG Credit"))
        assert status == 200
        assert body["diagnostics"] == []

    def test_metrics_endpoint(self, served):
        _, base = served
        status, body = get(base, "/metrics")
        assert status == 200
        counters = body["service"]["counters"]
        assert counters["requests_submitted"] >= 1
        assert "university" in body["breakers"]

    def test_expired_deadline_504(self, served):
        _, base = served
        status, body = get(base, "/search?q=" + quote("COUNT Lecturer") + "&deadline_ms=0")
        assert status == 504
        assert "deadline" in body["error"]


class TestServeCli:
    def test_parser_defaults(self):
        from repro.service.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.port == 8080
        assert args.datasets == "university"

    def test_run_serve_rejects_empty_datasets(self, capsys):
        from repro.service.cli import run_serve

        assert run_serve(["--datasets", ","]) == 2

    def test_build_service_registers_sqak(self):
        from repro.service.cli import build_service

        service = build_service(["university"], ServiceConfig(max_workers=1))
        assert service.datasets == ["university"]
        assert service._runtimes["university"].sqak is not None


class TestGracefulShutdown:
    """``ServiceHTTPServer.stop``: accepted requests finish, listener closes."""

    def _slow_server(self, university_engine, monkeypatch):
        service = QueryService(ServiceConfig(max_workers=2, cache_ttl_s=0.0))
        service.register_dataset("university", university_engine)
        release = threading.Event()
        started = threading.Event()
        original = university_engine.search

        def slow_search(query_text, *args, **kwargs):
            if "slowmark" in query_text:
                started.set()
                release.wait(15.0)
                query_text = "AVG Credit"
            return original(query_text, *args, **kwargs)

        monkeypatch.setattr(university_engine, "search", slow_search)
        server = make_server(service, port=0)
        server.serve_background()
        host, port = server.server_address[:2]
        return service, server, f"http://{host}:{port}", release, started

    def test_in_flight_request_completes_during_stop(
        self, university_engine, monkeypatch
    ):
        service, server, base, release, started = self._slow_server(
            university_engine, monkeypatch
        )
        with service:
            results = {}

            def request():
                results["response"] = get(
                    base, "/search?q=" + quote("slowmark AVG Credit")
                )

            client = threading.Thread(
                target=request, name="slow-client", daemon=True
            )
            client.start()
            assert started.wait(10.0)

            stragglers = {}

            def stop():
                stragglers["names"] = server.stop(grace_s=10.0)

            stopper = threading.Thread(
                target=stop, name="stopper", daemon=True
            )
            stopper.start()
            # the drain is now waiting on the in-flight request; let it
            # finish and the response must still reach the client
            release.set()
            stopper.join(15.0)
            client.join(15.0)
            assert stragglers["names"] == []
            status, body = results["response"]
            assert status == 200
            assert body["engine"] == "semantic"
        # the listener is closed: new connections are refused
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(base + "/healthz", timeout=2.0)

    def test_straggler_past_grace_is_reported_not_killed(
        self, university_engine, monkeypatch
    ):
        service, server, base, release, started = self._slow_server(
            university_engine, monkeypatch
        )
        with service:
            results = {}

            def request():
                results["response"] = get(
                    base, "/search?q=" + quote("slowmark straggler")
                )

            client = threading.Thread(
                target=request, name="slow-client-2", daemon=True
            )
            client.start()
            assert started.wait(10.0)
            stragglers = server.stop(grace_s=0.2)
            assert len(stragglers) == 1
            assert stragglers[0].startswith("repro-http-request-")
            # past the grace the thread is abandoned, not severed: once
            # released it still completes and the client gets its bytes
            release.set()
            client.join(15.0)
            status, _ = results["response"]
            assert status == 200

    def test_request_threads_are_named_and_reaped(
        self, university_engine, monkeypatch
    ):
        service, server, base, release, started = self._slow_server(
            university_engine, monkeypatch
        )
        release.set()
        with service:
            for _ in range(3):
                status, _ = get(base, "/healthz")
                assert status == 200
            with server._requests_lock:
                tracked = list(server._request_threads)
            assert all(
                thread.name.startswith("repro-http-request-")
                for thread in tracked
            )
            # finished threads are reaped as new connections arrive;
            # the tracker never grows without bound
            assert len(tracked) <= 3
            assert server.stop(grace_s=5.0) == []
