"""Concurrency acceptance tests: the ISSUE's load, equivalence and
reconciliation criteria.

* ≥200 mixed queries fired from ≥8 client threads complete without
  deadlock (every wait has a hard timeout — a hang fails the test
  rather than wedging the suite).
* Every admitted response is **byte-identical** to a sequential
  ``engine.search`` of the same query at the same effective ``k``.
* The service counters reconcile: ``admitted = cache hits + misses +
  coalesced`` and every submission is accounted for by exactly one
  terminal counter.
"""

from __future__ import annotations

import random
import threading

from repro.service import QueryService, ServiceConfig, ServiceRequest
from repro.service.service import semantic_search_payload, sqak_search_payload

CLIENTS = 8
REQUESTS_PER_CLIENT = 26  # 8 * 26 = 208 total requests

QUERIES = [
    "COUNT Lecturer GROUPBY Course",
    "Green SUM Credit",
    "COUNT Student GROUPBY Course",
    "AVG Credit",
    "COUNT Student",
    "COUNT Student GROUPBY Grade",
    "COUNT Enrol",
    "MAX COUNT Student",
]
SQAK_QUERIES = [
    "COUNT Student GROUPBY Course",
    "AVG Credit",
]


def test_mixed_load_equivalence_and_reconciliation(
    university_engine, university_sqak
):
    service = QueryService(
        ServiceConfig(
            max_workers=4,
            queue_limit=64,
            # the queue legitimately gets deep under 8 clients; keep the
            # degraded mode out of this test so every response is at the
            # requested k (degradation has its own test)
            degrade_queue_depth=64,
            cache_ttl_s=60.0,
            default_deadline_s=60.0,
        )
    )
    service.register_dataset(
        "university", university_engine, sqak=university_sqak
    )
    responses = []
    responses_lock = threading.Lock()
    errors = []

    def client(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                if rng.random() < 0.15:
                    request = ServiceRequest(
                        query=rng.choice(SQAK_QUERIES), engine="sqak"
                    )
                else:
                    request = ServiceRequest(
                        query=rng.choice(QUERIES), k=rng.choice([1, 3])
                    )
                response = service.serve(request, timeout=120.0)
                with responses_lock:
                    responses.append((request, response))
        except Exception as exc:  # pragma: no cover - diagnostic aid
            errors.append(exc)

    with service:
        threads = [
            threading.Thread(
                target=client, args=(seed,), name=f"client-{seed}", daemon=True
            )
            for seed in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180.0)
        hung = [thread.name for thread in threads if thread.is_alive()]
        assert not hung, f"deadlocked client threads: {hung}"
    assert not errors, errors

    assert len(responses) == CLIENTS * REQUESTS_PER_CLIENT
    assert all(response.ok for _, response in responses), [
        (request.query, response.status)
        for request, response in responses
        if not response.ok
    ]

    # byte-equivalence: each admitted response equals the sequential
    # payload for the same (engine, query, k) — computed fresh here
    expected = {}
    for request, response in responses:
        key = (request.engine, request.query, request.k)
        if key not in expected:
            if request.engine == "sqak":
                expected[key] = sqak_search_payload(
                    university_sqak, "university", request.query
                )
            else:
                expected[key] = semantic_search_payload(
                    university_engine,
                    "university",
                    request.query,
                    request.k or service.config.default_k,
                )
        assert response.payload == expected[key], request

    counters = service.metrics_snapshot()["service"]["counters"]
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert counters["requests_submitted"] == total
    assert counters["requests_enqueued"] == total  # nothing shed at this load
    assert counters["requests_admitted"] == total
    assert counters["requests_ok"] == total
    # the reconciliation identity from docs/SERVING.md
    assert counters["requests_admitted"] == (
        counters.get("result_cache_hits", 0)
        + counters.get("result_cache_misses", 0)
        + counters.get("singleflight_coalesced", 0)
    )
    # 8 semantic queries x 2 ks + 2 sqak queries bound the distinct keys;
    # everything beyond the first computation of each must have been a
    # hit or coalesced into the leader's flight
    distinct_keys = len(
        {(r.engine, r.query, r.k) for r, _ in responses}
    )
    assert counters.get("result_cache_misses", 0) <= distinct_keys


def test_concurrent_timeouts_do_not_deadlock(university_engine):
    """Deadline-carrying requests racing healthy ones: all resolve."""
    service = QueryService(
        ServiceConfig(max_workers=2, queue_limit=32, cache_ttl_s=0.0)
    )
    service.register_dataset("university", university_engine)
    with service:
        pendings = []
        for i in range(30):
            deadline = 0.0 if i % 3 == 0 else 30.0
            pendings.append(
                service.submit(
                    ServiceRequest(
                        query=QUERIES[i % len(QUERIES)], deadline_s=deadline
                    )
                )
            )
        statuses = [pending.wait(60.0).status for pending in pendings]
    assert set(statuses) <= {"ok", "timeout"}
    assert "timeout" in statuses and "ok" in statuses
    counters = service.metrics_snapshot()["service"]["counters"]
    assert counters["requests_timed_out"] == statuses.count("timeout")
