"""Backend selection through the service and HTTP layers."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.service import (
    QueryService,
    ServiceConfig,
    ServiceRequest,
    make_server,
)


@pytest.fixture(scope="module")
def served(university_engine, university_sqak):
    service = QueryService(ServiceConfig(max_workers=2, cache_ttl_s=30.0))
    service.register_dataset(
        "university", university_engine, sqak=university_sqak
    )
    server = make_server(service, port=0)
    thread = server.serve_background()
    host, port = server.server_address[:2]
    with service:
        yield service, f"http://{host}:{port}"
        server.shutdown()
    server.server_close()
    thread.join(5.0)


def get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=30.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestServiceBackendSelection:
    def test_sqlite_backend_serves_the_same_answer(self, served):
        service, _ = served
        memory = service.serve(ServiceRequest(query="AVG Credit"), timeout=30.0)
        sqlite = service.serve(
            ServiceRequest(query="AVG Credit", backend="sqlite"), timeout=30.0
        )
        assert sqlite.ok, sqlite.payload
        assert memory.payload["backend"] == "memory"
        assert sqlite.payload["backend"] == "sqlite"
        assert (
            sqlite.payload["best"]["rows"] == memory.payload["best"]["rows"] == [[4.0]]
        )

    def test_backend_is_part_of_the_cache_key(self, served):
        service, _ = served
        first = service.serve(
            ServiceRequest(query="COUNT Course", backend="sqlite"), timeout=30.0
        )
        again = service.serve(
            ServiceRequest(query="COUNT Course", backend="sqlite"), timeout=30.0
        )
        other = service.serve(
            ServiceRequest(query="COUNT Course", backend="memory"), timeout=30.0
        )
        assert first.cache == "miss"
        assert again.cache == "hit"
        assert other.cache == "miss"  # distinct entry per backend

    def test_unknown_backend_400(self, served):
        service, _ = served
        response = service.serve(
            ServiceRequest(query="AVG Credit", backend="oracle"), timeout=30.0
        )
        assert response.status == "invalid"
        assert response.http_status == 400
        assert "unknown backend" in response.payload["error"]

    def test_sqak_only_runs_on_memory(self, served):
        service, _ = served
        response = service.serve(
            ServiceRequest(query="Green SUM Credit", engine="sqak", backend="sqlite"),
            timeout=30.0,
        )
        assert response.status == "invalid"
        assert response.http_status == 400


class TestHttpBackendParameter:
    def test_backend_query_parameter(self, served):
        _, base = served
        status, body = get(
            base, f"/search?q={quote('AVG Credit')}&backend=sqlite"
        )
        assert status == 200
        assert body["backend"] == "sqlite"
        assert body["best"]["rows"] == [[4.0]]

    def test_default_is_memory(self, served):
        _, base = served
        status, body = get(base, f"/search?q={quote('AVG Credit')}")
        assert status == 200
        assert body["backend"] == "memory"

    def test_unknown_backend_400(self, served):
        _, base = served
        status, body = get(
            base, f"/search?q={quote('AVG Credit')}&backend=oracle"
        )
        assert status == 400
        assert "unknown backend" in body["error"]
