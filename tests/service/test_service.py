"""Unit tests for the serving layer: config, cache, breaker, service.

Everything time-dependent uses injected fake clocks, so TTL expiry and
breaker reset windows are deterministic; the only real waiting in this
file is on events with generous timeouts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import KeywordSearchEngine
from repro.errors import (
    DeadlineExceededError,
    ServiceUnavailableError,
)
from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    QueryService,
    ResultCache,
    ServiceConfig,
    ServiceRequest,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# ServiceConfig
# ----------------------------------------------------------------------
class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.max_workers == 4
        assert config.effective_degrade_depth == config.queue_limit // 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": 0},
            {"queue_limit": 0},
            {"default_k": 0},
            {"cache_ttl_s": -1.0},
            {"cache_size": 0},
            {"breaker_failure_threshold": 0},
            {"breaker_reset_s": 0.0},
            {"breaker_backoff_factor": 0.5},
            {"degrade_queue_depth": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_explicit_degrade_depth_wins(self):
        config = ServiceConfig(queue_limit=10, degrade_queue_depth=9)
        assert config.effective_degrade_depth == 9

    def test_degrade_depth_floor_is_one(self):
        assert ServiceConfig(queue_limit=1).effective_degrade_depth == 1


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(size=4, ttl_s=10.0, clock=FakeClock())
        value, outcome = cache.get_or_compute("k", lambda: 41)
        assert (value, outcome) == (41, "miss")
        value, outcome = cache.get_or_compute("k", lambda: 42)
        assert (value, outcome) == (41, "hit")

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(size=4, ttl_s=10.0, clock=clock)
        cache.get_or_compute("k", lambda: 1)
        clock.advance(9.9)
        assert cache.get_or_compute("k", lambda: 2)[1] == "hit"
        clock.advance(0.2)
        value, outcome = cache.get_or_compute("k", lambda: 2)
        assert (value, outcome) == (2, "miss")

    def test_lru_eviction(self):
        cache = ResultCache(size=2, ttl_s=10.0, clock=FakeClock())
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refresh a's recency
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.get_or_compute("a", lambda: 9)[1] == "hit"
        assert cache.get_or_compute("b", lambda: 9)[1] == "miss"

    def test_zero_ttl_disables_storage(self):
        cache = ResultCache(size=4, ttl_s=0.0, clock=FakeClock())
        cache.get_or_compute("k", lambda: 1)
        assert cache.get_or_compute("k", lambda: 2)[1] == "miss"
        assert len(cache) == 0

    def test_single_flight_coalesces(self):
        cache = ResultCache(size=4, ttl_s=10.0, clock=FakeClock())
        release = threading.Event()
        computed = []

        def compute():
            release.wait(5.0)
            computed.append(1)
            return "value"

        outcomes = []

        def follower():
            value, outcome = cache.get_or_compute("k", compute)
            outcomes.append((value, outcome))

        leader = threading.Thread(target=follower, name="t-leader", daemon=True)
        leader.start()
        while "k" not in cache._flights:  # wait until the leader owns it
            time.sleep(0.001)
        followers = [
            threading.Thread(target=follower, name=f"t-f{i}", daemon=True)
            for i in range(3)
        ]
        for thread in followers:
            thread.start()
        while cache._flights["k"].followers < 3:
            time.sleep(0.001)
        release.set()
        leader.join(5.0)
        for thread in followers:
            thread.join(5.0)
        assert computed == [1]  # exactly one compute
        assert sorted(o for _, o in outcomes) == [
            "coalesced",
            "coalesced",
            "coalesced",
            "miss",
        ]
        assert all(v == "value" for v, _ in outcomes)

    def test_follower_timeout(self):
        cache = ResultCache(size=4, ttl_s=10.0, clock=FakeClock())
        release = threading.Event()

        def compute():
            release.wait(5.0)
            return 1

        leader = threading.Thread(
            target=lambda: cache.get_or_compute("k", compute),
            name="t-leader",
            daemon=True,
        )
        leader.start()
        while "k" not in cache._flights:
            time.sleep(0.001)
        with pytest.raises(DeadlineExceededError):
            cache.get_or_compute("k", compute, timeout=0.01)
        release.set()
        leader.join(5.0)

    def test_leader_error_propagates_and_is_not_cached(self):
        cache = ResultCache(size=4, ttl_s=10.0, clock=FakeClock())
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert cache.get_or_compute("k", lambda: 7) == (7, "miss")

    def test_invalidate_predicate(self):
        cache = ResultCache(size=8, ttl_s=10.0, clock=FakeClock())
        cache.get_or_compute(("a", 1), lambda: 1)
        cache.get_or_compute(("b", 1), lambda: 2)
        assert cache.invalidate(lambda key: key[0] == "a") == 1
        assert cache.get_or_compute(("a", 1), lambda: 9)[1] == "miss"
        assert cache.get_or_compute(("b", 1), lambda: 9)[1] == "hit"

    def test_invalidation_epoch_blocks_stale_store(self):
        """A value computed before an invalidate() must not be stored."""
        cache = ResultCache(size=4, ttl_s=10.0, clock=FakeClock())
        started = threading.Event()
        release = threading.Event()

        def compute():
            started.set()
            release.wait(5.0)
            return "stale"

        leader = threading.Thread(
            target=lambda: cache.get_or_compute("k", compute),
            name="t-leader",
            daemon=True,
        )
        leader.start()
        assert started.wait(5.0)
        cache.invalidate()  # data changed while the leader was computing
        release.set()
        leader.join(5.0)
        # the stale value must not have been stored with a fresh TTL
        assert cache.get_or_compute("k", lambda: "fresh") == ("fresh", "miss")

    def test_observe_reports_before_compute_failure(self):
        cache = ResultCache(size=4, ttl_s=10.0, clock=FakeClock())
        seen = []
        with pytest.raises(RuntimeError):
            cache.get_or_compute(
                "k",
                lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                observe=seen.append,
            )
        assert seen == ["miss"]


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock, threshold=3):
        return CircuitBreaker(
            failure_threshold=threshold,
            reset_s=1.0,
            backoff_factor=2.0,
            max_reset_s=8.0,
            clock=clock,
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.allow()
            assert breaker.record_failure() == []
        breaker.allow()
        assert breaker.record_failure() == [(CLOSED, OPEN)]
        assert breaker.state == OPEN
        with pytest.raises(ServiceUnavailableError):
            breaker.allow()

    def test_success_resets_failure_streak(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.allow(), breaker.record_failure()
        breaker.allow(), breaker.record_failure()
        breaker.allow(), breaker.record_success()
        assert breaker.consecutive_failures == 0
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow() == [(OPEN, HALF_OPEN)]
        # concurrent request while the probe is in flight: rejected
        with pytest.raises(ServiceUnavailableError):
            breaker.allow()
        assert breaker.record_success() == [(HALF_OPEN, CLOSED)]
        assert breaker.state == CLOSED
        assert breaker.allow() == []

    def test_failed_probe_backs_off_exponentially(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        assert breaker.record_failure() == [(HALF_OPEN, OPEN)]
        assert breaker.snapshot()["reset_s"] == 2.0
        clock.advance(1.1)  # not enough any more
        with pytest.raises(ServiceUnavailableError):
            breaker.allow()
        clock.advance(1.0)  # 2.1s total
        assert breaker.allow() == [(OPEN, HALF_OPEN)]
        breaker.record_failure()
        assert breaker.snapshot()["reset_s"] == 4.0

    def test_backoff_is_capped(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        for _ in range(6):  # 1 -> 2 -> 4 -> 8 (cap) -> 8 ...
            clock.advance(100.0)
            breaker.allow()
            breaker.record_failure()
        assert breaker.snapshot()["reset_s"] == 8.0

    def test_successful_probe_resets_backoff(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        breaker.record_failure()  # backoff -> 2.0
        clock.advance(2.1)
        breaker.allow()
        breaker.record_success()
        assert breaker.snapshot()["reset_s"] == 1.0

    def test_would_reject_is_nonmutating(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert not breaker.would_reject()
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.would_reject()
        clock.advance(1.1)
        # due for a probe: would_reject defers to allow(), and does not
        # itself transition to half-open
        assert not breaker.would_reject()
        assert breaker.state == OPEN
        assert breaker.allow() == [(OPEN, HALF_OPEN)]


# ----------------------------------------------------------------------
# QueryService lifecycle
# ----------------------------------------------------------------------
@pytest.fixture()
def service(university_engine):
    svc = QueryService(ServiceConfig(max_workers=2, cache_ttl_s=30.0))
    svc.register_dataset("university", university_engine)
    with svc:
        yield svc


class TestQueryService:
    def test_basic_search(self, service):
        response = service.serve(ServiceRequest(query="AVG Credit"), timeout=30.0)
        assert response.ok and response.http_status == 200
        assert response.payload["best"]["rows"] == [[4.0]]
        assert response.cache == "miss"

    def test_cache_hit_is_byte_identical(self, service):
        first = service.serve(ServiceRequest(query="COUNT Student"), timeout=30.0)
        second = service.serve(ServiceRequest(query="COUNT Student"), timeout=30.0)
        assert second.cache == "hit"
        assert first.body() == second.body()

    def test_unknown_dataset_404(self, service):
        response = service.serve(
            ServiceRequest(query="AVG Credit", dataset="nope"), timeout=30.0
        )
        assert response.status == "not_found"
        assert response.http_status == 404

    def test_invalid_inputs_400(self, service):
        for request in [
            ServiceRequest(query="   "),
            ServiceRequest(query="AVG Credit", mode="dance"),
            ServiceRequest(query="AVG Credit", engine="oracle"),
            ServiceRequest(query="AVG Credit", k=0),
            ServiceRequest(query="AVG Credit", engine="sqak"),  # none registered
        ]:
            response = service.serve(request, timeout=30.0)
            assert response.status == "invalid", request
            assert response.http_status == 400

    def test_engine_rejection_is_invalid_not_failure(self, service):
        response = service.serve(
            ServiceRequest(query="zzznomatch xyzzy"), timeout=30.0
        )
        assert response.status == "invalid"
        assert service._runtimes["university"].breaker.state == CLOSED

    def test_trace_spans(self, service):
        response = service.serve(
            ServiceRequest(query="MAX COUNT Student", trace=True), timeout=30.0
        )
        names = [span.name for span in response.trace.root.walk()]
        assert names[0] == "request"
        for expected in ("admit", "queue_wait", "serve"):
            assert expected in names

    def test_deadline_already_expired_times_out_in_queue(self, service):
        response = service.serve(
            ServiceRequest(query="AVG Credit", deadline_s=0.0), timeout=30.0
        )
        assert response.status == "timeout"
        assert response.http_status == 504
        assert service.metrics.counter("requests_timed_out") >= 1

    def test_duplicate_dataset_rejected(self, university_engine):
        svc = QueryService()
        svc.register_dataset("u", university_engine)
        with pytest.raises(ValueError):
            svc.register_dataset("u", university_engine)

    def test_start_requires_datasets(self):
        with pytest.raises(RuntimeError):
            QueryService().start()

    def test_health_payload(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["datasets"] == ["university"]
        assert health["breakers"]["university"]["state"] == CLOSED

    def test_metrics_reconcile(self, service):
        for query in ["AVG Credit", "AVG Credit", "COUNT Lecturer GROUPBY Course"]:
            service.serve(ServiceRequest(query=query), timeout=30.0)
        counters = service.metrics_snapshot()["service"]["counters"]
        assert counters["requests_admitted"] == (
            counters.get("result_cache_hits", 0)
            + counters.get("result_cache_misses", 0)
            + counters.get("singleflight_coalesced", 0)
        )


class TestAdmissionControl:
    """Shed / degrade behaviour with workers deliberately wedged."""

    def _wedged_service(self, university_engine, **config_kwargs):
        """A service whose single worker is blocked on a slow request."""
        svc = QueryService(
            ServiceConfig(max_workers=1, cache_ttl_s=0.0, **config_kwargs)
        )
        svc.register_dataset("university", university_engine)

        release = threading.Event()
        started = threading.Event()
        original = university_engine.search

        def slow_search(query_text, *args, **kwargs):
            if query_text == "__slow__":
                started.set()
                release.wait(10.0)
                query_text = "AVG Credit"
            return original(query_text, *args, **kwargs)

        return svc, slow_search, original, release, started

    def test_queue_full_sheds_with_429(self, university_engine, monkeypatch):
        svc, slow, original, release, started = self._wedged_service(
            university_engine, queue_limit=2
        )
        monkeypatch.setattr(university_engine, "search", slow)
        try:
            with svc:
                blocker = svc.submit(ServiceRequest(query="__slow__"))
                assert started.wait(10.0)
                queued = [
                    svc.submit(ServiceRequest(query=f"AVG Credit {i}"))
                    for i in range(2)
                ]
                shed = svc.submit(ServiceRequest(query="COUNT Student"))
                response = shed.wait(1.0)
                assert response.status == "shed"
                assert response.http_status == 429
                assert svc.metrics.counter("requests_shed") == 1
                release.set()
                assert blocker.wait(30.0).ok
                for pending in queued:
                    pending.wait(30.0)
        finally:
            release.set()
            monkeypatch.setattr(university_engine, "search", original)

    def test_degraded_mode_serves_top1(self, university_engine, monkeypatch):
        svc, slow, original, release, started = self._wedged_service(
            university_engine, queue_limit=8, degrade_queue_depth=1
        )
        monkeypatch.setattr(university_engine, "search", slow)
        try:
            with svc:
                blocker = svc.submit(ServiceRequest(query="__slow__"))
                assert started.wait(10.0)
                # these sit in the queue (depth >= 1), so they degrade
                queued = [
                    svc.submit(ServiceRequest(query="MAX COUNT Student", k=3))
                    for _ in range(2)
                ]
                release.set()
                responses = [pending.wait(30.0) for pending in queued]
                assert blocker.wait(30.0).ok
                degraded = [r for r in responses if r.degraded]
                assert degraded, "expected at least one degraded response"
                for response in degraded:
                    assert response.payload["k"] == 1
                    assert len(response.payload["interpretations"]) == 1
                assert svc.metrics.counter("requests_degraded") >= 1
        finally:
            release.set()
            monkeypatch.setattr(university_engine, "search", original)

    def test_breaker_opens_after_failures_and_recovers(
        self, university_engine, monkeypatch
    ):
        svc = QueryService(
            ServiceConfig(
                max_workers=1,
                cache_ttl_s=0.0,
                breaker_failure_threshold=2,
                breaker_reset_s=0.05,
            )
        )
        svc.register_dataset("university", university_engine)
        original = university_engine.search
        boom = True

        def flaky_search(*args, **kwargs):
            if boom:
                raise RuntimeError("engine down")
            return original(*args, **kwargs)

        monkeypatch.setattr(university_engine, "search", flaky_search)
        try:
            with svc:
                for i in range(2):
                    response = svc.serve(
                        ServiceRequest(query=f"AVG Credit {i}"), timeout=30.0
                    )
                    assert response.status == "error"
                assert svc._runtimes["university"].breaker.state == OPEN
                assert svc.metrics.counter("breaker_open_total") == 1
                # fast-rejected at admission while open
                rejected = svc.serve(
                    ServiceRequest(query="COUNT Student"), timeout=30.0
                )
                assert rejected.status == "unavailable"
                assert rejected.http_status == 503
                assert svc.metrics.counter("requests_rejected_breaker") >= 1
                # after the reset window a probe succeeds and closes it
                boom = False
                time.sleep(0.06)
                recovered = svc.serve(
                    ServiceRequest(query="COUNT Student"), timeout=30.0
                )
                assert recovered.ok
                assert svc._runtimes["university"].breaker.state == CLOSED
        finally:
            monkeypatch.setattr(university_engine, "search", original)

    def test_stop_drains_queue_with_clean_rejections(self, university_engine):
        svc = QueryService(ServiceConfig(max_workers=1, queue_limit=4))
        svc.register_dataset("university", university_engine)
        # never started (no workers): enqueue directly, then stop must
        # resolve the stranded request with a clean rejection
        svc._running = True
        pending = svc.submit(ServiceRequest(query="AVG Credit"))
        svc.stop()
        assert pending.wait(1.0).status == "unavailable"


class TestCacheInvalidationHook:
    def test_clear_cache_drops_cached_responses(self):
        from repro.datasets import university_database

        database = university_database()
        engine = KeywordSearchEngine(database)
        svc = QueryService(ServiceConfig(max_workers=1, cache_ttl_s=60.0))
        svc.register_dataset("university", engine)
        with svc:
            first = svc.serve(ServiceRequest(query="COUNT Student"), timeout=30.0)
            assert first.cache == "miss"
            assert svc.serve(
                ServiceRequest(query="COUNT Student"), timeout=30.0
            ).cache == "hit"
            engine.clear_cache()  # e.g. after a data mutation
            refreshed = svc.serve(
                ServiceRequest(query="COUNT Student"), timeout=30.0
            )
            assert refreshed.cache == "miss"
            assert svc.metrics.counter("result_cache_invalidations") >= 1
