"""The project AST lint (tools/lint_repro.py): rules fire, tree is clean."""

import importlib.util
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "lint_repro", REPO_ROOT / "tools" / "lint_repro.py"
)
lint_repro = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint_repro)


def lint_source(tmp_path, relative, source):
    """Write *source* at repro/<relative> under tmp_path and lint it."""
    root = tmp_path / "repro"
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return [
        (code, message)
        for (_, _, code, message) in lint_repro.lint_file(root, path)
    ]


class TestRules:
    def test_lr001_bare_except(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "keywords/x.py",
            """
            try:
                pass
            except:
                pass
            """,
        )
        assert [code for code, _ in findings] == ["LR001"]

    def test_lr002_tracer_outside_entry_points(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "patterns/x.py",
            """
            def f():
                tracer = Tracer()
                return tracer
            """,
        )
        assert [code for code, _ in findings] == ["LR002"]

    def test_lr002_allows_entry_points(self, tmp_path):
        assert (
            lint_source(tmp_path, "engine.py", "tracer = Tracer()\n") == []
        )
        assert (
            lint_source(
                tmp_path, "observability/tracer.py", "t = Tracer()\n"
            )
            == []
        )

    def test_lr003_row_subscript_outside_relational(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "patterns/x.py",
            """
            def f(row):
                return row["Sname"]
            """,
        )
        assert [code for code, _ in findings] == ["LR003"]

    def test_lr003_allowed_inside_relational(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "relational/x.py",
                """
                def f(row):
                    return row["Sname"]
                """,
            )
            == []
        )

    def test_lr003_ignores_positional_indexing(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "patterns/x.py",
                """
                def f(row):
                    return row[0]
                """,
            )
            == []
        )

    def test_lr004_layering_violation(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "sql/x.py",
            "from repro.patterns.pattern import QueryPattern\n",
        )
        assert [code for code, _ in findings] == ["LR004"]

    def test_lr004_lazy_imports_are_exempt(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "relational/x.py",
                """
                def f():
                    from repro.analysis.sql_analyzers import analyze_select
                    return analyze_select
                """,
            )
            == []
        )

    def test_lr005_unnamed_thread(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "engine.py",
            """
            import threading

            def f(work):
                thread = threading.Thread(target=work)
                thread.start()
            """,
        )
        assert [code for code, _ in findings] == ["LR005"]
        assert "name=" in findings[0][1] and "daemon=" in findings[0][1]

    def test_lr005_bare_thread_name_missing_daemon(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "engine.py",
            """
            from threading import Thread

            def f(work):
                return Thread(target=work, name="worker")
            """,
        )
        assert [code for code, _ in findings] == ["LR005"]
        assert "daemon=" in findings[0][1]
        assert "name=" not in findings[0][1]

    def test_lr005_fully_specified_thread_is_fine(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "engine.py",
                """
                import threading

                def f(work):
                    return threading.Thread(
                        target=work, name="worker", daemon=True
                    )
                """,
            )
            == []
        )

    def test_lr005_service_layer_exempt(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "service/x.py",
                """
                import threading

                def f(work):
                    return threading.Thread(target=work)
                """,
            )
            == []
        )

    def test_lr005_ignores_unrelated_thread_attributes(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "engine.py",
                """
                def f(pool):
                    return pool.Thread()
                """,
            )
            == []
        )

    def test_lr006_sqlite3_outside_backends(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "relational/x.py",
            "import sqlite3\n",
        )
        assert [code for code, _ in findings] == ["LR006"]
        findings = lint_source(
            tmp_path,
            "engine.py",
            "from sqlite3 import connect\n",
        )
        assert [code for code, _ in findings] == ["LR006"]

    def test_lr006_allowed_inside_backends(self, tmp_path):
        assert (
            lint_source(tmp_path, "backends/sqlite.py", "import sqlite3\n")
            == []
        )

    def test_lr006_lazy_import_still_flagged(self, tmp_path):
        # unlike LR004, going through a function does not exempt sqlite3:
        # the rule is about which layer talks to sqlite at all
        findings = lint_source(
            tmp_path,
            "service/x.py",
            """
            def f():
                import sqlite3
                return sqlite3
            """,
        )
        assert [code for code, _ in findings] == ["LR006"]

    def test_lr007_multiprocessing_outside_pool(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "service/service.py",
            "import multiprocessing\n",
        )
        assert [code for code, _ in findings] == ["LR007"]
        findings = lint_source(
            tmp_path,
            "engine.py",
            "from multiprocessing import Pipe\n",
        )
        assert [code for code, _ in findings] == ["LR007"]

    def test_lr007_lazy_import_still_flagged(self, tmp_path):
        # like LR006: which layer owns processes is not a nesting question
        findings = lint_source(
            tmp_path,
            "service/http.py",
            """
            def f():
                import multiprocessing
                return multiprocessing
            """,
        )
        assert [code for code, _ in findings] == ["LR007"]

    def test_lr007_os_fork_outside_pool(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "cli.py",
            """
            import os

            def f():
                return os.fork()
            """,
        )
        assert [code for code, _ in findings] == ["LR007"]

    def test_lr007_allowed_inside_pool(self, tmp_path):
        assert (
            lint_source(
                tmp_path, "service/pool.py", "import multiprocessing\n"
            )
            == []
        )

    def test_lr008_binary_open_outside_storage(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "relational/x.py",
            """
            def f(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
        )
        assert [code for code, _ in findings] == ["LR008"]
        findings = lint_source(
            tmp_path,
            "engine.py",
            """
            def f(path):
                return open(path, mode="r+b")
            """,
        )
        assert [code for code, _ in findings] == ["LR008"]

    def test_lr008_text_open_is_fine(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "relational/x.py",
                """
                def f(path):
                    with open(path, "r", encoding="utf-8") as handle:
                        return handle.read()
                """,
            )
            == []
        )
        # a non-literal mode cannot be judged statically; stay silent
        assert (
            lint_source(
                tmp_path,
                "relational/x.py",
                """
                def f(path, mode):
                    return open(path, mode)
                """,
            )
            == []
        )

    def test_lr008_mmap_and_positioned_io_outside_storage(self, tmp_path):
        findings = lint_source(tmp_path, "cli.py", "import mmap\n")
        assert [code for code, _ in findings] == ["LR008"]
        findings = lint_source(
            tmp_path,
            "service/x.py",
            """
            import os

            def f(fd):
                return os.pread(fd, 4096, 0)
            """,
        )
        assert [code for code, _ in findings] == ["LR008"]

    def test_lr008_allowed_inside_storage(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "storage/pager.py",
                """
                import mmap
                import os

                def f(path, fd):
                    handle = open(path, "r+b")
                    return handle, os.pwrite(fd, b"x", 0)
                """,
            )
            == []
        )

    def test_lr004_fd_discovery_exemption(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "fd/discovery.py",
                "from repro.relational.table import Table\n",
            )
            == []
        )
        # the exemption is per-file: other fd modules stay pure
        findings = lint_source(
            tmp_path,
            "fd/closure.py",
            "from repro.relational.table import Table\n",
        )
        assert [code for code, _ in findings] == ["LR004"]

    def test_lr009_random_outside_planner(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "relational/x.py",
            """
            def f():
                import random

                return random.random()
            """,
        )
        assert [code for code, _ in findings] == ["LR009"]

    def test_lr009_random_allowed_in_planner_and_datasets(self, tmp_path):
        for relative in ("planner/stats.py", "datasets/gen2.py"):
            assert lint_source(tmp_path, relative, "import random\n") == []

    def test_lr009_cost_constants_outside_planner(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "backends/x.py",
            """
            SSD_COST_PARAMS = object()
            """,
        )
        assert [code for code, _ in findings] == ["LR009"]
        findings = lint_source(
            tmp_path,
            "relational/x.py",
            "FLASH_COST_PARAMS: object = None\n",
        )
        assert [code for code, _ in findings] == ["LR009"]

    def test_lr009_cost_constants_allowed_in_planner(self, tmp_path):
        assert (
            lint_source(
                tmp_path,
                "planner/cost.py",
                "SSD_COST_PARAMS = object()\n",
            )
            == []
        )

    def test_lr009_importing_params_is_fine(self, tmp_path):
        # consuming the cost model is the point; only defining forks it
        assert (
            lint_source(
                tmp_path,
                "backends/x.py",
                """
                def f():
                    from repro.planner import params_for_backend

                    return params_for_backend("disk")
                """,
            )
            == []
        )

    def test_lr004_planner_layering(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "planner/x.py",
            "from repro.engine import KeywordSearchEngine\n",
        )
        assert [code for code, _ in findings] == ["LR004"]
        findings = lint_source(
            tmp_path,
            "relational/x.py",
            "from repro.planner import Optimizer\n",
        )
        assert [code for code, _ in findings] == ["LR004"]


class TestTree:
    def test_src_repro_is_clean(self):
        findings = lint_repro.lint_tree(REPO_ROOT / "src" / "repro")
        assert findings == [], "\n".join(
            f"{path}:{lineno}: {code} {message}"
            for path, lineno, code, message in findings
        )

    def test_main_exit_codes(self, tmp_path, capsys):
        assert (
            lint_repro.main(["--root", str(REPO_ROOT / "src" / "repro")])
            == 0
        )
        bad = tmp_path / "repro" / "sql"
        bad.mkdir(parents=True)
        (bad / "x.py").write_text(
            "from repro.engine import KeywordSearchEngine\n",
            encoding="utf-8",
        )
        assert lint_repro.main(["--root", str(tmp_path / "repro")]) == 1
