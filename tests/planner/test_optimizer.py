"""The optimizer: plan decisions, DP join ordering, memoization,
staleness, access-path choices, and executor integration."""

import pytest

from repro.cli import load_dataset
from repro.engine import KeywordSearchEngine
from repro.observability import Tracer
from repro.planner import (
    DP_RELATION_LIMIT,
    StatisticsCatalog,
    params_for_backend,
    recommend_indexes,
)
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def tpch():
    database, _, _, _ = load_dataset("tpch")
    return database


@pytest.fixture(scope="module")
def executor(tpch):
    return Executor(tpch, optimizer="cost")


def plan_for(executor, sql, tracer=None):
    return executor.plan_for(parse(sql), tracer or Tracer())


JOIN_AGG_SQL = (
    'SELECT N.nname, SUM(O.amount) AS total FROM Supplier S, Customer C, '
    '"Order" O, Nation N WHERE S.nationkey = N.nationkey AND '
    "C.nationkey = N.nationkey AND O.custkey = C.custkey GROUP BY N.nname"
)


class TestDecisions:
    def test_dp_search_on_join_query(self, executor):
        plan = plan_for(executor, JOIN_AGG_SQL)
        decisions = plan.decisions
        assert decisions is not None
        assert decisions.search == "dp"
        assert len(decisions.join_steps) == 3
        # every alias is joined exactly once
        merged = set()
        for step in decisions.join_steps:
            assert not (step.left & step.right)
            merged |= step.left | step.right
        assert merged == {"S", "C", "O", "N"}

    def test_dp_defers_the_expanding_edge(self, executor):
        # S.nationkey = N.nationkey and C.nationkey = N.nationkey form a
        # many-to-many pair through Nation; the greedy min-product pick
        # would join S with C's component early, but DP keeps the
        # expanding join late.  The first decided step must be a real
        # FK-ish edge (through Nation or Order), never S⋈C directly.
        plan = plan_for(executor, JOIN_AGG_SQL)
        first = plan.decisions.join_steps[0]
        assert first.left | first.right != {"S", "C"}

    def test_single_table_plan(self, executor):
        plan = plan_for(executor, "SELECT COUNT(*) FROM Region R")
        assert plan.decisions.search == "single"
        assert plan.decisions.join_steps == ()

    def test_estimates_are_recorded_per_scan(self, executor):
        plan = plan_for(executor, JOIN_AGG_SQL)
        scans = plan.decisions.scans
        assert set(scans) == {"S", "C", "O", "N"}
        assert scans["N"].base_rows == 25
        assert scans["O"].base_rows == 900

    def test_group_output_estimate(self, executor):
        plan = plan_for(executor, JOIN_AGG_SQL)
        decisions = plan.decisions
        # 25 nations: the GROUP BY estimate must be in that ballpark,
        # far below the joined cardinality
        assert decisions.est_groups is not None
        assert decisions.est_groups <= 25
        assert decisions.est_output < decisions.est_joined


class TestExecutionAgreement:
    @pytest.mark.parametrize(
        "sql",
        [
            JOIN_AGG_SQL,
            'SELECT C.cname FROM Customer C, "Order" O '
            "WHERE O.custkey = C.custkey AND O.amount > 50000",
            "SELECT R.rname, COUNT(N.nname) AS n FROM Region R, Nation N "
            "WHERE N.regionkey = R.regionkey GROUP BY R.rname",
        ],
    )
    def test_cost_and_off_agree(self, tpch, sql):
        select = parse(sql)
        on = Executor(tpch, optimizer="cost").execute(select)
        off = Executor(tpch, optimizer="off").execute(select)
        assert on == off

    def test_observed_actuals_after_execute(self, executor):
        plan = plan_for(executor, JOIN_AGG_SQL)
        plan.execute(tracer=Tracer())
        run = plan.last_run
        assert run is not None
        labels = [obs.label for obs in run.operators]
        assert "output" in labels
        assert any(label.startswith("scan ") for label in labels)
        for obs in run.operators:
            assert obs.q_error >= 1.0

    def test_explain_carries_estimates_and_actuals(self, executor):
        plan = plan_for(executor, JOIN_AGG_SQL)
        plan.execute(tracer=Tracer())
        text = plan.explain()
        assert "est≈" in text
        assert "actual" in text
        assert "join order" in text


class TestMemoAndStaleness:
    def _database(self):
        schema = DatabaseSchema("memo")
        schema.add_relation(
            "A", [("id", DataType.INT), ("bid", DataType.INT)], ["id"]
        )
        schema.add_relation(
            "B", [("id", DataType.INT), ("v", DataType.INT)], ["id"]
        )
        db = Database(schema)
        db.load("A", [(i, i % 5) for i in range(20)])
        db.load("B", [(i, i * 2) for i in range(5)])
        return db

    SQL = "SELECT A.id FROM A, B WHERE A.bid = B.id"

    def test_memo_hit_on_repeat_decide(self):
        db = self._database()
        executor = Executor(db, optimizer="cost")
        tracer = Tracer()
        executor.plan_for(parse(self.SQL), tracer)
        assert executor.optimizer.memo_len == 1
        before = tracer.registry.counter("planner_memo_hits")
        # bypass the plan cache to force a fresh compile + decide
        executor.clear_plan_cache()
        # clear_plan_cache also invalidates the memo; re-seed, then hit
        executor.plan_for(parse(self.SQL), tracer)
        with executor._plan_lock:
            executor._plan_cache.clear()
        executor.plan_for(parse(self.SQL), tracer)
        assert tracer.registry.counter("planner_memo_hits") > before

    def test_mutation_between_searches_recollects_stats(self):
        # the satellite regression: mutate a table between two searches
        # and the second one must plan from fresh statistics
        db = self._database()
        executor = Executor(db, optimizer="cost")
        tracer = Tracer()
        first = executor.execute(parse(self.SQL), tracer=tracer)
        catalog = executor.optimizer.catalog
        version_before = catalog.version
        assert len(first.rows) == 20
        db.insert("A", (99, 0))
        second = executor.execute(parse(self.SQL), tracer=tracer)
        assert len(second.rows) == 21
        assert catalog.version != version_before
        assert executor.optimizer.catalog.profile("A").rows == 21

    def test_clear_cache_drops_stats_and_memo(self):
        db = self._database()
        engine = KeywordSearchEngine(db)
        executor = engine.executor
        executor.plan_for(parse(self.SQL), Tracer())
        optimizer = executor.optimizer
        assert optimizer.memo_len == 1
        assert optimizer.catalog.cached_relations
        engine.clear_cache()
        assert optimizer.memo_len == 0
        assert optimizer.catalog.cached_relations == ()

    def test_optimizer_off_never_builds_planner_state(self):
        db = self._database()
        executor = Executor(db, optimizer="off")
        executor.execute(parse(self.SQL))
        assert executor.optimizer is None
        plan = executor.plan_for(parse(self.SQL))
        assert plan.decisions is None


class TestGreedyFallback:
    def test_wide_join_uses_runtime_greedy(self):
        # DP_RELATION_LIMIT + 1 copies of one table, chained on id
        schema = DatabaseSchema("wide")
        schema.add_relation("W", [("id", DataType.INT)], ["id"])
        db = Database(schema)
        db.load("W", [(i,) for i in range(4)])
        n = DP_RELATION_LIMIT + 1
        aliases = [f"W{i}" for i in range(n)]
        froms = ", ".join(f"W {a}" for a in aliases)
        conds = " AND ".join(
            f"{aliases[i]}.id = {aliases[i + 1]}.id" for i in range(n - 1)
        )
        sql = f"SELECT {aliases[0]}.id FROM {froms} WHERE {conds}"
        executor = Executor(db, optimizer="cost")
        tracer = Tracer()
        plan = executor.plan_for(parse(sql), tracer)
        assert plan.decisions.search == "greedy-runtime"
        assert plan.decisions.join_steps == ()
        assert tracer.registry.counter("planner_greedy_fallbacks") >= 1
        result = executor.execute(parse(sql))
        assert len(result.rows) == 4


class TestCostParams:
    def test_backend_presets(self):
        assert params_for_backend("memory").backend == "memory"
        assert params_for_backend("disk").backend == "disk"
        assert params_for_backend("anything-else").backend == "memory"
        assert (
            params_for_backend("disk").index_probe
            > params_for_backend("memory").index_probe
        )


class TestRecommendIndexes:
    def test_recommends_selective_columns_on_large_tables(self, tpch):
        pairs = recommend_indexes(StatisticsCatalog(tpch))
        tables_in_order = [table for table, _ in pairs]
        assert tables_in_order == sorted(tables_in_order)
        tables = set(tables_in_order)
        # only tables clearing the row floor qualify (Region has 5 rows)
        assert "Region" not in tables
        assert any(table == "Order" for table, _ in pairs)
