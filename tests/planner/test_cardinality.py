"""Cardinality estimation: sample-based selectivities, formula
fallbacks, join and GROUP BY output estimates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.cardinality import (
    CONTAINS_SELECTIVITY,
    closure_selectivity,
    expression_selectivity,
    group_output_estimate,
    join_selectivity,
    predicate_selectivity,
    scan_selectivity,
)
from repro.planner.stats import (
    DEFAULT_PREDICATE_SELECTIVITY,
    profile_table,
)
from repro.sql.ast import BinaryOp, ColumnRef, Contains, Literal


def profile_of(rows, columns=("id", "v")):
    return profile_table("T", columns, rows)


class TestClosureSelectivity:
    def test_none_on_empty_sample(self):
        assert closure_selectivity((lambda row: True,), []) is None

    def test_laplace_smoothing_keeps_open_interval(self):
        sample = [(i,) for i in range(9)]
        none_match = closure_selectivity((lambda row: False,), sample)
        all_match = closure_selectivity((lambda row: True,), sample)
        assert 0.0 < none_match < all_match < 1.0

    def test_raising_closure_counts_as_non_match(self):
        def boom(row):
            raise TypeError("mixed types")

        sample = [(1,), (2,)]
        assert closure_selectivity((boom,), sample) == pytest.approx(0.5 / 3)

    def test_joint_evaluation_is_correlation_aware(self):
        # v > 5 and v > 3 are perfectly correlated: joint ≈ P(v > 5),
        # far from the independence product
        sample = [(i,) for i in range(10)]
        joint = closure_selectivity(
            (lambda r: r[0] > 5, lambda r: r[0] > 3), sample
        )
        assert joint == pytest.approx((4 + 0.5) / 11)


class TestExpressionFallbacks:
    def test_contains_constant(self):
        expr = Contains(ColumnRef("t", "T"), "needle")
        assert (
            expression_selectivity(expr, lambda e: None)
            == CONTAINS_SELECTIVITY
        )

    def test_unmodelled_defaults_to_one_third(self):
        expr = BinaryOp("!=", ColumnRef("v", "T"), Literal(3))
        assert (
            expression_selectivity(expr, lambda e: None)
            == DEFAULT_PREDICATE_SELECTIVITY
        )

    def test_eq_uses_profile(self):
        profile = profile_of([(i, i % 4) for i in range(100)])
        column = profile.column("v")
        expr = BinaryOp("=", ColumnRef("v", "T"), Literal(2))
        got = expression_selectivity(
            expr, lambda e: column if isinstance(e, ColumnRef) else None
        )
        assert got == pytest.approx(0.25, abs=0.05)

    def test_range_uses_histogram_and_flips_literal_on_left(self):
        profile = profile_of([(i, i) for i in range(100)])
        column = profile.column("v")

        def column_of(expr):
            return column if isinstance(expr, ColumnRef) else None

        right = BinaryOp("<", ColumnRef("v", "T"), Literal(50))
        flipped = BinaryOp(">", Literal(50), ColumnRef("v", "T"))
        assert expression_selectivity(right, column_of) == pytest.approx(
            expression_selectivity(flipped, column_of)
        )
        assert expression_selectivity(right, column_of) == pytest.approx(
            0.5, abs=0.1
        )


class TestPredicateAndScan:
    def test_sample_trumps_formula(self):
        profile = profile_of([(i, i) for i in range(100)])
        expr = BinaryOp("=", ColumnRef("v", "T"), Literal(3))
        got = predicate_selectivity(
            expr, lambda row: row[1] == 3, profile, lambda e: None
        )
        assert got == pytest.approx((1 + 0.5) / 101)

    def test_scan_selectivity_empty_predicates(self):
        assert scan_selectivity((), (), None, lambda e: None) == 1.0

    def test_scan_selectivity_fallback_multiplies(self):
        exprs = (
            BinaryOp("!=", ColumnRef("v", "T"), Literal(1)),
            BinaryOp("!=", ColumnRef("v", "T"), Literal(2)),
        )
        got = scan_selectivity(exprs, (), None, lambda e: None)
        assert got == pytest.approx(DEFAULT_PREDICATE_SELECTIVITY ** 2)


class TestJoinAndGroup:
    def test_join_selectivity_classical(self):
        assert join_selectivity(10, 40) == pytest.approx(1 / 40)
        assert join_selectivity(0, 0) == 1.0

    def test_group_output_capped_by_input(self):
        assert group_output_estimate(50, [10, 10]) == 50
        assert group_output_estimate(1000, [10, 10]) == 100
        assert group_output_estimate(0, [5]) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(0, 1e6),
        st.lists(st.floats(0, 1e4), max_size=5),
    )
    def test_group_output_always_bounded(self, rows, ndvs):
        got = group_output_estimate(rows, ndvs)
        assert 1.0 <= got <= max(1.0, rows)
