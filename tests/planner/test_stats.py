"""Statistics subsystem: histograms, MCVs, NDV estimation, catalog
caching and invalidation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import university_database
from repro.planner import (
    StatisticsCatalog,
    StatsConfig,
    estimate_ndv,
    profile_table,
)
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.relational.statistics import build_equi_height, build_mcv
from repro.relational.types import DataType


def small_database(rows):
    schema = DatabaseSchema("stats")
    schema.add_relation(
        "T",
        [("id", DataType.INT), ("v", DataType.INT), ("t", DataType.TEXT)],
        ["id"],
    )
    db = Database(schema)
    db.load("T", rows)
    return db


class TestHistogram:
    def test_quantile_bounds_cover_data(self):
        hist = build_equi_height(list(range(100)), buckets=4)
        assert hist is not None
        assert hist.le_fraction(-1) == 0.0
        assert hist.le_fraction(99) == 1.0
        assert 0.4 < hist.le_fraction(49) < 0.6

    def test_none_on_empty_or_non_numeric(self):
        assert build_equi_height([], buckets=4) is None
        assert build_equi_height(["a", "b"], buckets=4) is None
        assert build_equi_height([True, False], buckets=4) is None

    def test_range_selectivity_bounds(self):
        hist = build_equi_height([1, 2, 3, 4, 5, 6, 7, 8], buckets=4)
        sel = hist.range_selectivity(low=2, high=6)
        assert 0.0 <= sel <= 1.0
        assert hist.range_selectivity(low=100) == 0.0
        assert hist.range_selectivity(high=100) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
        st.integers(-1200, 1200),
    )
    def test_le_fraction_always_in_unit_interval(self, values, probe):
        hist = build_equi_height(values, buckets=8)
        assert hist is not None
        assert 0.0 <= hist.le_fraction(probe) <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
        st.integers(-1200, 1200),
        st.integers(0, 500),
    )
    def test_le_fraction_monotone(self, values, probe, widen):
        # widening the range can never shrink the estimated fraction
        hist = build_equi_height(values, buckets=8)
        assert hist.le_fraction(probe) <= hist.le_fraction(probe + widen)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=100),
        st.integers(-120, 120),
        st.integers(-120, 120),
        st.integers(0, 50),
    )
    def test_range_selectivity_monotone_under_widening(
        self, values, low, high, widen
    ):
        hist = build_equi_height(values, buckets=8)
        narrow = hist.range_selectivity(low=low, high=high)
        wide = hist.range_selectivity(low=low - widen, high=high + widen)
        assert 0.0 <= narrow <= wide <= 1.0


class TestMcv:
    def test_fractions_and_coverage(self):
        mcv = build_mcv(["a"] * 6 + ["b"] * 3 + ["c"], size=2)
        assert mcv.values == ("a", "b")
        assert mcv.fraction_of("a") == pytest.approx(0.6)
        assert mcv.fraction_of("zzz") is None
        assert mcv.coverage == pytest.approx(0.9)

    def test_deterministic_tie_break(self):
        first = build_mcv(["b", "a", "b", "a", "c"], size=2)
        second = build_mcv(["a", "b", "a", "b", "c"], size=2)
        assert first.values == second.values == ("a", "b")


class TestNdvEstimation:
    def test_exact_when_sample_covers_table(self):
        counts = {1: 3, 2: 2, 3: 1}
        assert estimate_ndv(counts, rows=6, sampled=6) == 3.0

    def test_gee_scales_up_singletons(self):
        counts = {i: 1 for i in range(50)}
        estimate = estimate_ndv(counts, rows=5000, sampled=50)
        assert estimate > 50  # singleton-heavy sample implies many unseen
        assert estimate <= 5000

    def test_clamped_to_row_count(self):
        counts = {i: 1 for i in range(10)}
        assert estimate_ndv(counts, rows=11, sampled=10) <= 11


class TestProfileTable:
    def test_single_pass_exact_aggregates(self):
        rows = [(i, i % 5, None if i % 3 == 0 else "x") for i in range(30)]
        profile = profile_table("T", ("id", "v", "t"), rows)
        assert profile.rows == 30
        v = profile.column("v")
        assert v.minimum == 0 and v.maximum == 4
        assert v.ndv == pytest.approx(5.0)
        t = profile.column("t")
        assert t.null_fraction == pytest.approx(10 / 30)

    def test_deterministic_under_fixed_seed(self):
        rows = [(i, i * 7 % 113, "t%d" % (i % 9)) for i in range(2000)]
        config = StatsConfig(sample_size=64)
        a = profile_table("T", ("id", "v", "t"), rows, config)
        b = profile_table("T", ("id", "v", "t"), rows, config)
        assert a == b
        assert a.sampled_rows == 64

    def test_column_lookup_is_case_insensitive(self):
        profile = profile_table("T", ("Id",), [(1,), (2,)])
        assert profile.column("id") is not None
        assert profile.column("missing") is None


class TestCatalog:
    def test_profiles_cached_per_version(self):
        db = small_database([(i, i, "x") for i in range(10)])
        catalog = StatisticsCatalog(db)
        first = catalog.profile("T")
        assert catalog.profile("T") is first
        assert catalog.builds == 1

    def test_mutation_epoch_drops_profiles(self):
        db = small_database([(i, i, "x") for i in range(10)])
        catalog = StatisticsCatalog(db)
        before = catalog.profile("T")
        db.insert("T", (99, 99, "y"))
        after = catalog.profile("T")
        assert after is not before
        assert after.rows == before.rows + 1
        assert catalog.builds == 2

    def test_explicit_invalidation(self):
        db = small_database([(1, 1, "x")])
        catalog = StatisticsCatalog(db)
        catalog.profile("T")
        assert catalog.cached_relations == ("t",)
        catalog.invalidate()
        assert catalog.cached_relations == ()

    def test_profiles_covers_every_relation(self):
        catalog = StatisticsCatalog(university_database())
        profiles = catalog.profiles()
        assert set(profiles) == {
            relation.name for relation in catalog.database.schema
        }
