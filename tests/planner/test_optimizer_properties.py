"""Property-based planner guarantees.

* The cost-based optimizer never changes results: over generated
  schemas, data and join-aggregate queries, the optimizer-on answer is
  multiset-identical to the optimizer-off (heuristic) answer.
* Histogram-derived selectivities stay inside [0, 1] and grow
  monotonically as a range predicate widens (the second half of that
  property lives in ``test_stats.py`` next to the histogram unit tests).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.stats import profile_table
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Literal,
    Select,
    SelectItem,
    TableRef,
    agg,
    eq,
)


def and_(left, right):
    return BinaryOp("AND", left, right)

INT = DataType.INT
TEXT = DataType.TEXT

tags = st.sampled_from(["red", "green", "blue"])
a_rows = st.lists(
    st.tuples(st.integers(0, 8), st.one_of(st.none(), st.integers(-4, 4)), tags),
    min_size=0,
    max_size=14,
)
b_rows = st.lists(
    st.tuples(st.integers(0, 8), st.integers(-4, 4)),
    min_size=0,
    max_size=10,
)
c_rows = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(-4, 4)),
    min_size=0,
    max_size=14,
)


def build_database(
    a: List[Tuple[int, Optional[int], str]],
    b: List[Tuple[int, int]],
    c: List[Tuple[int, int, int]],
) -> Database:
    schema = DatabaseSchema("prop")
    schema.add_relation("A", [("aid", INT), ("val", INT), ("tag", TEXT)], ["aid"])
    schema.add_relation("B", [("bid", INT), ("score", INT)], ["bid"])
    schema.add_relation("C", [("cid", INT), ("aref", INT), ("w", INT)], ["cid"])
    db = Database(schema)
    db.load("A", [(i, v, t) for i, (_, v, t) in enumerate(a)])
    db.load("B", [(i, s) for i, (_, s) in enumerate(b)])
    db.load("C", [(i, aref, w) for i, (_, aref, w) in enumerate(c)])
    return db


def assert_same_multiset(db: Database, select: Select) -> None:
    on = Executor(db, optimizer="cost").execute(select)
    off = Executor(db, optimizer="off").execute(select)
    # QueryResult equality canonicalizes to a row multiset
    assert on == off
    assert sorted(map(repr, on.rows)) == sorted(map(repr, off.rows))


@settings(max_examples=60, deadline=None)
@given(a_rows, c_rows, st.integers(-4, 4))
def test_filtered_join_multiset_identical(a, c, threshold):
    db = build_database(a, [], c)
    select = Select(
        items=(SelectItem(ColumnRef("aid", "A")), SelectItem(ColumnRef("cid", "C"))),
        from_items=(TableRef.of("A"), TableRef.of("C")),
        where=and_(
            eq(ColumnRef("aref", "C"), ColumnRef("aid", "A")),
            BinaryOp(">", ColumnRef("w", "C"), Literal(threshold)),
        ),
    )
    assert_same_multiset(db, select)


@settings(max_examples=60, deadline=None)
@given(a_rows, b_rows, c_rows)
def test_three_way_join_aggregate_multiset_identical(a, b, c):
    db = build_database(a, b, c)
    select = Select(
        items=(
            SelectItem(ColumnRef("tag", "A")),
            SelectItem(agg("COUNT", ColumnRef("cid", "C")), alias="n"),
            SelectItem(agg("SUM", ColumnRef("score", "B")), alias="s"),
        ),
        from_items=(TableRef.of("A"), TableRef.of("B"), TableRef.of("C")),
        where=and_(
            eq(ColumnRef("aref", "C"), ColumnRef("aid", "A")),
            eq(ColumnRef("bid", "B"), ColumnRef("w", "C")),
        ),
        group_by=(ColumnRef("tag", "A"),),
    )
    assert_same_multiset(db, select)


@settings(max_examples=60, deadline=None)
@given(a_rows, st.sampled_from(["red", "green", "blue"]), st.integers(-4, 4))
def test_pushed_predicates_multiset_identical(a, tag, lo):
    db = build_database(a, [], [])
    select = Select(
        items=(SelectItem(ColumnRef("aid", "A")),),
        from_items=(TableRef.of("A"),),
        where=and_(
            eq(ColumnRef("tag", "A"), Literal(tag)),
            BinaryOp(">=", ColumnRef("val", "A"), Literal(lo)),
        ),
    )
    assert_same_multiset(db, select)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(-50, 50), min_size=1, max_size=60),
    st.integers(-60, 60),
    st.integers(0, 40),
)
def test_profile_range_selectivity_unit_interval_and_monotone(
    values, probe, widen
):
    rows = [(i, v) for i, v in enumerate(values)]
    profile = profile_table("T", ("id", "v"), rows)
    column = profile.column("v")
    lt_narrow = column.range_selectivity("<", probe)
    lt_wide = column.range_selectivity("<", probe + widen)
    assert 0.0 <= lt_narrow <= lt_wide <= 1.0
    gt_narrow = column.range_selectivity(">", probe)
    gt_wide = column.range_selectivity(">", probe - widen)
    assert 0.0 <= gt_narrow <= gt_wide <= 1.0
