"""Unit tests for term matching (tags)."""

import pytest

from repro.errors import NoMatchError
from repro.keywords import (
    KeywordQuery,
    NormalizedCatalog,
    TagKind,
    TermMatcher,
    name_match_score,
)
from repro.keywords.query import Term, TermKind


def term(text: str, quoted: bool = False, position: int = 0) -> Term:
    return Term(text, TermKind.BASIC, quoted, position)


class TestNameMatchScore:
    def test_exact(self):
        assert name_match_score("student", "Student") == 1.0

    def test_plural(self):
        assert name_match_score("orders", "Order") == 0.9
        assert name_match_score("order", "Orders") == 0.9

    def test_prefix(self):
        assert name_match_score("order", "Ordering") == 0.7

    def test_prefix_needs_four_chars(self):
        assert name_match_score("ord", "Ordering") is None

    def test_containment(self):
        assert name_match_score("proceeding", "EditorProceeding") == 0.6

    def test_common_prefix_abbreviation(self):
        assert name_match_score("supplier", "suppkey") == 0.5
        assert name_match_score("proceeding", "procid") == 0.5

    def test_short_common_prefix_rejected(self):
        assert name_match_score("sname", "suppkey") is None

    def test_no_match(self):
        assert name_match_score("zebra", "Student") is None


class TestTermMatcher:
    @pytest.fixture(scope="class")
    def matcher(self, university_db):
        return TermMatcher(NormalizedCatalog(university_db))

    def test_relation_name_match(self, matcher):
        tags = matcher.match_term(term("student"))
        assert tags[0].kind is TagKind.RELATION
        assert tags[0].relation == "Student"

    def test_attribute_name_match(self, matcher):
        tags = matcher.match_term(term("credit"))
        assert any(
            t.kind is TagKind.ATTRIBUTE and t.attribute == "Credit" for t in tags
        )

    def test_value_match_counts_distinct_objects(self, matcher):
        tags = matcher.match_term(term("Green"))
        value_tags = [t for t in tags if t.kind is TagKind.VALUE]
        assert len(value_tags) == 1
        assert value_tags[0].relation == "Student"
        assert value_tags[0].distinct_objects == 2

    def test_ambiguous_value_match(self, matcher):
        # George is both a student name and a lecturer name
        tags = matcher.match_term(term("George"))
        value_relations = {
            t.relation for t in tags if t.kind is TagKind.VALUE
        }
        assert value_relations == {"Student", "Lecturer"}

    def test_quoted_term_skips_metadata(self, matcher):
        tags = matcher.match_term(term("Student", quoted=True))
        assert all(t.kind is TagKind.VALUE for t in tags)

    def test_metadata_tags_sorted_before_values(self, matcher):
        # 'Java' only matches values; 'course' matches metadata first
        tags = matcher.match_term(term("course"))
        assert tags[0].kind is TagKind.RELATION

    def test_value_tags_have_lower_exactness(self, matcher):
        tags = matcher.match_term(term("Green"))
        value_tag = next(t for t in tags if t.kind is TagKind.VALUE)
        assert value_tag.exactness == 0.8

    def test_match_query_collects_all_basic_terms(self, matcher):
        query = KeywordQuery("Green SUM Credit")
        tags = matcher.match_query(query)
        assert set(tags) == {0, 2}

    def test_no_match_raises(self, matcher):
        query = KeywordQuery("zzzznothing COUNT Credit")
        with pytest.raises(NoMatchError):
            matcher.match_query(query)

    def test_distinct_object_count(self, university_db):
        catalog = NormalizedCatalog(university_db)
        assert catalog.distinct_object_count("Student", "Sname", "Green") == 2
        assert catalog.distinct_object_count("Student", "Sname", "George") == 1
        assert catalog.distinct_object_count("Student", "Sname", "Nobody") == 0

    def test_tag_describe(self, matcher):
        tags = matcher.match_term(term("Green"))
        assert "value of Student.Sname" in tags[0].describe()
