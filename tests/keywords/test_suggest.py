"""Unit tests for query suggestions."""

import pytest

from repro.keywords import NormalizedCatalog
from repro.keywords.suggest import (
    Suggestion,
    complete_term,
    next_term_kinds,
    suggest_queries,
)


@pytest.fixture(scope="module")
def catalog():
    from repro.datasets import university_database

    return NormalizedCatalog(university_database())


class TestCompleteTerm:
    def test_relation_prefix(self, catalog):
        suggestions = complete_term(catalog, "stu")
        assert suggestions[0].text == "Student"
        assert suggestions[0].kind == "relation"

    def test_attribute_prefix_carries_relation_detail(self, catalog):
        suggestions = complete_term(catalog, "cred")
        attribute = next(s for s in suggestions if s.kind == "attribute")
        assert attribute.text == "Credit"
        assert attribute.detail == "Course"

    def test_value_completion(self, catalog):
        suggestions = complete_term(catalog, "Gre")
        values = [s for s in suggestions if s.kind == "value"]
        assert values and "Student.Sname" in values[0].detail
        assert "2 objects" in values[0].detail

    def test_metadata_before_values(self, catalog):
        # 'c' prefixes Course/Code/Credit metadata; metadata must lead
        suggestions = complete_term(catalog, "co")
        assert suggestions[0].kind in ("relation", "attribute")

    def test_empty_prefix(self, catalog):
        assert complete_term(catalog, "") == []

    def test_limit(self, catalog):
        assert len(complete_term(catalog, "c", limit=2)) <= 2

    def test_no_duplicates(self, catalog):
        suggestions = complete_term(catalog, "s", limit=50)
        keys = [(s.text.lower(), s.kind, s.detail) for s in suggestions]
        assert len(keys) == len(set(keys))


class TestNextTermKinds:
    def test_empty_prefix_allows_everything(self):
        assert next_term_kinds("") == ["basic", "aggregate", "groupby"]

    def test_after_sum_expects_attribute(self):
        assert next_term_kinds("Green SUM") == ["attribute", "aggregate"]

    def test_after_count_expects_relation_or_attribute(self):
        assert next_term_kinds("COUNT") == ["relation-or-attribute", "aggregate"]

    def test_after_groupby(self):
        assert next_term_kinds("COUNT Student GROUPBY") == [
            "relation-or-attribute"
        ]

    def test_after_basic_term(self):
        assert next_term_kinds("Green") == ["basic", "aggregate", "groupby"]

    def test_quoted_operator_word_is_basic(self):
        assert next_term_kinds('"COUNT"') == ["basic", "aggregate", "groupby"]

    def test_unbalanced_quote_yields_nothing(self):
        assert next_term_kinds('COUNT "unfinished') == []


class TestSuggestQueries:
    def test_university_suggestions_run(self, catalog):
        from repro.engine import KeywordSearchEngine
        from repro.datasets import university_database

        engine = KeywordSearchEngine(university_database())
        suggestions = suggest_queries(catalog)
        assert suggestions
        for text in suggestions:
            result = engine.search(text, k=1)
            assert result.best.execute() is not None

    def test_relationship_queries_present(self, catalog):
        suggestions = suggest_queries(catalog)
        assert any("GROUPBY" in text for text in suggestions)

    def test_numeric_aggregate_present(self, catalog):
        suggestions = suggest_queries(catalog)
        assert any("AVG" in text for text in suggestions)
