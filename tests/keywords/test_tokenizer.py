"""Unit tests for the keyword-query tokenizer."""

import pytest

from repro.errors import InvalidQueryError
from repro.keywords import tokenize_query


class TestTokenizer:
    def test_simple_split(self):
        terms = tokenize_query("Green SUM Credit")
        assert [t.text for t in terms] == ["Green", "SUM", "Credit"]
        assert all(not t.quoted for t in terms)

    def test_positions(self):
        terms = tokenize_query("a b c")
        assert [t.position for t in terms] == [0, 1, 2]

    def test_quoted_phrase(self):
        terms = tokenize_query('COUNT supplier "Indian black chocolate"')
        assert terms[2].text == "Indian black chocolate"
        assert terms[2].quoted

    def test_adjacent_phrases(self):
        terms = tokenize_query('"pink rose" "white rose"')
        assert [t.text for t in terms] == ["pink rose", "white rose"]

    def test_extra_whitespace(self):
        terms = tokenize_query("  a   b  ")
        assert [t.text for t in terms] == ["a", "b"]

    def test_unbalanced_quote(self):
        with pytest.raises(InvalidQueryError):
            tokenize_query('COUNT "unclosed')

    def test_empty_phrase(self):
        with pytest.raises(InvalidQueryError):
            tokenize_query('a "" b')

    def test_empty_query(self):
        with pytest.raises(InvalidQueryError):
            tokenize_query("   ")

    def test_phrase_interior_whitespace_normalised(self):
        terms = tokenize_query('" royal olive "')
        assert terms[0].text == "royal olive"
