"""Unit tests for the extended query language (Definition 1 constraints)."""

import pytest

from repro.errors import InvalidQueryError
from repro.keywords import KeywordQuery, TermKind


class TestClassification:
    def test_operators_detected_case_insensitively(self):
        query = KeywordQuery("count Student groupby Course")
        kinds = [t.kind for t in query.terms]
        assert kinds == [
            TermKind.AGGREGATE,
            TermKind.BASIC,
            TermKind.GROUPBY,
            TermKind.BASIC,
        ]

    def test_quoted_operator_is_basic(self):
        query = KeywordQuery('find "COUNT"')
        assert all(t.kind is TermKind.BASIC for t in query.terms)

    def test_all_five_aggregates(self):
        for op in ("MIN", "MAX", "AVG", "SUM", "COUNT"):
            query = KeywordQuery(f"{op} amount")
            assert query.terms[0].kind is TermKind.AGGREGATE

    def test_basic_terms_view(self):
        query = KeywordQuery("Green SUM Credit")
        assert [t.text for t in query.basic_terms] == ["Green", "Credit"]
        assert [t.text for t in query.operators] == ["SUM"]

    def test_has_aggregates(self):
        assert KeywordQuery("COUNT a").has_aggregates
        assert not KeywordQuery("GROUPBY a b").has_aggregates

    def test_operator_property_rejects_basic(self):
        query = KeywordQuery("Green")
        with pytest.raises(InvalidQueryError):
            query.terms[0].operator


class TestConstraints:
    def test_last_term_cannot_be_operator(self):
        with pytest.raises(InvalidQueryError):
            KeywordQuery("Green SUM")
        with pytest.raises(InvalidQueryError):
            KeywordQuery("Green GROUPBY")

    def test_groupby_followed_by_operator_rejected(self):
        with pytest.raises(InvalidQueryError):
            KeywordQuery("GROUPBY COUNT Student")

    def test_aggregate_followed_by_groupby_rejected(self):
        with pytest.raises(InvalidQueryError):
            KeywordQuery("COUNT GROUPBY Student")

    def test_nested_aggregates_allowed(self):
        query = KeywordQuery("MAX COUNT order GROUPBY nation")
        assert len(query.applications) == 2

    def test_paper_queries_all_parse(self):
        from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES

        for spec in TPCH_QUERIES + ACMDL_QUERIES:
            KeywordQuery(spec.text)  # must not raise


class TestOperatorBinding:
    def test_simple_chain(self):
        query = KeywordQuery("SUM Credit")
        app = query.application_for(1)
        assert app.chain == ("SUM",)
        assert not app.groupby

    def test_nested_chain(self):
        query = KeywordQuery("AVG COUNT Lecturer GROUPBY Course")
        count_app = query.application_for(2)
        assert count_app.chain == ("AVG", "COUNT")
        groupby_app = query.application_for(4)
        assert groupby_app.groupby and groupby_app.chain == ()

    def test_unbound_term_has_no_application(self):
        query = KeywordQuery("Green SUM Credit")
        assert query.application_for(0) is None
        assert query.application_for(2) is not None

    def test_two_separate_chains(self):
        query = KeywordQuery("COUNT order SUM amount GROUPBY mktsegment")
        assert len(query.applications) == 3
        assert query.application_for(1).chain == ("COUNT",)
        assert query.application_for(3).chain == ("SUM",)
        assert query.application_for(5).groupby
