"""Unit tests for the ORM schema graph (Figure 3)."""

import pytest

from repro.errors import SchemaError
from repro.orm import OrmSchemaGraph, RelationType
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


@pytest.fixture(scope="module")
def graph(request):
    from repro.datasets import university_database

    return OrmSchemaGraph(university_database().schema)


class TestFigure3Structure:
    def test_nodes(self, graph):
        assert set(graph.nodes) == {
            "Student",
            "Course",
            "Enrol",
            "Teach",
            "Lecturer",
            "Department",
            "Faculty",
            "Textbook",
        }

    def test_adjacency_matches_figure3(self, graph):
        assert graph.neighbors("Student") == ["Enrol"]
        assert graph.neighbors("Enrol") == ["Course", "Student"]
        assert graph.neighbors("Course") == ["Enrol", "Teach"]
        assert graph.neighbors("Teach") == ["Course", "Lecturer", "Textbook"]
        assert graph.neighbors("Lecturer") == ["Department", "Teach"]
        assert graph.neighbors("Department") == ["Faculty", "Lecturer"]
        assert graph.neighbors("Faculty") == ["Department"]

    def test_relationship_participants(self, graph):
        assert graph.object_like_neighbors("Teach") == [
            "Course",
            "Lecturer",
            "Textbook",
        ]
        assert graph.object_like_neighbors("Enrol") == ["Course", "Student"]

    def test_edges_carry_foreign_keys(self, graph):
        edges = graph.edges_between("Enrol", "Student")
        assert len(edges) == 1
        assert edges[0].foreign_key.columns == ("Sid",)
        assert edges[0].child_relation == "Enrol"

    def test_node_of_relation(self, graph):
        assert graph.node_of_relation("Teach").type is RelationType.RELATIONSHIP
        with pytest.raises(SchemaError):
            graph.node_of_relation("Nope")

    def test_describe_mentions_types(self, graph):
        text = graph.describe()
        assert "[relationship] Teach" in text
        assert "[mixed] Lecturer" in text


class TestPaths:
    def test_shortest_path(self, graph):
        assert graph.shortest_path("Student", "Course") == [
            "Student",
            "Enrol",
            "Course",
        ]

    def test_shortest_path_long(self, graph):
        path = graph.shortest_path("Faculty", "Student")
        assert path[0] == "Faculty" and path[-1] == "Student"
        assert len(path) == 7

    def test_path_to_self(self, graph):
        assert graph.shortest_path("Student", "Student") == ["Student"]

    def test_distance(self, graph):
        assert graph.distance("Student", "Course") == 2
        assert graph.distance("Teach", "Teach") == 0

    def test_all_shortest_paths(self, graph):
        paths = graph.all_shortest_paths("Student", "Course")
        assert paths == [["Student", "Enrol", "Course"]]

    def test_disconnected_returns_none(self):
        schema = DatabaseSchema("d")
        schema.add_relation("A", [("a", INT)], ["a"])
        schema.add_relation("B", [("b", INT)], ["b"])
        g = OrmSchemaGraph(schema)
        assert g.shortest_path("A", "B") is None
        assert g.distance("A", "B") is None


class TestSteinerTree:
    def test_two_terminals(self, graph):
        edges = graph.steiner_tree(["Student", "Course"])
        assert edges == {("Course", "Enrol"), ("Enrol", "Student")}

    def test_three_terminals(self, graph):
        edges = graph.steiner_tree(["Student", "Course", "Textbook"])
        assert ("Course", "Teach") in edges
        assert ("Teach", "Textbook") in edges

    def test_single_terminal(self, graph):
        assert graph.steiner_tree(["Student"]) == set()

    def test_duplicate_terminals_collapse(self, graph):
        assert graph.steiner_tree(["Student", "Student"]) == set()

    def test_disconnected_raises(self):
        schema = DatabaseSchema("d")
        schema.add_relation("A", [("a", INT)], ["a"])
        schema.add_relation("B", [("b", INT)], ["b"])
        g = OrmSchemaGraph(schema)
        with pytest.raises(SchemaError):
            g.steiner_tree(["A", "B"])


class TestComponentFolding:
    def test_component_folds_into_parent(self):
        schema = DatabaseSchema("db")
        schema.add_relation("Student", [("Sid", TEXT), ("Sname", TEXT)], ["Sid"])
        schema.add_relation(
            "StudentHobby",
            [("Sid", TEXT), ("Hobby", TEXT)],
            ["Sid", "Hobby"],
            [ForeignKey(("Sid",), "Student", ("Sid",))],
        )
        g = OrmSchemaGraph(schema)
        assert set(g.nodes) == {"Student"}
        node = g.node("Student")
        assert [rel.name for rel in node.component_relations] == ["StudentHobby"]
        assert node.owns_attribute("Hobby").name == "StudentHobby"
        assert node.owns_attribute("Sname").name == "Student"
        assert node.owns_attribute("Nope") is None
        assert g.node_of_relation("StudentHobby") is node
