"""Unit tests for ORA relation classification (Section 2.1 / [16])."""

from repro.orm import RelationType, classify_database, classify_relation, object_like
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


class TestUniversityClassification:
    """Figure 1's relations classify exactly as the paper states."""

    def test_object_relations(self, university_db):
        classes = classify_database(university_db.schema)
        for name in ("Student", "Course", "Faculty", "Textbook"):
            assert classes[name].type is RelationType.OBJECT, name

    def test_relationship_relations(self, university_db):
        classes = classify_database(university_db.schema)
        for name in ("Enrol", "Teach"):
            assert classes[name].type is RelationType.RELATIONSHIP, name

    def test_mixed_relations(self, university_db):
        classes = classify_database(university_db.schema)
        for name in ("Lecturer", "Department"):
            assert classes[name].type is RelationType.MIXED, name


class TestTpchClassification:
    def test_types(self, tpch_db):
        classes = classify_database(tpch_db.schema)
        assert classes["Part"].type is RelationType.OBJECT
        assert classes["Region"].type is RelationType.OBJECT
        assert classes["Lineitem"].type is RelationType.RELATIONSHIP
        for name in ("Supplier", "Customer", "Order", "Nation"):
            assert classes[name].type is RelationType.MIXED, name


class TestAcmdlClassification:
    def test_types(self, acmdl_db):
        classes = classify_database(acmdl_db.schema)
        assert classes["Publisher"].type is RelationType.OBJECT
        assert classes["Author"].type is RelationType.OBJECT
        assert classes["Editor"].type is RelationType.OBJECT
        assert classes["Paper"].type is RelationType.MIXED
        assert classes["Proceeding"].type is RelationType.MIXED
        assert classes["Write"].type is RelationType.RELATIONSHIP
        assert classes["Edit"].type is RelationType.RELATIONSHIP


class TestComponentClassification:
    def test_multivalued_attribute_component(self):
        schema = DatabaseSchema("db")
        schema.add_relation("Student", [("Sid", TEXT), ("Sname", TEXT)], ["Sid"])
        schema.add_relation(
            "StudentHobby",
            [("Sid", TEXT), ("Hobby", TEXT)],
            ["Sid", "Hobby"],
            [ForeignKey(("Sid",), "Student", ("Sid",))],
        )
        classes = classify_database(schema)
        component = classes["StudentHobby"]
        assert component.type is RelationType.COMPONENT
        assert component.parent == "Student"

    def test_object_like_helper(self, university_db):
        classes = classify_database(university_db.schema)
        assert object_like(classes["Student"])
        assert object_like(classes["Lecturer"])
        assert not object_like(classes["Enrol"])
