"""The disk backend end to end: registry wiring, fidelity against the
in-memory engine, the page budget at dataset scale, lazy
rematerialization, and tempdir hygiene."""

from __future__ import annotations

import os

import pytest

from repro.backends import DiskBackend, available_backends, create_backend
from repro.backends.differential import collect_statements
from repro.backends.normalize import canonical_rows
from repro.datasets import university_database
from repro.datasets.gen import generate_scaled
from repro.errors import StorageError
from repro.observability import Tracer
from repro.sql.parser import parse


class TestRegistry:
    def test_disk_backend_is_registered(self, university_db):
        assert "disk" in available_backends()
        backend = create_backend("disk", university_db)
        try:
            assert isinstance(backend, DiskBackend)
            assert backend.name == "disk"
            assert "paged-storage" in backend.capabilities
            assert "compiled-plans" in backend.capabilities
        finally:
            backend.close()


class TestFidelity:
    def test_university_workload_matches_memory(self):
        database, statements = collect_statements("university", k=4)
        memory = create_backend("memory", database)
        disk = create_backend("disk", database)
        try:
            for qid, source, select in statements:
                expected = memory.execute(select)
                got = disk.execute(select)
                assert got.columns == expected.columns, f"{qid} [{source}]"
                assert canonical_rows(got.rows) == canonical_rows(
                    expected.rows
                ), f"{qid} [{source}]"
        finally:
            memory.close()
            disk.close()

    def test_raw_sql_and_scalars(self, university_db):
        backend = create_backend("disk", university_db)
        try:
            count = backend.execute(parse("SELECT COUNT(*) FROM Student")).scalar()
            assert count == len(university_db.table("Student").rows)
            from_text = backend.execute("SELECT AVG(Credit) FROM Course")
            assert from_text.rows == [(4.0,)]
        finally:
            backend.close()


class TestPageBudget:
    def test_scaled_dataset_sweeps_within_budget(self):
        """A dataset several times the pool must run a join/group-by
        sweep without residency ever exceeding capacity."""
        database = generate_scaled("tpch", sf=1.0)
        backend = DiskBackend(pool_capacity=16, page_size=512)
        try:
            backend.load(database)
            pages = backend.storage_manifest()["totals"]["pages"]
            assert pages >= 4 * backend.pool_capacity
            statements = [
                "SELECT COUNT(*) FROM Lineitem",
                "SELECT mktsegment, COUNT(*) FROM Customer "
                "GROUP BY mktsegment",
                "SELECT Nation.nname, COUNT(*) FROM Customer, Nation "
                "WHERE Customer.nationkey = Nation.nationkey "
                "GROUP BY Nation.nname",
                "SELECT Part.type, SUM(Lineitem.quantity) "
                "FROM Part, Lineitem "
                "WHERE Part.partkey = Lineitem.partkey "
                "GROUP BY Part.type",
            ]
            memory = create_backend("memory", database)
            try:
                for sql in statements:
                    # execute() itself raises StorageError if residency
                    # ever exceeded capacity; cross-check results too.
                    got = backend.execute(sql)
                    expected = memory.execute(sql)
                    assert canonical_rows(got.rows) == canonical_rows(
                        expected.rows
                    ), sql
            finally:
                memory.close()
            counters = backend.pool_counters()
            assert counters["max_resident"] <= backend.pool_capacity
            assert counters["evictions"] > 0
            assert counters["hits"] > 0
        finally:
            backend.close()


class TestRematerialization:
    def test_data_version_bump_triggers_rebuild(self):
        database = university_database()
        tracer = Tracer()
        backend = DiskBackend(pool_capacity=16)
        try:
            backend.load(database, tracer=tracer)
            before = backend.execute(
                parse("SELECT COUNT(*) FROM Student"), tracer=tracer
            ).scalar()
            first_version = backend.storage_manifest()["data_version"]
            database.load("Student", [(9901, "Zed Zimmer", 21)])
            after = backend.execute(
                parse("SELECT COUNT(*) FROM Student"), tracer=tracer
            ).scalar()
            assert after == before + 1
            assert tracer.registry.counter("materializations") == 2
            assert backend.storage_manifest()["data_version"] != first_version
        finally:
            backend.close()

    def test_fresh_materialization_is_reused(self, tmp_path):
        database = university_database()
        directory = str(tmp_path / "disk")
        first = DiskBackend(path=directory)
        first.load(database)
        first.close()
        tracer = Tracer()
        second = DiskBackend(path=directory)
        try:
            second.load(database, tracer=tracer)
            assert tracer.registry.counter("materializations_reused") == 1
            assert tracer.registry.counter("materializations") == 0
            count = second.execute(parse("SELECT COUNT(*) FROM Student")).scalar()
            assert count == len(database.table("Student").rows)
        finally:
            second.close()
        # an explicit path is the caller's: close() must not remove it
        assert os.path.isdir(directory)

    def test_materialize_span_and_row_counters(self):
        database = university_database()
        tracer = Tracer()
        backend = DiskBackend()
        try:
            backend.load(database, tracer=tracer)
            total = sum(
                len(database.table(relation.name).rows)
                for relation in database.schema
            )
            assert tracer.registry.counter("materialized_rows") == total
            assert tracer.registry.counter("materialized_pages") > 0
            assert tracer.registry.timing("span.materialize") is not None
        finally:
            backend.close()


class TestLifecycle:
    def test_close_removes_owned_tempdir(self):
        backend = DiskBackend()
        backend.load(university_database())
        directory = backend.directory
        assert os.path.isdir(directory)
        backend.close()
        assert not os.path.exists(directory)
        assert backend.path is None

    def test_execute_before_load_raises(self):
        backend = DiskBackend()
        with pytest.raises(Exception):
            backend.execute(parse("SELECT 1 FROM Student"))

    def test_manifest_before_load_raises(self):
        backend = DiskBackend()
        with pytest.raises(StorageError, match="no materialization"):
            backend.storage_manifest()
