"""The Backend protocol and registry: names, capabilities, construction."""

from __future__ import annotations

import pytest

from repro.backends import (
    Backend,
    MemoryBackend,
    SqliteBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.backends import base as backends_base
from repro.engine import KeywordSearchEngine
from repro.errors import BackendError
from repro.sql.parser import parse


class TestRegistry:
    def test_both_backends_registered_memory_first(self):
        names = available_backends()
        assert names[0] == "memory"
        assert "sqlite" in names

    def test_create_backend_loads_the_database(self, university_db):
        backend = create_backend("memory", university_db)
        assert backend.database is university_db
        assert backend.execute(parse("SELECT AVG(Credit) FROM Course")).rows == [
            (4.0,)
        ]

    def test_create_backend_unknown_name(self, university_db):
        with pytest.raises(BackendError, match="unknown backend 'oracle'"):
            create_backend("oracle", university_db)

    def test_register_backend_is_pluggable(self, university_db):
        class NullBackend(MemoryBackend):
            name = "null"

        register_backend("null", NullBackend)
        try:
            assert "null" in available_backends()
            backend = create_backend("null", university_db)
            assert isinstance(backend, NullBackend)
        finally:
            del backends_base._REGISTRY["null"]
        assert "null" not in available_backends()


class TestCapabilities:
    def test_memory_capabilities(self):
        backend = MemoryBackend()
        assert backend.supports("compiled-plans")
        assert backend.supports("python-values")
        assert not backend.supports("sql-text")
        assert not backend.supports("real-rdbms")

    def test_sqlite_capabilities(self):
        assert "sql-text" in SqliteBackend.capabilities
        assert "real-rdbms" in SqliteBackend.capabilities
        assert "persistent" in SqliteBackend.capabilities
        assert "compiled-plans" not in SqliteBackend.capabilities

    def test_dialects_differ(self, university_db):
        select = parse("SELECT Sname FROM Student")
        memory = create_backend("memory", university_db)
        sqlite = create_backend("sqlite", university_db)
        try:
            assert memory.sql_for(select) == "SELECT Sname FROM Student"
            assert sqlite.sql_for(select) == 'SELECT "Sname" FROM "Student"'
        finally:
            sqlite.close()


class TestMemoryBackend:
    def test_execute_without_database_raises(self):
        with pytest.raises(BackendError, match="no database loaded"):
            MemoryBackend().execute("SELECT 1 FROM Student")

    def test_accepts_sql_text_and_ast(self, university_db):
        backend = MemoryBackend()
        backend.load(university_db)
        from_text = backend.execute("SELECT SUM(Credit) FROM Course")
        from_ast = backend.execute(parse("SELECT SUM(Credit) FROM Course"))
        assert from_text.rows == from_ast.rows == [(12.0,)]

    def test_wrapping_an_executor_shares_its_plan_cache(self, university_db):
        engine = KeywordSearchEngine(university_db)
        backend = MemoryBackend(executor=engine.executor)
        assert backend.executor is engine.executor
        assert backend.database is university_db

    def test_load_resets_a_foreign_executor(self, university_db, tpch_db):
        backend = MemoryBackend()
        backend.load(university_db)
        first = backend.executor
        backend.load(tpch_db)
        assert backend.executor is not first
        assert backend.executor.database is tpch_db


class TestEngineIntegration:
    def test_engine_default_backend_is_memory(self, university_engine):
        assert university_engine.backend.name == "memory"
        assert "sqlite" in university_engine.available_backends()

    def test_get_backend_caches_instances(self, university_db):
        engine = KeywordSearchEngine(university_db)
        sqlite = engine.get_backend("sqlite")
        assert sqlite is engine.get_backend("sqlite")
        assert engine.get_backend() is engine.backend

    def test_search_results_agree_across_backends(self, university_db):
        engine = KeywordSearchEngine(university_db)
        on_memory = engine.search("Green SUM Credit").best.execute()
        on_sqlite = engine.search("Green SUM Credit", backend="sqlite").best.execute()
        assert sorted(on_memory.rows) == sorted(on_sqlite.rows)

    def test_engine_constructed_on_sqlite_backend(self, university_db):
        engine = KeywordSearchEngine(university_db, backend="sqlite")
        assert engine.backend.name == "sqlite"
        result = engine.execute("AVG Credit")
        assert result.rows == [(4.0,)]

    def test_abstract_backend_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Backend()  # abstract: load/execute missing
