"""The differential harness: memory vs SQLite on the whole workload.

The parametrized sweep below is the acceptance bar for the backend
subsystem: every statement the pipeline generates for the experiment
query sets — including the §4.1 fragment-rewritten SQL on the
unnormalized tpch/acmdl datasets — must produce the same canonical row
multiset on the in-memory engine and on real SQLite.
"""

from __future__ import annotations

import io

import pytest

from repro.backends import MemoryBackend, SqliteBackend
from repro.backends.differential import (
    DIFF_DATASETS,
    DiffReport,
    collect_statements,
    diff_dataset,
    diff_statement,
    run_diff,
)
from repro.datasets import university_database
from repro.observability import Tracer
from repro.sql.parser import parse
from repro.sql.render import render


@pytest.mark.parametrize("dataset", DIFF_DATASETS)
def test_workload_agrees_on_both_backends(dataset):
    report = diff_dataset(dataset)
    assert report.statements > 0
    assert report.ok, "\n".join(m.render() for m in report.mismatches)


def test_unnormalized_statements_are_rewritten_sql(tpch_unnorm):
    # §4.1: on the denormalized database every generated statement reads
    # the base table, not the synthesized normalized-view fragments.
    database, statements = collect_statements("tpch-unnorm", k=5, skip_sqak=True)
    assert statements
    base_tables = {relation.name for relation in database.schema}
    for _, source, select in statements:
        assert source == "semantic"
        sql = render(select)
        assert any(table in sql for table in base_tables), sql


def test_sqak_statements_included_for_experiment_datasets():
    _, statements = collect_statements("tpch", k=3)
    sources = {source for _, source, _ in statements}
    assert sources == {"semantic", "sqak"}
    _, skipped = collect_statements("tpch", k=3, skip_sqak=True)
    assert {source for _, source, _ in skipped} == {"semantic"}
    assert len(skipped) < len(statements)


def test_university_workload_is_semantic_only():
    _, statements = collect_statements("university", k=3)
    assert statements
    assert {source for _, source, _ in statements} == {"semantic"}


class TestDiffStatement:
    def _backends(self, left_db, right_db):
        memory = MemoryBackend()
        memory.load(left_db)
        sqlite = SqliteBackend()
        sqlite.load(right_db)
        return memory, sqlite

    def test_agreement_returns_none_and_counts(self, university_db):
        memory, sqlite = self._backends(university_db, university_db)
        tracer = Tracer()
        try:
            detail = diff_statement(
                memory, sqlite, parse("SELECT COUNT(*) FROM Student"), tracer
            )
        finally:
            sqlite.close()
        assert detail is None
        counters = tracer.registry.snapshot()["counters"]
        assert counters.get("diff_queries") == 1
        assert "diff_mismatches" not in counters

    def test_disagreement_is_described_and_counted(self, university_db):
        drifted = university_database()
        drifted.insert_dict("Student", {"Sid": 999, "Sname": "Newton", "Age": 30})
        memory, sqlite = self._backends(university_db, drifted)
        tracer = Tracer()
        try:
            detail = diff_statement(
                memory, sqlite, parse("SELECT COUNT(*) FROM Student"), tracer
            )
        finally:
            sqlite.close()
        assert detail is not None
        assert "memory=" in detail and "sqlite=" in detail
        assert tracer.registry.snapshot()["counters"].get("diff_mismatches") == 1

    def test_backend_error_becomes_a_mismatch(self, university_db):
        memory, sqlite = self._backends(university_db, university_db)
        try:
            detail = diff_statement(
                memory, sqlite, parse("SELECT Sid FROM NoSuchTable")
            )
        finally:
            sqlite.close()
        assert detail is not None and "backend error" in detail


class TestRunDiff:
    def test_clean_dataset_exits_zero(self):
        out = io.StringIO()
        code = run_diff(["--dataset", "university"], out)
        text = out.getvalue()
        assert code == 0
        assert "university:" in text and "ok" in text
        assert "0 mismatches" in text

    def test_flags_restrict_the_sweep(self):
        out = io.StringIO()
        code = run_diff(
            ["--dataset", "university", "--dataset", "enrolment", "--top", "2"],
            out,
        )
        text = out.getvalue()
        assert code == 0
        assert "enrolment:" in text
        assert "tpch" not in text

    def test_mismatch_reports_render_their_context(self):
        report = DiffReport()
        report.statements = 1
        from repro.backends.differential import Mismatch

        report.mismatches.append(
            Mismatch("university", "U1", "semantic", "SELECT ...", "memory=... vs sqlite=...")
        )
        assert not report.ok
        assert "U1" in report.mismatches[0].render()
