"""The canonical-comparison rules the differential harness trusts."""

from __future__ import annotations

import math

from repro.backends.normalize import (
    canonical_row,
    canonical_rows,
    canonical_value,
    rows_match,
)


class TestCanonicalValue:
    def test_bool_becomes_int(self):
        assert canonical_value(True) == 1
        assert canonical_value(False) == 0
        assert type(canonical_value(True)) is int

    def test_float_rounded_to_significant_digits(self):
        assert canonical_value(0.1 + 0.2) == canonical_value(0.3)
        # a genuine difference at the 6th digit survives
        assert canonical_value(1.00001) != canonical_value(1.00002)

    def test_non_finite_floats_pass_through(self):
        assert math.isnan(canonical_value(float("nan")))
        assert canonical_value(float("inf")) == float("inf")

    def test_other_types_untouched(self):
        assert canonical_value(None) is None
        assert canonical_value("Green") == "Green"
        assert canonical_value(7) == 7
        assert type(canonical_value(7)) is int


class TestCanonicalRows:
    def test_row_order_is_canonical(self):
        a = [("b", 2), ("a", 1)]
        b = [("a", 1), ("b", 2)]
        assert canonical_rows(a) == canonical_rows(b)

    def test_nulls_sort_without_type_errors(self):
        rows = [(None,), (3,), ("x",), (1.5,)]
        assert len(canonical_rows(rows)) == 4  # mixed types + NULL sortable

    def test_canonical_row_applies_value_rules(self):
        assert canonical_row((True, 0.1 + 0.2)) == (1, canonical_value(0.3))


class TestRowsMatch:
    def test_multiset_equality_ignores_order(self):
        assert rows_match([(1,), (2,)], [(2,), (1,)])

    def test_summation_noise_is_absorbed(self):
        assert rows_match([(0.1 + 0.2,)], [(0.3,)])

    def test_bool_and_int_agree(self):
        assert rows_match([(True,)], [(1,)])

    def test_int_float_type_drift_is_a_mismatch(self):
        # Python's 2 == 2.0 must NOT leak through: aggregate output
        # types are part of the backend contract.
        assert not rows_match([(2,)], [(2.0,)])

    def test_cardinality_mismatch(self):
        assert not rows_match([(1,)], [(1,), (1,)])

    def test_arity_mismatch(self):
        assert not rows_match([(1, 2)], [(1,)])

    def test_value_mismatch(self):
        assert not rows_match([("Green",)], [("Smith",)])
