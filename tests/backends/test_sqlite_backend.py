"""SqliteBackend: materialization fidelity and execution semantics.

The fidelity half asserts that every evaluation dataset survives the trip
into a real SQLite database — schema, rows, keys, indexes — and the
semantics half pins the dialect decisions (booleans, division, LIKE
escaping, reserved-word identifiers) against SQLite's actual behaviour.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.backends import MemoryBackend, SqliteBackend
from repro.backends.differential import DIFF_DATASETS
from repro.backends.normalize import rows_match
from repro.cli import load_dataset
from repro.datasets import university_database
from repro.errors import BackendError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.sql.ast import ColumnRef, Contains, Select, SelectItem, TableRef
from repro.sql.parser import parse


@pytest.mark.parametrize("dataset", DIFF_DATASETS)
def test_every_dataset_round_trips(dataset):
    database, _, _, _ = load_dataset(dataset)
    backend = SqliteBackend()
    backend.load(database)
    try:
        assert backend.row_counts() == database.row_counts()
        assert backend.foreign_key_violations() == []
        expected_indexes = {
            (relation.name,) + fk.columns
            for relation in database.schema
            for fk in relation.foreign_keys
        }
        assert len(backend.index_names()) == len(expected_indexes)
    finally:
        backend.close()


class TestIndexHints:
    def test_explicit_hints_create_indexes(self):
        database, _, _, _ = load_dataset("tpch")
        backend = SqliteBackend(index_hints=[("Customer", "mktsegment")])
        backend.load(database)
        try:
            assert "ix_Customer_mktsegment" in backend.index_names()
        finally:
            backend.close()

    def test_auto_hints_extend_fk_indexes(self):
        database, _, _, _ = load_dataset("tpch")
        plain = SqliteBackend()
        hinted = SqliteBackend(index_hints="auto")
        plain.load(database)
        hinted.load(database)
        try:
            fk_only = set(plain.index_names())
            auto = set(hinted.index_names())
            assert fk_only < auto  # strictly more indexes, FK set intact
            sql = 'SELECT COUNT(*) FROM "Order"'
            assert hinted.execute(sql).rows == plain.execute(sql).rows
        finally:
            plain.close()
            hinted.close()

    def test_hints_deduplicate_against_fk_indexes(self):
        database, _, _, _ = load_dataset("tpch")
        backend = SqliteBackend(index_hints=[("Customer", "nationkey")])
        backend.load(database)
        try:
            names = backend.index_names()
            assert names.count("ix_Customer_nationkey") == 1
        finally:
            backend.close()


def test_on_disk_database_persists(tmp_path):
    path = tmp_path / "university.db"
    backend = SqliteBackend(path=str(path))
    backend.load(university_database())
    count = backend.execute(parse("SELECT COUNT(*) FROM Student")).scalar()
    backend.close()

    assert path.exists()
    conn = sqlite3.connect(str(path))  # reread with sqlite itself
    try:
        persisted = conn.execute('SELECT COUNT(*) FROM "Student"').fetchone()[0]
    finally:
        conn.close()
    assert persisted == count > 0


def test_rematerializes_when_the_data_changes():
    database = university_database()
    backend = SqliteBackend()
    backend.load(database)
    try:
        before = backend.execute(parse("SELECT COUNT(*) FROM Student")).scalar()
        database.insert_dict(
            "Student", {"Sid": 999, "Sname": "Newton", "Age": 30}
        )
        after = backend.execute(parse("SELECT COUNT(*) FROM Student")).scalar()
        assert after == before + 1
    finally:
        backend.close()


def test_execution_error_is_wrapped(university_db):
    backend = SqliteBackend()
    backend.load(university_db)
    try:
        with pytest.raises(BackendError, match="sqlite execution failed"):
            backend.execute(parse("SELECT Sid FROM NoSuchTable"))
    finally:
        backend.close()


def test_execute_before_load_raises():
    with pytest.raises(BackendError, match="no database loaded"):
        SqliteBackend().execute(parse("SELECT 1 FROM Student"))


def _single_table_db(name, columns, rows):
    schema = DatabaseSchema("semantics")
    schema.add_relation(name, columns, primary_key=(columns[0][0],))
    database = Database(schema)
    database.load(name, rows)
    return database


class TestDialectSemantics:
    """Both backends must agree on the cases the dialect layer exists for."""

    def _both(self, database, select):
        memory = MemoryBackend()
        memory.load(database)
        sqlite = SqliteBackend()
        sqlite.load(database)
        try:
            return memory.execute(select), sqlite.execute(select)
        finally:
            sqlite.close()

    def test_boolean_predicates(self):
        database = _single_table_db(
            "Flags",
            [("Id", DataType.INT), ("Done", DataType.BOOL)],
            [(1, True), (2, False), (3, True)],
        )
        select = parse("SELECT COUNT(*) FROM Flags WHERE Done = TRUE")
        memory, sqlite = self._both(database, select)
        assert memory.scalar() == sqlite.scalar() == 2

    def test_integer_division_is_true_division(self):
        database = _single_table_db("Nums", [("Id", DataType.INT)], [(7,)])
        select = parse("SELECT Id / 2 FROM Nums")
        memory, sqlite = self._both(database, select)
        # without the CAST the sqlite side would truncate to 3
        assert memory.rows == sqlite.rows == [(3.5,)]

    def test_avg_of_integers_is_float_on_both(self):
        database = _single_table_db("Nums", [("Id", DataType.INT)], [(2,), (4,)])
        select = parse("SELECT AVG(Id) FROM Nums")
        memory, sqlite = self._both(database, select)
        assert memory.rows == sqlite.rows == [(3.0,)]
        assert type(sqlite.scalar()) is float

    def test_like_wildcards_match_literally(self):
        database = _single_table_db(
            "Notes",
            [("Id", DataType.INT), ("Text", DataType.TEXT)],
            [(1, "100% done"), (2, "100x done"), (3, "under_score"), (4, "underXscore")],
        )
        for phrase, expected in [("100%", 1), ("under_", 1)]:
            select = Select(
                items=(SelectItem(ColumnRef("Id")),),
                from_items=(TableRef("Notes", "Notes"),),
                where=Contains(ColumnRef("Text"), phrase),
            )
            memory, sqlite = self._both(database, select)
            assert rows_match(memory.rows, sqlite.rows)
            assert len(sqlite.rows) == expected, phrase

    def test_reserved_word_identifiers(self):
        # 'Order' is a keyword everywhere; 'Date' only in real RDBMSs —
        # quote-all-identifiers makes both safe.
        database = _single_table_db(
            "Order",
            [("Id", DataType.INT), ("Date", DataType.DATE)],
            [(1, "2016-03-15")],
        )
        select = Select(
            items=(SelectItem(ColumnRef("Date")),),
            from_items=(TableRef("Order", "Order"),),
        )
        memory, sqlite = self._both(database, select)
        assert memory.rows == sqlite.rows == [("2016-03-15",)]
