"""Unit tests for FD discovery from data."""

from repro.fd import FunctionalDependency, discover_fds, discover_key_fds, holds
from repro.relational.schema import Column, RelationSchema
from repro.relational.table import Table
from repro.relational.types import DataType

TEXT = DataType.TEXT
INT = DataType.INT

FD = FunctionalDependency


def make_table(rows) -> Table:
    schema = RelationSchema(
        "R",
        [Column("a", TEXT), Column("b", TEXT), Column("c", INT)],
        ["a", "b"],
    )
    table = Table(schema)
    table.extend(rows)
    return table


class TestHolds:
    def test_holding_fd(self):
        table = make_table([("x", "1", 1), ("x", "2", 1), ("y", "1", 2)])
        assert holds(table, FD({"a"}, {"c"}))

    def test_violated_fd(self):
        table = make_table([("x", "1", 1), ("x", "2", 2)])
        assert not holds(table, FD({"a"}, {"c"}))

    def test_composite_lhs(self):
        table = make_table([("x", "1", 1), ("x", "2", 2)])
        assert holds(table, FD({"a", "b"}, {"c"}))


class TestDiscovery:
    def test_discovers_planted_fd(self):
        table = make_table([("x", "1", 1), ("x", "2", 1), ("y", "3", 2)])
        discovered = discover_fds(table, max_lhs=1)
        assert FD({"a"}, {"c"}) in discovered

    def test_minimality_prunes_implied(self):
        table = make_table([("x", "1", 1), ("x", "2", 1), ("y", "3", 2)])
        discovered = discover_fds(table, max_lhs=2)
        # (a,b)->c follows from a->c, so it must not be listed separately
        assert FD({"a", "b"}, {"c"}) not in discovered

    def test_enrolment_discovery_finds_paper_fds(self, enrolment_db):
        table = enrolment_db.table("Enrolment")
        discovered = discover_fds(table, max_lhs=1)
        assert FD({"Sid"}, {"Sname"}) in discovered
        assert FD({"Sid"}, {"Age"}) in discovered
        assert FD({"Code"}, {"Title"}) in discovered
        assert FD({"Code"}, {"Credit"}) in discovered

    def test_key_fds(self):
        table = make_table([("x", "1", 1)])
        assert discover_key_fds(table) == [FD({"a", "b"}, {"c"})]

    def test_key_fds_empty_for_all_key_relation(self):
        schema = RelationSchema("K", [Column("a", TEXT)], ["a"])
        assert discover_key_fds(Table(schema)) == []
