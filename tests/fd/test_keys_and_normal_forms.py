"""Unit tests for candidate keys and 2NF/3NF/BCNF tests."""

from repro.fd import (
    attrs,
    candidate_keys,
    is_2nf,
    is_3nf,
    is_bcnf,
    is_superkey,
    parse_fds,
    prime_attributes,
    violations_2nf,
    violations_3nf,
)

ENROLMENT = attrs("Sid", "Sname", "Age", "Code", "Title", "Credit", "Grade")
ENROLMENT_FDS = parse_fds(
    ["Sid -> Sname, Age", "Code -> Title, Credit", "Sid, Code -> Grade"]
)


class TestCandidateKeys:
    def test_enrolment_key(self):
        keys = candidate_keys(ENROLMENT, ENROLMENT_FDS)
        assert keys == [attrs("Sid", "Code")]

    def test_all_attributes_key_when_no_fds(self):
        keys = candidate_keys(attrs("A", "B"), [])
        assert keys == [attrs("A", "B")]

    def test_multiple_candidate_keys(self):
        # classic: A->B, B->A gives two keys {A},{B} (C dangles off both)
        fds = parse_fds(["A -> B", "B -> A", "A -> C"])
        keys = candidate_keys(attrs("A", "B", "C"), fds)
        assert sorted(map(sorted, keys)) == [["A"], ["B"]]

    def test_prime_attributes(self):
        fds = parse_fds(["A -> B", "B -> A", "A -> C"])
        assert prime_attributes(attrs("A", "B", "C"), fds) == attrs("A", "B")

    def test_is_superkey(self):
        assert is_superkey(attrs("Sid", "Code"), ENROLMENT, ENROLMENT_FDS)
        assert not is_superkey(attrs("Sid"), ENROLMENT, ENROLMENT_FDS)


class TestSecondNormalForm:
    def test_enrolment_violates_2nf(self):
        violations = violations_2nf(ENROLMENT, ENROLMENT_FDS)
        offending = {frozenset(v.fd.lhs) for v in violations}
        assert attrs("Sid") in offending
        assert attrs("Code") in offending
        assert not is_2nf(ENROLMENT, ENROLMENT_FDS)

    def test_key_only_relation_is_2nf(self):
        assert is_2nf(attrs("A", "B"), [])

    def test_full_dependency_is_2nf(self):
        fds = parse_fds(["A, B -> C"])
        assert is_2nf(attrs("A", "B", "C"), fds)


class TestThirdNormalForm:
    def test_enrolment_violates_3nf(self):
        assert not is_3nf(ENROLMENT, ENROLMENT_FDS)
        assert len(violations_3nf(ENROLMENT, ENROLMENT_FDS)) == 2

    def test_transitive_dependency_violates_3nf(self):
        # Lecturer(Lid, Lname, Did, Fid) with Did -> Fid (Figure 2)
        fds = parse_fds(["Lid -> Lname, Did, Fid", "Did -> Fid"])
        assert not is_3nf(attrs("Lid", "Lname", "Did", "Fid"), fds)

    def test_2nf_relation_in_3nf(self):
        fds = parse_fds(["A -> B"])
        assert is_3nf(attrs("A", "B"), fds)

    def test_prime_rhs_allowed_in_3nf(self):
        # A->B, B->A: B->A has non-superkey lhs? B IS a key here, so fine;
        # classic 3NF-but-not-BCNF example instead:
        fds = parse_fds(["A, B -> C", "C -> B"])
        universe = attrs("A", "B", "C")
        assert is_3nf(universe, fds)  # B is prime (keys {A,B} and {A,C})
        assert not is_bcnf(universe, fds)  # C is not a superkey


class TestUniversityRelationsAreNormalized:
    def test_figure1_relations_in_3nf(self, university_db):
        from repro.fd.discovery import discover_key_fds

        for relation in university_db.schema:
            fds = discover_key_fds(university_db.table(relation.name))
            assert is_3nf(frozenset(relation.column_names), fds), relation.name
