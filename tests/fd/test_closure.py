"""Unit tests for attribute closure, implication and minimal cover."""

from repro.fd import (
    FunctionalDependency,
    attrs,
    closure,
    equivalent,
    implies,
    minimal_cover,
    parse_fds,
)


FD = FunctionalDependency


class TestClosure:
    def test_reflexive(self):
        assert closure({"A"}, []) == attrs("A")

    def test_single_step(self):
        fds = parse_fds(["A -> B"])
        assert closure({"A"}, fds) == attrs("A", "B")

    def test_transitive(self):
        fds = parse_fds(["A -> B", "B -> C"])
        assert closure({"A"}, fds) == attrs("A", "B", "C")

    def test_composite_determinant(self):
        fds = parse_fds(["A, B -> C"])
        assert closure({"A"}, fds) == attrs("A")
        assert closure({"A", "B"}, fds) == attrs("A", "B", "C")

    def test_enrolment_key_closure(self):
        fds = parse_fds(
            ["Sid -> Sname, Age", "Code -> Title, Credit", "Sid, Code -> Grade"]
        )
        full = attrs("Sid", "Sname", "Age", "Code", "Title", "Credit", "Grade")
        assert closure({"Sid", "Code"}, fds) == full


class TestImplication:
    def test_implied_fd(self):
        fds = parse_fds(["A -> B", "B -> C"])
        assert implies(fds, FD({"A"}, {"C"}))

    def test_not_implied(self):
        fds = parse_fds(["A -> B"])
        assert not implies(fds, FD({"B"}, {"A"}))

    def test_equivalence(self):
        first = parse_fds(["A -> B", "B -> C"])
        second = parse_fds(["A -> B, C", "B -> C"])
        assert equivalent(first, second)
        assert not equivalent(first, parse_fds(["A -> B"]))


class TestMinimalCover:
    def test_splits_rhs(self):
        cover = minimal_cover(parse_fds(["A -> B, C"]))
        assert all(len(fd.rhs) == 1 for fd in cover)
        assert equivalent(cover, parse_fds(["A -> B, C"]))

    def test_removes_redundant_fd(self):
        fds = parse_fds(["A -> B", "B -> C", "A -> C"])
        cover = minimal_cover(fds)
        assert FD({"A"}, {"C"}) not in cover
        assert equivalent(cover, fds)

    def test_removes_extraneous_lhs(self):
        fds = parse_fds(["A -> B", "A, B -> C"])
        cover = minimal_cover(fds)
        assert FD({"A"}, {"C"}) in cover
        assert equivalent(cover, fds)

    def test_drops_trivial(self):
        cover = minimal_cover(parse_fds(["A -> A", "A -> B"]))
        assert cover == [FD({"A"}, {"B"})]

    def test_empty(self):
        assert minimal_cover([]) == []

    def test_deterministic(self):
        fds = parse_fds(["A -> B", "B -> C", "A -> C", "C -> D"])
        assert minimal_cover(fds) == minimal_cover(fds)


class TestParsing:
    def test_parse(self):
        fd = FD.parse(" A , B ->  C ")
        assert fd.lhs == attrs("A", "B") and fd.rhs == attrs("C")

    def test_repr_round_trip(self):
        fd = FD({"B", "A"}, {"C"})
        assert FD.parse(repr(fd)) == fd

    def test_invalid_text(self):
        import pytest

        from repro.errors import NormalizationError

        with pytest.raises(NormalizationError):
            FD.parse("A B C")
        with pytest.raises(NormalizationError):
            FD(set(), {"A"})
        with pytest.raises(NormalizationError):
            FD({"A"}, set())

    def test_decompose(self):
        fd = FD({"A"}, {"B", "C"})
        parts = fd.decompose()
        assert FD({"A"}, {"B"}) in parts and FD({"A"}, {"C"}) in parts

    def test_trivial(self):
        assert FD({"A", "B"}, {"A"}).is_trivial
        assert not FD({"A"}, {"B"}).is_trivial
