"""Unit tests for Bernstein 3NF synthesis (Example 8 of the paper)."""

from repro.fd import (
    DecomposedRelation,
    attrs,
    is_3nf,
    is_lossless_pair,
    merge_same_key,
    parse_fds,
    project_fds,
    project_fds_exact,
    synthesize_3nf,
)

ENROLMENT = attrs("Sid", "Sname", "Age", "Code", "Title", "Credit", "Grade")
ENROLMENT_FDS = parse_fds(
    ["Sid -> Sname, Age", "Code -> Title, Credit", "Sid, Code -> Grade"]
)


class TestExample8:
    """Figure 8's Enrolment decomposes into Student', Enrol', Course'."""

    def test_three_relations(self):
        decomposition = synthesize_3nf(ENROLMENT, ENROLMENT_FDS)
        attribute_sets = sorted(sorted(rel.attributes) for rel in decomposition)
        assert attribute_sets == [
            ["Age", "Sid", "Sname"],
            ["Code", "Credit", "Title"],
            ["Code", "Grade", "Sid"],
        ]

    def test_keys(self):
        decomposition = synthesize_3nf(ENROLMENT, ENROLMENT_FDS)
        keys = {frozenset(rel.key) for rel in decomposition}
        assert keys == {attrs("Sid"), attrs("Code"), attrs("Sid", "Code")}

    def test_pieces_are_3nf(self):
        for rel in synthesize_3nf(ENROLMENT, ENROLMENT_FDS):
            local = project_fds(ENROLMENT_FDS, rel.attributes)
            assert is_3nf(rel.attributes, local)

    def test_attribute_preservation(self):
        decomposition = synthesize_3nf(ENROLMENT, ENROLMENT_FDS)
        covered = frozenset().union(*(rel.attributes for rel in decomposition))
        assert covered == ENROLMENT


class TestGeneralSynthesis:
    def test_already_3nf_stays_whole(self):
        fds = parse_fds(["A -> B, C"])
        decomposition = synthesize_3nf(attrs("A", "B", "C"), fds)
        assert len(decomposition) == 1
        assert decomposition[0].key == attrs("A")

    def test_key_relation_added_when_missing(self):
        # no FD group contains the key (paper's PaperAuthor shape)
        fds = parse_fds(["P -> T", "A -> N"])
        decomposition = synthesize_3nf(attrs("P", "A", "T", "N"), fds)
        keys = {frozenset(rel.key) for rel in decomposition}
        assert attrs("P", "A") in keys

    def test_fd_free_attributes_attach_to_key_relation(self):
        fds = parse_fds(["A -> B"])
        decomposition = synthesize_3nf(attrs("A", "B", "C"), fds)
        holder = [rel for rel in decomposition if "C" in rel.attributes]
        assert len(holder) == 1
        assert "A" in holder[0].attributes  # key relation (A, C)

    def test_equivalent_determinants_grouped(self):
        fds = parse_fds(["A -> B", "B -> A", "A -> C"])
        decomposition = synthesize_3nf(attrs("A", "B", "C"), fds)
        assert len(decomposition) == 1
        assert decomposition[0].attributes == attrs("A", "B", "C")

    def test_subsumed_relations_removed(self):
        fds = parse_fds(["A -> B", "A, B -> C"])
        decomposition = synthesize_3nf(attrs("A", "B", "C"), fds)
        # minimal cover reduces (A,B)->C to A->C; one relation suffices
        assert len(decomposition) == 1

    def test_no_fds(self):
        decomposition = synthesize_3nf(attrs("A", "B"), [])
        assert decomposition == [
            DecomposedRelation(attrs("A", "B"), attrs("A", "B"))
        ]

    def test_lossless_pairwise_against_key_piece(self):
        decomposition = synthesize_3nf(ENROLMENT, ENROLMENT_FDS)
        key_piece = next(
            rel for rel in decomposition if rel.key == attrs("Sid", "Code")
        )
        for rel in decomposition:
            if rel is key_piece:
                continue
            assert is_lossless_pair(
                ENROLMENT, ENROLMENT_FDS, key_piece.attributes, rel.attributes
            )


class TestTransitiveElimination:
    """Bernstein's step 4: merged equivalent-determinant groups must not
    retain transitively dependent attributes (regression for the cover
    ``{AC->D, ABC->E, DE->C, ABE->D}``)."""

    COVER = parse_fds(["A, C -> D", "A, B, C -> E", "D, E -> C", "A, B, E -> D"])
    UNIVERSE = attrs("A", "B", "C", "D", "E")

    def test_merged_group_drops_transitive_attribute(self):
        # ABC ~ ABE merge into one group; without eliminating ABE -> D
        # (implied via the bijection ABE <-> ABC plus AC -> D) the merged
        # relation would contain D and violate 3NF through AC -> D
        decomposition = synthesize_3nf(self.UNIVERSE, self.COVER)
        merged = next(
            rel for rel in decomposition if attrs("A", "B", "C") <= rel.attributes
        )
        assert "D" not in merged.attributes

    def test_pieces(self):
        decomposition = synthesize_3nf(self.UNIVERSE, self.COVER)
        attribute_sets = sorted(sorted(rel.attributes) for rel in decomposition)
        assert attribute_sets == [
            ["A", "B", "C", "E"],
            ["A", "C", "D"],
            ["C", "D", "E"],
        ]

    def test_pieces_are_3nf(self):
        for rel in synthesize_3nf(self.UNIVERSE, self.COVER):
            local = project_fds_exact(self.COVER, rel.attributes)
            assert is_3nf(rel.attributes, local)


class TestMergeSameKey:
    def test_merges(self):
        merged = merge_same_key(
            [
                DecomposedRelation(attrs("A", "B"), attrs("A")),
                DecomposedRelation(attrs("A", "C"), attrs("A")),
                DecomposedRelation(attrs("D", "E"), attrs("D")),
            ]
        )
        assert len(merged) == 2
        assert merged[0].attributes == attrs("A", "B", "C")

    def test_preserves_order(self):
        merged = merge_same_key(
            [
                DecomposedRelation(attrs("D"), attrs("D")),
                DecomposedRelation(attrs("A", "B"), attrs("A")),
            ]
        )
        assert [sorted(rel.key) for rel in merged] == [["D"], ["A"]]
