"""Property-based tests for the FD machinery.

Random FD sets over a small attribute universe; the classical invariants of
closure, minimal cover and synthesis must hold on all of them.
"""

from __future__ import annotations

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.fd import (
    FunctionalDependency,
    candidate_keys,
    closure,
    equivalent,
    is_3nf,
    is_superkey,
    minimal_cover,
    parse_fds,
    project_fds_exact,
    synthesize_3nf,
)

UNIVERSE = ["A", "B", "C", "D", "E"]

attribute_sets = st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=3)

fds = st.builds(
    FunctionalDependency,
    attribute_sets,
    st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=2),
)

fd_sets = st.lists(fds, max_size=6)


@settings(max_examples=200, deadline=None)
@given(attribute_sets, fd_sets)
def test_closure_is_monotone_and_idempotent(attributes, dependencies):
    first = closure(attributes, dependencies)
    assert attributes <= first
    assert closure(first, dependencies) == first


@settings(max_examples=200, deadline=None)
@given(attribute_sets, attribute_sets, fd_sets)
def test_closure_monotone_in_attributes(small, extra, dependencies):
    combined = small | extra
    assert closure(small, dependencies) <= closure(combined, dependencies)


@settings(max_examples=150, deadline=None)
@given(fd_sets)
def test_minimal_cover_is_equivalent(dependencies):
    cover = minimal_cover(dependencies)
    assert equivalent(cover, dependencies)


@settings(max_examples=150, deadline=None)
@given(fd_sets)
def test_minimal_cover_has_singleton_rhs_and_no_trivial(dependencies):
    for fd in minimal_cover(dependencies):
        assert len(fd.rhs) == 1
        assert not fd.is_trivial


@settings(max_examples=100, deadline=None)
@given(fd_sets)
def test_candidate_keys_are_minimal_superkeys(dependencies):
    universe = frozenset(UNIVERSE)
    keys = candidate_keys(universe, dependencies)
    assert keys, "every relation has at least one candidate key"
    for key in keys:
        assert is_superkey(key, universe, dependencies)
        for attr in key:
            assert not is_superkey(key - {attr}, universe, dependencies)
    # pairwise non-containment
    for first in keys:
        for second in keys:
            if first is not second:
                assert not first < second


@settings(max_examples=100, deadline=None)
@given(fd_sets)
def test_synthesis_pieces_cover_universe_and_contain_a_key(dependencies):
    universe = frozenset(UNIVERSE)
    pieces = synthesize_3nf(universe, dependencies)
    covered = frozenset().union(*(piece.attributes for piece in pieces))
    assert covered == universe
    keys = candidate_keys(universe, dependencies)
    assert any(
        any(key <= piece.attributes for key in keys) for piece in pieces
    ), "some piece must contain a candidate key of the whole relation"


@settings(max_examples=100, deadline=None)
@given(fd_sets)
# merged equivalent determinants (ABC ~ ABE) used to absorb a transitively
# dependent attribute (D via AC -> D) into the group relation
@example(parse_fds(["A, C -> D", "A, B, C -> E", "D, E -> C", "A, B, E -> D"]))
# merged BC ~ AC, where the equivalence is only provable through FDs that
# live outside the piece (B -> D, D -> A)
@example(parse_fds(["B -> D", "B, C -> E", "A, C -> B", "D -> A"]))
def test_synthesis_pieces_are_3nf_under_projected_fds(dependencies):
    universe = frozenset(UNIVERSE)
    cover = minimal_cover(dependencies)
    for piece in synthesize_3nf(universe, dependencies):
        # 3NF of a projection is defined over the *implied* local FDs;
        # the syntactic project_fds misses cross-piece transitive FDs and
        # would under-count keys (false violations on merged-key pieces)
        local = project_fds_exact(cover, piece.attributes)
        assert is_3nf(piece.attributes, local)


@settings(max_examples=100, deadline=None)
@given(fd_sets)
def test_synthesis_no_piece_subsumed(dependencies):
    pieces = synthesize_3nf(frozenset(UNIVERSE), dependencies)
    for first in pieces:
        for second in pieces:
            if first is not second:
                assert not first.attributes <= second.attributes
