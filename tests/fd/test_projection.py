"""Tests for syntactic and exact FD projection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import (
    FunctionalDependency,
    attrs,
    closure,
    implies,
    parse_fds,
    project_fds,
    project_fds_exact,
)

FD = FunctionalDependency


class TestSyntacticProjection:
    def test_keeps_contained_fds(self):
        fds = parse_fds(["A -> B", "B -> C"])
        assert project_fds(fds, attrs("A", "B")) == [FD({"A"}, {"B"})]

    def test_drops_straddling_fds(self):
        fds = parse_fds(["A -> B"])
        assert project_fds(fds, attrs("A", "C")) == []


class TestExactProjection:
    def test_catches_transitive_dependency(self):
        fds = parse_fds(["A -> B", "B -> C"])
        projected = project_fds_exact(fds, attrs("A", "C"))
        assert projected == [FD({"A"}, {"C"})]

    def test_no_spurious_dependencies(self):
        fds = parse_fds(["A -> B"])
        assert project_fds_exact(fds, attrs("A", "C")) == []

    def test_composite_determinants_survive(self):
        fds = parse_fds(["A, B -> C"])
        projected = project_fds_exact(fds, attrs("A", "B", "C"))
        assert implies(projected, FD({"A", "B"}, {"C"}))
        assert not implies(projected, FD({"A"}, {"C"}))

    def test_projection_onto_everything_is_equivalent(self):
        fds = parse_fds(["A -> B", "B -> C", "C, D -> E"])
        universe = attrs("A", "B", "C", "D", "E")
        projected = project_fds_exact(fds, universe)
        for fd in fds:
            assert implies(projected, fd)
        for fd in projected:
            assert implies(fds, fd)


UNIVERSE = ["A", "B", "C", "D"]
fd_sets = st.lists(
    st.builds(
        FD,
        st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=2),
        st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=2),
    ),
    max_size=5,
)
subsets = st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=3)


@settings(max_examples=100, deadline=None)
@given(fd_sets, subsets)
def test_exact_projection_is_sound(dependencies, subset):
    """Every projected FD is implied by the originals."""
    for fd in project_fds_exact(dependencies, frozenset(subset)):
        assert implies(dependencies, fd)
        assert fd.attributes() <= frozenset(subset)


@settings(max_examples=100, deadline=None)
@given(fd_sets, subsets)
def test_exact_projection_is_complete_on_closures(dependencies, subset):
    """Closures inside the subset agree between originals and projection."""
    subset = frozenset(subset)
    projected = project_fds_exact(dependencies, subset)
    for attr in subset:
        original = closure({attr}, dependencies) & subset
        reduced = closure({attr}, projected) & subset
        assert original == reduced


@settings(max_examples=100, deadline=None)
@given(fd_sets, subsets)
def test_exact_dominates_syntactic(dependencies, subset):
    """Everything the syntactic projection keeps, the exact one implies."""
    subset = frozenset(subset)
    exact = project_fds_exact(dependencies, subset)
    for fd in project_fds(dependencies, subset):
        if not fd.is_trivial:
            assert implies(exact, fd)
