"""Shared fixtures: the paper's databases, engines and baselines.

Dataset generation is deterministic, so session-scoped fixtures are safe
and keep the suite fast.  Tests must not mutate fixture databases; tests
that need a mutable database build their own.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import SqakEngine
from repro.datasets import (
    denormalize_acmdl,
    denormalize_tpch,
    enrolment_database,
    generate_acmdl,
    generate_tpch,
    university_database,
    unnormalized_lecturer_database,
)
from repro.engine import KeywordSearchEngine


@pytest.fixture(scope="session", autouse=True)
def lock_sanitizer():
    """Opt-in runtime lock-order sanitizer (``REPRO_LOCK_SANITIZER``).

    Unset — inert.  ``1``/``on`` — instrument every lock the service
    stack creates and fail the session on an observed lock-order
    inversion.  ``strict`` — additionally cross-validate the static lock
    model: a statically-inferred guard that this run created but never
    acquired fails the session (C008).
    """
    mode = os.environ.get("REPRO_LOCK_SANITIZER", "").strip().lower()
    from repro.analysis.runtime import sanitizer_from_env

    sanitizer = sanitizer_from_env(mode)
    if sanitizer is None:
        yield None
        return
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
        inversions = [
            diagnostic
            for diagnostic in sanitizer.report()
            if diagnostic.code == "C002"
        ]
        assert not inversions, "\n".join(str(d) for d in inversions)
        if mode == "strict":
            from repro.analysis.concurrency import build_lock_model

            unexercised = sanitizer.cross_validate(build_lock_model())
            assert not unexercised, "\n".join(str(d) for d in unexercised)


@pytest.fixture(scope="session")
def university_db():
    return university_database()


@pytest.fixture(scope="session")
def university_engine(university_db):
    return KeywordSearchEngine(university_db)


@pytest.fixture(scope="session")
def university_sqak(university_db):
    return SqakEngine(university_db)


@pytest.fixture(scope="session")
def enrolment_db():
    return enrolment_database()


@pytest.fixture(scope="session")
def enrolment_fds():
    return {"Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]}


@pytest.fixture(scope="session")
def enrolment_engine(enrolment_db, enrolment_fds):
    return KeywordSearchEngine(enrolment_db, fds=enrolment_fds)


@pytest.fixture(scope="session")
def fig2_db():
    return unnormalized_lecturer_database()


@pytest.fixture(scope="session")
def fig2_engine(fig2_db):
    return KeywordSearchEngine(fig2_db, fds={"Lecturer": ["Did -> Fid"]})


@pytest.fixture(scope="session")
def tpch_db():
    return generate_tpch()


@pytest.fixture(scope="session")
def tpch_engine(tpch_db):
    return KeywordSearchEngine(tpch_db)


@pytest.fixture(scope="session")
def tpch_sqak(tpch_db):
    return SqakEngine(tpch_db)


@pytest.fixture(scope="session")
def acmdl_db():
    return generate_acmdl()


@pytest.fixture(scope="session")
def acmdl_engine(acmdl_db):
    return KeywordSearchEngine(acmdl_db)


@pytest.fixture(scope="session")
def acmdl_sqak(acmdl_db):
    return SqakEngine(acmdl_db)


@pytest.fixture(scope="session")
def tpch_unnorm(tpch_db):
    return denormalize_tpch(tpch_db)


@pytest.fixture(scope="session")
def tpch_unnorm_engine(tpch_unnorm):
    return KeywordSearchEngine(
        tpch_unnorm.database,
        fds=tpch_unnorm.fds,
        name_hints=tpch_unnorm.name_hints,
    )


@pytest.fixture(scope="session")
def tpch_unnorm_sqak(tpch_unnorm):
    return SqakEngine(tpch_unnorm.database, extra_joins=tpch_unnorm.sqak_extra_joins)


@pytest.fixture(scope="session")
def acmdl_unnorm(acmdl_db):
    return denormalize_acmdl(acmdl_db)


@pytest.fixture(scope="session")
def acmdl_unnorm_engine(acmdl_unnorm):
    return KeywordSearchEngine(
        acmdl_unnorm.database,
        fds=acmdl_unnorm.fds,
        name_hints=acmdl_unnorm.name_hints,
    )


@pytest.fixture(scope="session")
def acmdl_unnorm_sqak(acmdl_unnorm):
    return SqakEngine(
        acmdl_unnorm.database, extra_joins=acmdl_unnorm.sqak_extra_joins
    )
