"""Doc-sync: every ``python`` code block in the docs must actually run.

Fenced ```python blocks are extracted from each documented file and
executed cumulatively (one shared namespace per file), so a later block
may use names defined by an earlier one — exactly how a reader follows
the document top to bottom.  Blocks fenced as ```text (sample output,
shell transcripts) are ignored.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    "README.md",
    "docs/API.md",
    "docs/ANALYSIS.md",
    "docs/ARCHITECTURE.md",
    "docs/BACKENDS.md",
    "docs/OBSERVABILITY.md",
    "docs/PERFORMANCE.md",
    "docs/PLANNER.md",
    "docs/SERVING.md",
    "docs/STORAGE.md",
]

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return [match.group(1) for match in _BLOCK_RE.finditer(path.read_text())]


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_doc_code_blocks_execute(relpath):
    path = REPO_ROOT / relpath
    assert path.exists(), f"{relpath} is missing"
    blocks = python_blocks(path)
    assert blocks, f"{relpath} has no ```python blocks to check"
    namespace = {"__name__": f"doc_sync:{relpath}"}
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{relpath}#block{index}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{relpath} code block {index} raised "
                f"{type(exc).__name__}: {exc}\n---\n{block}"
            )


def test_docs_cross_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/OBSERVABILITY.md" in readme
    assert "docs/API.md" in readme
    assert "docs/PERFORMANCE.md" in readme
    assert "docs/ANALYSIS.md" in readme
    assert "docs/SERVING.md" in readme
    assert "docs/BACKENDS.md" in readme
