"""Plan analyzers: index-lookup soundness, pushed-predicate scope, and
the planner advisories (S022 row budget, S023 skipped index)."""

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.plan_analyzers import analyze_plan
from repro.datasets import university_database
from repro.relational.executor import Executor
from repro.relational.plan import IndexLookup, _TableScan
from repro.sql.ast import ColumnRef, eq
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def database():
    return university_database()


@pytest.fixture(scope="module")
def executor(database):
    # soundness checks target the heuristic pipeline; the planner
    # advisories (S022/S023) get their own cost-mode executor below
    return Executor(database, compile_plans=True, optimizer="off")


@pytest.fixture(scope="module")
def cost_executor(database):
    return Executor(database, compile_plans=True, optimizer="cost")


def plan_for(executor, sql):
    return executor.plan_for(parse(sql))


def table_scans(plan):
    return [scan for scan in plan.scans if isinstance(scan, _TableScan)]


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCleanPlans:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT Sname FROM Student WHERE Sname LIKE '%Green%'",
            "SELECT Sname FROM Student WHERE Age = 24",
            "SELECT C.Code, COUNT(L.Lid) AS n FROM Course C, Lecturer L, "
            "Teach T WHERE T.Code = C.Code AND T.Lid = L.Lid GROUP BY C.Code",
            "SELECT AVG(n) AS a FROM (SELECT Code, COUNT(Sid) AS n "
            "FROM Enrol GROUP BY Code) X",
        ],
    )
    def test_compiled_plans_are_sound(self, executor, sql):
        assert analyze_plan(plan_for(executor, sql)) == []


class TestBrokenLookups:
    def _scan_with_lookup(self, executor, sql):
        plan = plan_for(executor, sql)
        scans = [
            scan
            for scan in table_scans(plan)
            if any(p.lookup is not None for p in scan.pushed)
        ]
        assert scans, "expected a pushed index lookup"
        return plan, scans[0]

    def test_s020_contains_on_numeric_column(self, executor):
        plan, scan = self._scan_with_lookup(
            executor, "SELECT Sid FROM Student WHERE Sname LIKE '%Green%'"
        )
        pushed = next(p for p in scan.pushed if p.lookup is not None)
        pushed.lookup = IndexLookup("contains", "Student", "Age", "Green")
        assert codes(analyze_plan(plan)) == ["S020"]

    def test_s020_numeric_eq_on_text_column(self, executor):
        plan, scan = self._scan_with_lookup(
            executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        pushed = next(p for p in scan.pushed if p.lookup is not None)
        pushed.lookup = IndexLookup("numeric-eq", "Student", "Sname", 24)
        assert codes(analyze_plan(plan)) == ["S020"]

    def test_s020_non_numeric_probe(self, executor):
        plan, scan = self._scan_with_lookup(
            executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        pushed = next(p for p in scan.pushed if p.lookup is not None)
        pushed.lookup = IndexLookup("numeric-eq", "Student", "Age", "24")
        assert codes(analyze_plan(plan)) == ["S020"]

    def test_s020_unknown_kind(self, executor):
        plan, scan = self._scan_with_lookup(
            executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        pushed = next(p for p in scan.pushed if p.lookup is not None)
        pushed.lookup = IndexLookup("bitmap", "Student", "Age", 24)
        assert codes(analyze_plan(plan)) == ["S020"]

    def test_s021_lookup_column_not_in_relation(self, executor):
        plan, scan = self._scan_with_lookup(
            executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        pushed = next(p for p in scan.pushed if p.lookup is not None)
        pushed.lookup = IndexLookup("numeric-eq", "Student", "Credit", 24)
        assert codes(analyze_plan(plan)) == ["S021"]

    def test_never_lookups_are_fine(self, executor):
        plan, scan = self._scan_with_lookup(
            executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        pushed = next(p for p in scan.pushed if p.lookup is not None)
        pushed.lookup = IndexLookup("never", "Student", "Age", None)
        assert analyze_plan(plan) == []


class TestPushedScope:
    def test_s021_foreign_alias_in_pushed_predicate(self, executor):
        plan = plan_for(
            executor, "SELECT S.Sid FROM Student S WHERE S.Age = 24"
        )
        scan = table_scans(plan)[0]
        assert scan.pushed, "expected a pushed predicate"
        scan.pushed[0].expr = eq(
            ColumnRef("Age", "S"), ColumnRef("Credit", "C")
        )
        found = analyze_plan(plan)
        assert "S021" in codes(found)

    def test_derived_scans_recurse(self, executor):
        plan = plan_for(
            executor,
            "SELECT AVG(n) AS a FROM (SELECT Code, COUNT(Sid) AS n "
            "FROM Enrol WHERE Grade LIKE '%A%' GROUP BY Code) X",
        )
        # sanity: the derived scan's subplan is analyzed (clean here)
        assert analyze_plan(plan) == []


class TestPlannerAdvisories:
    def test_no_advisories_without_decisions(self, executor):
        plan = plan_for(executor, "SELECT Sid FROM Student WHERE Age = 24")
        assert plan.decisions is None
        assert analyze_plan(plan, row_budget=0) == []

    def test_s022_row_budget_exceeded(self, cost_executor):
        plan = plan_for(
            cost_executor, "SELECT S.Sname, E.Grade FROM Student S, Enrol E"
        )
        found = [d for d in analyze_plan(plan, row_budget=1) if d.code == "S022"]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_s022_silent_under_budget(self, cost_executor):
        plan = plan_for(cost_executor, "SELECT Sid FROM Student")
        assert "S022" not in codes(analyze_plan(plan))

    def test_s023_skipped_index_is_info(self, cost_executor):
        # tiny table: a seq scan beats paying the index probe, so the
        # cost model skips the available hash lookup — and says so
        plan = plan_for(
            cost_executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        skipped = [
            pushed
            for scan in table_scans(plan)
            for pushed in scan.pushed
            if pushed.lookup is not None and not pushed.use_lookup
        ]
        assert skipped, "expected the cost model to skip the index probe"
        found = [d for d in analyze_plan(plan) if d.code == "S023"]
        assert found and all(d.severity is Severity.INFO for d in found)

    def test_s023_does_not_fail_check(self, cost_executor):
        from repro.analysis.diagnostics import AnalysisReport

        plan = plan_for(
            cost_executor, "SELECT Sid FROM Student WHERE Age = 24"
        )
        report = AnalysisReport()
        report.extend(analyze_plan(plan))
        assert not report.has_findings
