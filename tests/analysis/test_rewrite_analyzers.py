"""Rewrite postconditions (R001–R005), hand-built and pipeline cases."""

from dataclasses import replace

import pytest

from repro.analysis.rewrite_analyzers import analyze_rewrite
from repro.datasets import enrolment_database
from repro.engine import KeywordSearchEngine
from repro.sql.ast import (
    ColumnRef,
    DerivedTable,
    FuncCall,
    Select,
    SelectItem,
    TableRef,
    eq,
)
from repro.unnormalized.provider import FragmentUse

ENROLMENT_FDS = {
    "Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]
}


@pytest.fixture(scope="module")
def engine():
    return KeywordSearchEngine(enrolment_database(), fds=ENROLMENT_FDS)


def codes(diagnostics):
    return [d.code for d in diagnostics]


def fragment(alias, attrs, distinct=True):
    projection = Select(
        items=tuple(SelectItem(ColumnRef(attr)) for attr in attrs),
        from_items=(TableRef.of("Enrolment"),),
        distinct=distinct,
    )
    return DerivedTable(projection, alias)


def simple_statement(fragment_attrs):
    """SELECT COUNT(F1.Code) ... FROM <fragment> GROUP BY F1.Sid."""
    return Select(
        items=(
            SelectItem(ColumnRef("Sid", "F1")),
            SelectItem(
                FuncCall("COUNT", (ColumnRef("Code", "F1"),)), "numCode"
            ),
        ),
        from_items=(fragment("F1", fragment_attrs),),
        group_by=(ColumnRef("Sid", "F1"),),
    )


USES = {
    "F1": FragmentUse(
        "F1", "Enrolment", ("Sid", "Code"), ("Sid", "Code"), True
    )
}


class TestHandBuiltPostconditions:
    def test_identity_rewrite_is_clean(self, engine):
        original = simple_statement(("Sid", "Code"))
        assert (
            analyze_rewrite(original, original, USES, engine.database.schema)
            == []
        )

    def test_r001_unknown_relation(self, engine):
        original = simple_statement(("Sid", "Code"))
        rewritten = replace(
            original, from_items=(TableRef("Ghost", "F1"),)
        )
        assert "R001" in codes(
            analyze_rewrite(original, rewritten, {}, engine.database.schema)
        )

    def test_r002_changed_group_keys(self, engine):
        original = simple_statement(("Sid", "Code"))
        rewritten = replace(original, group_by=(ColumnRef("Code", "F1"),))
        assert "R002" in codes(
            analyze_rewrite(original, rewritten, USES, engine.database.schema)
        )

    def test_r003_changed_output(self, engine):
        original = simple_statement(("Sid", "Code"))
        rewritten = replace(original, items=original.items[:1])
        found = codes(
            analyze_rewrite(original, rewritten, USES, engine.database.schema)
        )
        assert "R003" in found

    def test_r004_lost_view_key(self, engine):
        original = simple_statement(("Sid", "Code"))
        # Rule 1 gone wrong: the DISTINCT fragment drops the Code key column
        rewritten = replace(
            original, from_items=(fragment("F1", ("Sid",)),)
        )
        found = analyze_rewrite(
            original, rewritten, USES, engine.database.schema
        )
        assert "R004" in codes(found)

    def test_r004_not_reported_for_never_projected_key(self, engine):
        # a force-distinct projection that never carried the key cannot
        # "lose" it — only emission-time attributes count
        uses = {
            "F1": FragmentUse(
                "F1", "Enrolment", ("Sname",), ("Sid", "Code"), True
            )
        }
        original = Select(
            items=(SelectItem(ColumnRef("Sname", "F1")),),
            from_items=(fragment("F1", ("Sname",)),),
        )
        assert (
            analyze_rewrite(original, original, uses, engine.database.schema)
            == []
        )

    def test_r004_not_reported_without_distinct(self, engine):
        uses = {
            "F1": FragmentUse(
                "F1", "Enrolment", ("Sid", "Code"), ("Sid", "Code"), False
            )
        }
        original = Select(
            items=(SelectItem(ColumnRef("Sid", "F1")),),
            from_items=(fragment("F1", ("Sid", "Code"), distinct=False),),
        )
        rewritten = replace(
            original, from_items=(fragment("F1", ("Sid",), distinct=False),)
        )
        assert (
            analyze_rewrite(original, rewritten, uses, engine.database.schema)
            == []
        )

    def test_r005_changed_aggregates(self, engine):
        original = simple_statement(("Sid", "Code"))
        rewritten = replace(
            original,
            items=(
                original.items[0],
                SelectItem(
                    FuncCall("SUM", (ColumnRef("Code", "F1"),)), "numCode"
                ),
            ),
        )
        assert "R005" in codes(
            analyze_rewrite(original, rewritten, USES, engine.database.schema)
        )


class TestPipelineRewrites:
    @pytest.mark.parametrize(
        "query",
        [
            "Green SUM Credit",
            "COUNT Sid GROUPBY Code",
            "AVG COUNT Sid GROUPBY Code",
        ],
    )
    def test_real_rewrites_are_clean(self, engine, query):
        for pattern in engine.patterns(query)[:5]:
            parts = engine.translate_parts(pattern)
            if not parts.was_rewritten:
                continue
            assert (
                analyze_rewrite(
                    parts.raw,
                    parts.final,
                    parts.fragment_uses,
                    engine.database.schema,
                )
                == []
            )

    def test_nested_wrapper_levels_compared(self, engine):
        # break the inner level of a nested-aggregate statement
        pattern = next(
            p
            for p in engine.patterns("AVG COUNT Sid GROUPBY Code")
            if any(
                a.outer_chain for n in p.nodes for a in n.aggregates
            )
        )
        parts = engine.translate_parts(pattern)
        inner = parts.final.subqueries()
        if len(parts.final.from_items) != 1 or len(inner) != 1:
            pytest.skip("rewrite did not keep the wrapper shape")
        broken_inner = replace(inner[0], group_by=())
        broken = replace(
            parts.final,
            from_items=(
                DerivedTable(broken_inner, parts.final.from_items[0].alias),
            ),
        )
        found = codes(
            analyze_rewrite(
                parts.raw, broken, parts.fragment_uses, engine.database.schema
            )
        )
        assert "R002" in found
