"""Zero-findings sweep: the real pipeline must analyze clean.

Every evaluation query, on every dataset, with both engines — the
analyzers must find nothing of WARNING severity or worse.  This is the
same contract ``repro check`` enforces in CI (``has_findings`` ignores
INFO advisories such as S023 skipped-index notes, which the cost-based
planner emits by design); here it runs on the two smaller datasets per
family to keep the suite fast (CI runs the full matrix).
"""

import pytest

from repro.analysis.plan_analyzers import analyze_plan
from repro.analysis.sql_analyzers import analyze_select
from repro.baselines import SqakEngine
from repro.datasets import (
    denormalize_tpch,
    generate_acmdl,
    generate_tpch,
)
from repro.engine import KeywordSearchEngine
from repro.errors import UnsupportedQueryError
from repro.experiments.queries import ACMDL_QUERIES, TPCH_QUERIES


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch()


@pytest.fixture(scope="module")
def tpch_engine(tpch):
    return KeywordSearchEngine(tpch)


@pytest.fixture(scope="module")
def tpch_unnorm_engine(tpch):
    dataset = denormalize_tpch(tpch)
    return KeywordSearchEngine(
        dataset.database,
        fds=dict(dataset.fds),
        name_hints=dict(dataset.name_hints),
    )


@pytest.fixture(scope="module")
def acmdl_engine():
    return KeywordSearchEngine(generate_acmdl())


def _assert_no_findings(report):
    assert not report.has_findings, report.render()
    # anything below WARNING must be a planner advisory, not an error
    assert all(d.code == "S023" for d in report.diagnostics), report.render()


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.qid)
def test_tpch_normalized_is_clean(tpch_engine, spec):
    report = tpch_engine.analyze(spec.text)
    _assert_no_findings(report)


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.qid)
def test_tpch_unnormalized_is_clean(tpch_unnorm_engine, spec):
    report = tpch_unnorm_engine.analyze(spec.text)
    _assert_no_findings(report)


@pytest.mark.parametrize("spec", ACMDL_QUERIES, ids=lambda s: s.qid)
def test_acmdl_normalized_is_clean(acmdl_engine, spec):
    report = acmdl_engine.analyze(spec.text)
    _assert_no_findings(report)


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.qid)
def test_sqak_statements_are_clean(tpch, spec):
    if spec.sqak_na:
        pytest.skip("SQAK cannot express this query")
    sqak = SqakEngine(tpch)
    try:
        statement = sqak.compile(spec.text)
    except UnsupportedQueryError:
        pytest.skip("SQAK cannot compile this query")
    diagnostics = analyze_select(statement.select, tpch.schema)
    diagnostics.extend(analyze_plan(sqak.executor.plan_for(statement.select)))
    assert diagnostics == []
