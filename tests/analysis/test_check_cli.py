"""The ``repro check`` subcommand and the CLI analysis surface."""

import io

import pytest

from repro.analysis.check import CHECK_DATASETS, run_check
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.cli import main
from repro.engine import KeywordSearchEngine


class TestCheckCommand:
    def test_clean_dataset_exits_zero(self):
        out = io.StringIO()
        code = main(
            ["check", "--dataset", "tpch", "--skip-sqak", "--top", "3"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "tpch: clean" in text
        assert "0 with findings" in text

    def test_both_engines_run_by_default(self):
        out = io.StringIO()
        code = run_check(["--dataset", "tpch", "--top", "2"], out=out)
        assert code == 0
        # 8 semantic + SQAK-expressible statements
        assert "artifacts analyzed" in out.getvalue()

    def test_findings_flip_the_exit_code(self, monkeypatch):
        bad = AnalysisReport()
        bad.add(Diagnostic("P009", Severity.ERROR, "injected"))
        monkeypatch.setattr(
            KeywordSearchEngine,
            "analyze",
            lambda self, text, k=None, tracer=None: bad,
        )
        out = io.StringIO()
        code = run_check(
            ["--dataset", "tpch", "--skip-sqak", "--top", "1"], out=out
        )
        assert code == 1
        assert "P009" in out.getvalue()
        assert "tpch: error" in out.getvalue()

    def test_concurrency_mode_is_clean_on_the_tree(self):
        out = io.StringIO()
        code = main(["check", "--concurrency"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "concurrency: clean" in text
        # every honoured suppression is listed with its justification
        assert "suppressed C003" in text

    def test_concurrency_mode_fails_on_findings(self, monkeypatch):
        from repro.analysis import check as check_module
        from repro.analysis.concurrency import ConcurrencyReport, LockModel
        from repro.analysis.diagnostics import Diagnostic, Severity

        injected = ConcurrencyReport(
            findings=[Diagnostic("C002", Severity.ERROR, "injected cycle")],
            suppressed=[],
            model=LockModel(),
        )
        import repro.analysis.concurrency as concurrency_module

        monkeypatch.setattr(
            concurrency_module,
            "analyze_concurrency",
            lambda root=None, sources=None: injected,
        )
        out = io.StringIO()
        code = check_module.run_check(["--concurrency"], out=out)
        assert code == 1
        assert "injected cycle" in out.getvalue()

    def test_dataset_choices(self):
        assert CHECK_DATASETS == (
            "tpch",
            "tpch-unnorm",
            "acmdl",
            "acmdl-unnorm",
        )
        with pytest.raises(SystemExit):
            run_check(["--dataset", "university"], out=io.StringIO())


class TestCliAnalysisFlags:
    def test_strict_search_succeeds_on_clean_query(self):
        out = io.StringIO()
        code = main(
            [
                "--dataset",
                "university",
                "--strict",
                "COUNT Lecturer GROUPBY Course",
            ],
            out=out,
        )
        assert code == 0
        assert "numLid" in out.getvalue()

    def test_explain_prints_diagnostics_section(self):
        out = io.StringIO()
        code = main(
            [
                "--dataset",
                "university",
                "--explain",
                "COUNT Lecturer GROUPBY Course",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "-- diagnostics" in text
        assert "no diagnostics" in text
