"""SQL/type analyzers over a corpus of deliberately broken statements.

Every case is a SQL string (parsed by the project parser) with the exact
code it must trigger against the university schema.
"""

from dataclasses import replace

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.sql_analyzers import analyze_select
from repro.analysis.type_inference import build_scope, infer_expr_type
from repro.datasets import university_database
from repro.relational.types import DataType
from repro.sql.ast import ColumnRef
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def schema():
    return university_database().schema


def analyze_sql(sql, schema):
    return analyze_select(parse(sql), schema)


def codes(diagnostics):
    return [d.code for d in diagnostics]


CLEAN_STATEMENTS = (
    "SELECT Sname FROM Student",
    "SELECT C.Code, COUNT(L.Lid) AS numLid FROM Course C, Lecturer L, "
    "Teach T WHERE T.Code = C.Code AND T.Lid = L.Lid GROUP BY C.Code",
    "SELECT COUNT(*) FROM Enrol",
    "SELECT Sname FROM Student WHERE Sname LIKE '%Green%' ORDER BY Sname",
    "SELECT AVG(n) AS avgN FROM (SELECT Code, COUNT(Sid) AS n FROM Enrol "
    "GROUP BY Code) X",
)

BROKEN_STATEMENTS = (
    ("SELECT Sid FROM Nosuch", "S001"),
    ("SELECT Nope FROM Student", "S002"),
    ("SELECT X.Sid FROM Student S", "S002"),
    ("SELECT Code FROM Course, Teach", "S003"),
    ("SELECT S.Sid FROM Student S, Course S", "S004"),
    ("SELECT * FROM Student", "S005"),
    ("SELECT SUM(COUNT(Sid)) AS x FROM Student", "S006"),
    ("SELECT Sid FROM Student WHERE COUNT(Sid) = 1", "S007"),
    ("SELECT Sid, COUNT(Code) AS n FROM Enrol GROUP BY Code", "S008"),
    ("SELECT Sid FROM Student LIMIT 3", None),  # shape probe, see below
    ("SELECT SUM(Sname) AS s FROM Student", "S010"),
    ("SELECT Sid FROM Student WHERE Sname = 1", "S011"),
    ("SELECT Sid FROM Student WHERE Age + Sname > 1", "S012"),
    ("SELECT Sid FROM Student WHERE Age LIKE '%1%'", "S013"),
    ("SELECT Sid FROM Student ORDER BY Nope", "S014"),
    ("SELECT AVG(n) AS a FROM (SELECT COUNT(Sid) AS n FROM Student) X",
     "S015"),
)


class TestCleanStatements:
    @pytest.mark.parametrize("sql", CLEAN_STATEMENTS)
    def test_no_diagnostics(self, schema, sql):
        assert analyze_sql(sql, schema) == []


class TestBrokenStatements:
    @pytest.mark.parametrize(
        "sql,code",
        [(sql, code) for sql, code in BROKEN_STATEMENTS if code],
    )
    def test_expected_code(self, schema, sql, code):
        found = codes(analyze_sql(sql, schema))
        assert code in found, f"{sql!r}: expected {code}, got {found}"

    def test_s009_negative_limit(self, schema):
        select = replace(parse("SELECT Sid FROM Student"), limit=-1)
        assert "S009" in codes(analyze_select(select, schema))

    def test_s009_empty_from(self, schema):
        select = replace(parse("SELECT Sid FROM Student"), from_items=())
        assert "S009" in codes(analyze_select(select, schema))

    def test_s013_is_warning(self, schema):
        diagnostics = analyze_sql(
            "SELECT Sid FROM Student WHERE Age LIKE '%1%'", schema
        )
        assert [d.severity for d in diagnostics] == [Severity.WARNING]

    def test_s015_is_warning(self, schema):
        diagnostics = analyze_sql(
            "SELECT AVG(n) AS a FROM (SELECT COUNT(Sid) AS n FROM Student) X",
            schema,
        )
        assert [(d.code, d.severity) for d in diagnostics] == [
            ("S015", Severity.WARNING)
        ]

    def test_subquery_diagnostics_are_located(self, schema):
        diagnostics = analyze_sql(
            "SELECT s FROM (SELECT SUM(Sname) AS s FROM Student) X", schema
        )
        s010 = [d for d in diagnostics if d.code == "S010"]
        assert len(s010) == 1
        assert "subquery X" in s010[0].location


class TestTypeInference:
    def test_scope_resolves_declared_types(self, schema):
        select = parse("SELECT S.Age FROM Student S")
        scope = build_scope(select, schema)
        assert scope["S"]["age"] is DataType.INT
        assert infer_expr_type(ColumnRef("Age", "S"), scope) is DataType.INT

    def test_derived_table_types_flow_through(self, schema):
        select = parse(
            "SELECT X.n FROM (SELECT COUNT(Sid) AS n FROM Student) X"
        )
        scope = build_scope(select, schema)
        assert scope["X"]["n"] is DataType.INT

    def test_unknown_stays_unknown(self, schema):
        select = parse("SELECT Sid FROM Student")
        scope = build_scope(select, schema)
        assert infer_expr_type(ColumnRef("Mystery"), scope) is None


class TestDialectAnalyzer:
    """S016: a statement the target backend's dialect cannot render."""

    def test_renderable_statement_is_clean(self):
        from repro.analysis.sql_analyzers import analyze_dialect
        from repro.sql.render import ANSI_DIALECT, SQLITE_DIALECT

        select = parse("SELECT Sname FROM Student WHERE Sname = 'Green'")
        assert analyze_dialect(select, ANSI_DIALECT) == []
        assert analyze_dialect(select, SQLITE_DIALECT) == []

    def test_unrenderable_phrase_is_s016_error(self):
        from repro.analysis.sql_analyzers import analyze_dialect
        from repro.sql.ast import Contains, Select, SelectItem, Star, TableRef
        from repro.sql.render import SQLITE_DIALECT

        select = Select(
            items=(SelectItem(Star()),),
            from_items=(TableRef("Student", "Student"),),
            where=Contains(ColumnRef("Sname"), "nul\x00byte"),
        )
        diagnostics = analyze_dialect(select, SQLITE_DIALECT, location="interp #1")
        assert [(d.code, d.severity) for d in diagnostics] == [
            ("S016", Severity.ERROR)
        ]
        assert "sqlite" in diagnostics[0].message
        assert diagnostics[0].location == "interp #1"
