"""The runtime lock-order sanitizer (C002/C007/C008 at runtime)."""

from __future__ import annotations

import threading

from repro.analysis.concurrency import (
    ClassModel,
    LockId,
    LockModel,
    LockSite,
)
from repro.analysis.runtime import (
    LockOrigin,
    LockSanitizer,
    SanitizedLock,
    sanitizer_from_env,
)

THIS_FILE = "tests/analysis/test_runtime.py"


class TestFactoryPatch:
    def test_watched_frame_gets_sanitized_lock(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock = threading.Lock()
        assert isinstance(lock, SanitizedLock)
        assert lock.origin.path == THIS_FILE
        assert sanitizer._observations.created[lock.origin] == 1

    def test_unwatched_frame_gets_real_lock(self):
        sanitizer = LockSanitizer(watch=("no/such/path/",))
        with sanitizer:
            lock = threading.Lock()
        assert not isinstance(lock, SanitizedLock)

    def test_uninstall_restores_factories(self):
        real = threading.Lock
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        sanitizer.install()
        sanitizer.uninstall()
        assert threading.Lock is real
        assert not isinstance(threading.Lock(), SanitizedLock)

    def test_install_is_idempotent(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        real = threading.Lock
        sanitizer.install()
        sanitizer.install()
        sanitizer.uninstall()
        assert threading.Lock is real


class TestLockProtocol:
    def test_context_manager_and_locked(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock = threading.Lock()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert lock.origin in sanitizer._observations.acquired

    def test_rlock_reentrancy_records_outermost_only(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock = threading.RLock()
        assert isinstance(lock, SanitizedLock)
        with lock:
            with lock:
                pass
            # inner release must not pop the outer hold
            assert lock in sanitizer._state.held
        assert lock not in sanitizer._state.held

    def test_failed_acquire_not_recorded(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock = threading.Lock()
        lock.acquire()
        try:
            done = threading.Event()

            def contender():
                assert lock.acquire(False) is False
                done.set()

            thread = threading.Thread(
                target=contender, name="contender", daemon=True
            )
            thread.start()
            assert done.wait(5.0)
            thread.join(5.0)
        finally:
            lock.release()
        assert sanitizer._observations.created[lock.origin] == 1


class TestInversions:
    def test_seeded_inversion_detected(self):
        """The self-test the sanitizer must pass: A->B then B->A."""
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        inversions = sanitizer.inversions()
        assert len(inversions) == 1
        assert {inversions[0][0], inversions[0][1]} == {
            lock_a.origin,
            lock_b.origin,
        }
        report = sanitizer.report()
        assert [d.code for d in report] == ["C002"]
        assert "inversion" in report[0].message

    def test_consistent_order_is_clean(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert sanitizer.inversions() == []
        assert sanitizer.report() == []
        edges = sanitizer.order_edges()
        assert edges[(lock_a.origin, lock_b.origin)] == 3

    def test_cross_thread_inversion_detected(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        with sanitizer:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        for target in (forward, backward):
            thread = threading.Thread(
                target=target, name=target.__name__, daemon=True
            )
            thread.start()
            thread.join(5.0)
        assert len(sanitizer.inversions()) == 1


class TestLongHolds:
    def test_long_hold_reported_with_fake_clock(self):
        ticks = [0.0]

        def clock():
            return ticks[0]

        sanitizer = LockSanitizer(
            watch=(THIS_FILE,), hold_threshold_s=0.5, clock=clock
        )
        with sanitizer:
            lock = threading.Lock()
        with lock:
            ticks[0] = 2.0
        holds = sanitizer.long_holds()
        assert holds[lock.origin] == 2.0
        report = sanitizer.report()
        assert [d.code for d in report] == ["C007"]

    def test_short_hold_not_reported(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,), hold_threshold_s=10.0)
        with sanitizer:
            lock = threading.Lock()
        with lock:
            pass
        assert sanitizer.long_holds() == {}


class TestCrossValidation:
    def _model(self, path, lineno, via_factory=False):
        """A one-class static model whose lock guards one attribute."""
        site = LockSite(
            lock=LockId("Owner", "_lock"),
            kind="Lock",
            path=path,
            lineno=lineno,
            via_factory=via_factory,
        )
        cls = ClassModel(name="Owner", module="owner", path=path)
        cls.locks["_lock"] = site
        model = LockModel(classes={"Owner": cls})
        model.guards[("Owner", "state")] = (LockId("Owner", "_lock"),)
        return model

    def test_acquired_guard_passes(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        origin = LockOrigin(THIS_FILE, 42)
        lock = sanitizer.wrap(threading.Lock.__call__(), origin)
        with lock:
            pass
        model = self._model(THIS_FILE, 42)
        assert sanitizer.cross_validate(model) == []

    def test_created_but_never_acquired_is_c008(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        origin = LockOrigin(THIS_FILE, 42)
        sanitizer.wrap(threading.Lock.__call__(), origin)
        model = self._model(THIS_FILE, 42)
        findings = sanitizer.cross_validate(model)
        assert [d.code for d in findings] == ["C008"]
        assert "never acquired" in findings[0].message

    def test_never_created_is_out_of_scope(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        model = self._model(THIS_FILE, 42)
        assert sanitizer.cross_validate(model) == []

    def test_via_factory_sites_skipped(self):
        sanitizer = LockSanitizer(watch=(THIS_FILE,))
        origin = LockOrigin(THIS_FILE, 42)
        sanitizer.wrap(threading.Lock.__call__(), origin)
        model = self._model(THIS_FILE, 42, via_factory=True)
        assert sanitizer.cross_validate(model) == []


class TestEnvGate:
    def test_disabled_when_unset(self):
        assert sanitizer_from_env(None) is None
        assert sanitizer_from_env("") is None

    def test_enabled_watches_service(self):
        sanitizer = sanitizer_from_env("1")
        assert sanitizer is not None
        assert sanitizer.watch == ("repro/service/",)
