"""Strict mode end-to-end: engine.analyze, search(strict=...), executor
validation, and the diagnostics flowing into traces."""

from dataclasses import replace

import pytest

from repro.analysis.pipeline import TranslationParts
from repro.datasets import university_database
from repro.engine import KeywordSearchEngine
from repro.errors import SqlExecutionError, StaticAnalysisError
from repro.relational.executor import execute_sql
from repro.sql.ast import TableRef


@pytest.fixture()
def engine():
    return KeywordSearchEngine(university_database())


def break_translation(engine):
    """Make the engine lose the DISTINCT dedup projection (Example 6)."""
    original = engine.translate_parts

    def broken(pattern, tracer=None):
        parts = original(pattern)
        raw = replace(
            parts.raw,
            from_items=tuple(
                TableRef("Teach", item.alias)
                if item.alias == "T1"
                else item
                for item in parts.raw.from_items
            ),
        )
        return TranslationParts(raw=raw, final=raw)

    engine.translate_parts = broken


class TestAnalyze:
    def test_clean_query_has_no_diagnostics(self, engine):
        report = engine.analyze("COUNT Lecturer GROUPBY Course")
        assert len(report) == 0
        assert not report.has_findings

    def test_diagnostics_attach_to_interpretations(self, engine):
        break_translation(engine)
        report = engine.analyze("COUNT Lecturer GROUPBY Course")
        assert "P009" in report.codes()
        interpretations = engine.compile("COUNT Lecturer GROUPBY Course")
        engine._analyze_compiled(
            "COUNT Lecturer GROUPBY Course", interpretations
        )
        assert any(
            d.code == "P009"
            for interp in interpretations
            for d in interp.diagnostics
        )

    def test_locations_name_the_interpretation(self, engine):
        break_translation(engine)
        report = engine.analyze("COUNT Lecturer GROUPBY Course")
        assert all(
            d.location.startswith("interpretation #")
            for d in report.by_code("P009")
        )


class TestStrictSearch:
    def test_clean_query_passes(self, engine):
        result = engine.search("COUNT Lecturer GROUPBY Course", strict=True)
        assert result.best.diagnostics == []

    def test_error_diagnostics_raise(self, engine):
        break_translation(engine)
        with pytest.raises(StaticAnalysisError) as excinfo:
            engine.search("COUNT Lecturer GROUPBY Course", strict=True)
        assert any(d.code == "P009" for d in excinfo.value.diagnostics)

    def test_non_strict_search_does_not_raise(self, engine):
        break_translation(engine)
        result = engine.search("COUNT Lecturer GROUPBY Course")
        assert len(result) >= 1

    def test_engine_level_strict_default(self):
        engine = KeywordSearchEngine(university_database(), strict=True)
        break_translation(engine)
        with pytest.raises(StaticAnalysisError):
            engine.search("COUNT Lecturer GROUPBY Course")
        # per-call override wins over the engine default
        result = engine.search("COUNT Lecturer GROUPBY Course", strict=False)
        assert len(result) >= 1

    def test_strict_trace_has_analyze_span(self, engine):
        result = engine.search(
            "COUNT Lecturer GROUPBY Course", trace=True, strict=True
        )
        rendered = result.trace.render()
        assert "analyze" in rendered


class TestExecutorValidation:
    def test_validate_rejects_broken_sql(self):
        database = university_database()
        with pytest.raises(SqlExecutionError) as excinfo:
            execute_sql(database, "SELECT Nope FROM Student", validate=True)
        assert "S002" in str(excinfo.value)

    def test_validate_passes_good_sql(self):
        database = university_database()
        result = execute_sql(
            database, "SELECT Sname FROM Student", validate=True
        )
        assert len(result.rows) == 3

    def test_default_is_lenient(self):
        # the executor tolerates ungrouped output columns (first-value
        # semantics) that S008 rejects, so validation must stay opt-in
        database = university_database()
        sql = "SELECT Sid, COUNT(Code) AS n FROM Enrol GROUP BY Code"
        assert len(execute_sql(database, sql).rows) == 3
        with pytest.raises(SqlExecutionError) as excinfo:
            execute_sql(database, sql, validate=True)
        assert "S008" in str(excinfo.value)
