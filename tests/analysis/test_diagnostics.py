"""The shared diagnostic model: severities, reports, code catalog."""

import re

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisReport,
    Diagnostic,
    Severity,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert max([Severity.WARNING, Severity.ERROR]) is Severity.ERROR

    def test_str(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_str_full(self):
        diagnostic = Diagnostic(
            "S001", Severity.ERROR, "unknown table 'X'", "interpretation #1",
            hint="check FROM",
        )
        assert str(diagnostic) == (
            "S001 error: unknown table 'X' [interpretation #1] "
            "(hint: check FROM)"
        )

    def test_str_minimal(self):
        diagnostic = Diagnostic("P002", Severity.WARNING, "disconnected")
        assert str(diagnostic) == "P002 warning: disconnected"

    def test_frozen(self):
        diagnostic = Diagnostic("P001", Severity.ERROR, "x")
        try:
            diagnostic.code = "P002"
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Diagnostic should be immutable")


class TestCodeCatalog:
    def test_code_shape(self):
        for code in CODE_CATALOG:
            assert re.fullmatch(r"[PSRC]\d{3}", code), code

    def test_known_codes_present(self):
        expected = (
            [f"P{i:03d}" for i in range(1, 10)]
            + [f"S{i:03d}" for i in range(1, 17)]
            + ["S020", "S021"]
            + [f"R{i:03d}" for i in range(1, 6)]
            + [f"C{i:03d}" for i in range(1, 9)]
        )
        for code in expected:
            assert code in CODE_CATALOG, code

    def test_descriptions_nonempty(self):
        assert all(CODE_CATALOG.values())


class TestAnalysisReport:
    def _sample(self):
        report = AnalysisReport()
        report.add(Diagnostic("P002", Severity.ERROR, "disconnected"))
        report.add(Diagnostic("P007", Severity.WARNING, "no variant"))
        report.add(Diagnostic("S013", Severity.INFO, "informational"))
        return report

    def test_rollups(self):
        report = self._sample()
        assert len(report) == 3
        assert [d.code for d in report] == ["P002", "P007", "S013"]
        assert [d.code for d in report.errors] == ["P002"]
        assert [d.code for d in report.warnings] == ["P007"]
        assert report.has_errors
        assert report.has_findings
        assert report.worst() is Severity.ERROR

    def test_info_only_is_not_a_finding(self):
        report = AnalysisReport()
        report.add(Diagnostic("S013", Severity.INFO, "note"))
        assert not report.has_findings
        assert not report.has_errors
        assert report.worst() is Severity.INFO

    def test_empty(self):
        report = AnalysisReport()
        assert len(report) == 0
        assert report.worst() is None
        assert report.render() == "no diagnostics"

    def test_codes_and_by_code(self):
        report = self._sample()
        assert report.codes() == ["P002", "P007", "S013"]
        assert len(report.by_code("P007")) == 1
        assert report.by_code("R001") == []

    def test_render_indent(self):
        report = AnalysisReport()
        report.add(Diagnostic("P002", Severity.ERROR, "disconnected"))
        assert report.render(indent="  ") == "  P002 error: disconnected"

    def test_extend(self):
        report = AnalysisReport()
        report.extend(self._sample().diagnostics)
        assert len(report) == 3
