"""Pattern analyzers over a corpus of deliberately broken patterns.

Each corpus case states the exact diagnostic code it must produce; the
clean cases come from the engine's own pipeline and must analyze silently.
"""

from dataclasses import replace

import pytest

from repro.analysis.pattern_analyzers import (
    analyze_interpretation_set,
    analyze_pattern,
    analyze_translation,
)
from repro.datasets import university_database
from repro.engine import KeywordSearchEngine
from repro.orm.classify import RelationType
from repro.patterns.pattern import (
    AggregateAnnotation,
    Condition,
    GroupByAnnotation,
    QueryPattern,
)
from repro.sql.ast import TableRef


@pytest.fixture(scope="module")
def engine():
    return KeywordSearchEngine(university_database())


@pytest.fixture(scope="module")
def graph(engine):
    return engine.graph


def codes(diagnostics):
    return [d.code for d in diagnostics]


def make_node(pattern, orm_node, relation=None, node_type=RelationType.OBJECT):
    return pattern.add_node(orm_node, relation or orm_node, node_type)


class TestAnalyzePattern:
    def test_clean_pipeline_pattern(self, engine, graph):
        for pattern in engine.patterns("COUNT Lecturer GROUPBY Course"):
            assert analyze_pattern(pattern, graph) == []

    def test_p001_empty_pattern(self, graph):
        assert codes(analyze_pattern(QueryPattern(), graph)) == ["P001"]

    def test_p002_disconnected(self, graph):
        pattern = QueryPattern()
        student = make_node(pattern, "Student")
        course = make_node(pattern, "Course")
        student.conditions.append(Condition("Student", "Sname", "Green"))
        course.conditions.append(Condition("Course", "Title", "Logic"))
        assert codes(analyze_pattern(pattern, graph)) == ["P002"]

    def test_p003_unannotated_leaf(self, graph):
        pattern = QueryPattern()
        student = make_node(pattern, "Student")
        enrol = make_node(
            pattern, "Enrol", node_type=RelationType.RELATIONSHIP
        )
        student.conditions.append(Condition("Student", "Sname", "Green"))
        pattern.add_edge(
            student.id, enrol.id, graph.edges_between("Student", "Enrol")[0]
        )
        assert codes(analyze_pattern(pattern, graph)) == ["P003"]

    def test_p004_unknown_orm_node(self, graph):
        pattern = QueryPattern()
        make_node(pattern, "Ghost")
        assert codes(analyze_pattern(pattern, graph)) == ["P004"]

    def test_p004_relation_outside_node(self, graph):
        pattern = QueryPattern()
        node = make_node(pattern, "Course", relation="Student")
        node.conditions.append(Condition("Course", "Title", "Logic"))
        assert codes(analyze_pattern(pattern, graph)) == ["P004"]

    def test_p005_unknown_attribute(self, graph):
        pattern = QueryPattern()
        node = make_node(pattern, "Student")
        node.conditions.append(Condition("Student", "Nope", "Green"))
        assert codes(analyze_pattern(pattern, graph)) == ["P005"]

    def test_p005_foreign_relation_annotation(self, graph):
        pattern = QueryPattern()
        node = make_node(pattern, "Student")
        node.aggregates.append(
            AggregateAnnotation("COUNT", "Course", "Code", "numCode")
        )
        assert codes(analyze_pattern(pattern, graph)) == ["P005"]

    def test_p006_edge_endpoint_mismatch(self, graph):
        pattern = QueryPattern()
        lecturer = make_node(
            pattern, "Lecturer", node_type=RelationType.MIXED
        )
        teach = make_node(
            pattern, "Teach", node_type=RelationType.RELATIONSHIP
        )
        lecturer.aggregates.append(
            AggregateAnnotation("COUNT", "Lecturer", "Lid", "numLid")
        )
        teach.conditions.append(Condition("Teach", "Code", "CS1"))
        # joins the two nodes with an ORM edge of a different node pair
        pattern.add_edge(
            lecturer.id, teach.id, graph.edges_between("Student", "Enrol")[0]
        )
        assert codes(analyze_pattern(pattern, graph)) == ["P006"]

    def test_p008_invalid_aggregate_function(self, graph):
        pattern = QueryPattern()
        node = make_node(pattern, "Student")
        node.aggregates.append(
            AggregateAnnotation("MEDIAN", "Student", "Age", "medAge")
        )
        assert codes(analyze_pattern(pattern, graph)) == ["P008"]

    def test_p008_invalid_outer_chain(self, graph):
        pattern = QueryPattern()
        node = make_node(pattern, "Student")
        node.aggregates.append(
            AggregateAnnotation(
                "COUNT", "Student", "Sid", "numSid", outer_chain=("MODE",)
            )
        )
        assert codes(analyze_pattern(pattern, graph)) == ["P008"]


class TestInterpretationSet:
    def _condition_pattern(self, distinguish):
        pattern = QueryPattern()
        node = pattern.add_node("Student", "Student", RelationType.OBJECT)
        node.conditions.append(
            Condition("Student", "Sname", "Green", distinct_objects=2)
        )
        if distinguish:
            node.groupbys.append(
                GroupByAnnotation(
                    "Student", ("Sid",), from_disambiguation=True
                )
            )
        return pattern

    def test_p007_missing_variant(self):
        diagnostics = analyze_interpretation_set(
            [self._condition_pattern(distinguish=False)]
        )
        assert codes(diagnostics) == ["P007"]
        assert diagnostics[0].severity.name == "WARNING"

    def test_distinguishing_variant_satisfies_p007(self):
        patterns = [
            self._condition_pattern(distinguish=False),
            self._condition_pattern(distinguish=True),
        ]
        assert analyze_interpretation_set(patterns) == []

    def test_single_object_value_needs_no_variant(self):
        pattern = QueryPattern()
        node = pattern.add_node("Student", "Student", RelationType.OBJECT)
        node.conditions.append(
            Condition("Student", "Sname", "Green", distinct_objects=1)
        )
        assert analyze_interpretation_set([pattern]) == []

    def test_engine_pipeline_set_is_clean(self, engine):
        ranked = engine.patterns('COUNT Course "Green"')
        assert analyze_interpretation_set(ranked) == []


class TestAnalyzeTranslation:
    def test_clean_translation(self, engine, graph):
        pattern = engine.patterns("COUNT Lecturer GROUPBY Course")[0]
        parts = engine.translate_parts(pattern)
        assert analyze_translation(pattern, parts.raw, graph) == []

    def test_p009_missing_distinct_projection(self, engine, graph):
        # Teach is 3-ary (Course, Lecturer, Textbook); this query uses two
        # participants, so its alias must be a DISTINCT projection
        pattern = engine.patterns("COUNT Lecturer GROUPBY Course")[0]
        parts = engine.translate_parts(pattern)
        broken = replace(
            parts.raw,
            from_items=tuple(
                TableRef("Teach", item.alias) if item.alias == "T1" else item
                for item in parts.raw.from_items
            ),
        )
        diagnostics = analyze_translation(pattern, broken, graph)
        assert codes(diagnostics) == ["P009"]

    def test_ablation_disables_p009(self, engine, graph):
        pattern = engine.patterns("COUNT Lecturer GROUPBY Course")[0]
        parts = engine.translate_parts(pattern)
        broken = replace(
            parts.raw,
            from_items=tuple(
                TableRef("Teach", item.alias) if item.alias == "T1" else item
                for item in parts.raw.from_items
            ),
        )
        assert analyze_translation(pattern, broken, graph, enabled=False) == []
