"""The static lock-discipline pass (C001–C006) and its lock model."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.concurrency import (
    LockId,
    analyze_concurrency,
    build_lock_model,
)


def _tree(tmp_path, source, name="mod.py", subdir=""):
    """Materialize *source* as a tiny package tree and return its root."""
    root = tmp_path / "repro"
    target = root / subdir if subdir else root
    target.mkdir(parents=True, exist_ok=True)
    (target / name).write_text(textwrap.dedent(source))
    return root


def _analyze(tmp_path, source, **kwargs):
    return analyze_concurrency(root=_tree(tmp_path, source, **kwargs))


class TestLockDiscovery:
    def test_instance_and_class_and_factory_locks(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading
            from dataclasses import dataclass, field

            class A:
                shared = threading.Lock()
                def __init__(self):
                    self._lock = threading.RLock()

            @dataclass
            class B:
                _lock: threading.Lock = field(default_factory=threading.Lock)
            """,
        )
        sites = {str(s.lock): s for s in report.model.lock_sites()}
        assert sites["A.shared"].kind == "Lock"
        assert sites["A._lock"].kind == "RLock"
        assert sites["B._lock"].via_factory
        assert not sites["A._lock"].via_factory

    def test_non_threading_condition_is_not_a_lock(self, tmp_path):
        # patterns/generator.py defines its own Condition dataclass;
        # only the threading.X spelling may count
        report = _analyze(
            tmp_path,
            """
            class Condition:
                pass

            class Holder:
                def __init__(self):
                    self._cond = Condition()
            """,
        )
        assert report.model.lock_sites() == []


class TestC001GuardDiscipline:
    def test_mixed_writes_flagged_at_unguarded_site(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                def bump(self):
                    with self._lock:
                        self.value += 1
                def reset(self):
                    self.value = 0
            """,
        )
        assert [f.code for f in report.findings] == ["C001"]
        assert "Counter.value" in report.findings[0].message
        assert report.findings[0].location.endswith(":12")

    def test_all_guarded_writes_infer_the_guard(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                def bump(self):
                    with self._lock:
                        self.value += 1
            """,
        )
        assert report.ok
        assert report.model.guards[("Counter", "value")] == (
            LockId("Counter", "_lock"),
        )

    def test_fresh_object_writes_are_exempt(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Flight:
                def __init__(self):
                    self.value = None

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                def start(self):
                    flight = Flight()
                    with self._lock:
                        flight.value = 0
                    flight.value = 1  # unpublished: single-owner
                    return flight
            """,
        )
        assert report.ok

    def test_mutator_calls_count_as_writes(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                def wipe(self):
                    self._entries.clear()
            """,
        )
        assert [f.code for f in report.findings] == ["C001"]

    def test_guarded_by_annotation_violation(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class State:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.mode = "idle"  # guarded-by: _lock
                def set_mode(self, mode):
                    self.mode = mode
            """,
        )
        assert [f.code for f in report.findings] == ["C001"]
        assert "declared guarded-by _lock" in report.findings[0].message

    def test_guarded_by_annotation_unknown_lock(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class State:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.mode = "idle"  # guarded-by: _missing
                def set_mode(self, mode):
                    with self._lock:
                        self.mode = mode
            """,
        )
        assert [f.code for f in report.findings] == ["C001"]
        assert "unknown lock" in report.findings[0].message

    def test_held_inheritance_through_helper_chain(self, tmp_path):
        # load -> _ensure -> _store, lock only visible at the top
        report = _analyze(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = None
                def load(self, value):
                    with self._lock:
                        self._ensure(value)
                def _ensure(self, value):
                    self._store(value)
                def _store(self, value):
                    self._data = value
                def read(self):
                    with self._lock:
                        self._data = None
            """,
        )
        assert report.ok
        assert ("Store", "_data") in report.model.guards


class TestC002LockOrder:
    def test_inverted_order_is_a_cycle(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def forward(self):
                    with self._a:
                        with self._b:
                            pass
                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert [f.code for f in report.findings] == ["C002"]
        assert "Pair._a" in report.findings[0].message
        assert "Pair._b" in report.findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                def one(self):
                    with self._a:
                        with self._b:
                            pass
                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
        )
        assert report.ok
        edge = (LockId("Pair", "_a"), LockId("Pair", "_b"))
        assert edge in report.model.order_edges

    def test_edges_through_self_calls(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Nested:
                def __init__(self):
                    self._outer = threading.Lock()
                    self._inner = threading.Lock()
                def entry(self):
                    with self._outer:
                        self.helper()
                def helper(self):
                    with self._inner:
                        pass
            """,
        )
        edge = (LockId("Nested", "_outer"), LockId("Nested", "_inner"))
        assert edge in report.model.order_edges


class TestC003Blocking:
    def test_untimed_queue_get_under_lock(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import queue
            import threading

            class Drain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()
                def take(self):
                    with self._lock:
                        return self._queue.get()
            """,
        )
        assert [f.code for f in report.findings] == ["C003"]

    def test_timed_get_is_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import queue
            import threading

            class Drain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()
                def take(self):
                    with self._lock:
                        return self._queue.get(timeout=0.1)
            """,
        )
        assert report.ok

    def test_pipe_send_under_lock(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Courier:
                def __init__(self, conn):
                    self._lock = threading.Lock()
                    self.conn = conn
                def ship(self, msg):
                    with self._lock:
                        self.conn.send(msg)
            """,
        )
        assert [f.code for f in report.findings] == ["C003"]

    def test_str_join_is_not_blocking(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Formatter:
                def __init__(self):
                    self._lock = threading.Lock()
                def render(self, parts):
                    with self._lock:
                        return ", ".join(parts)
            """,
        )
        assert report.ok


class TestC004ManualAcquire:
    def test_acquire_without_finally(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Leaky:
                def __init__(self):
                    self._lock = threading.Lock()
                def grab(self):
                    self._lock.acquire()
                    return True
            """,
        )
        assert [f.code for f in report.findings] == ["C004"]

    def test_acquire_with_finally_is_clean_and_guards(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Careful:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                def bump(self):
                    acquired = self._lock.acquire(timeout=1.0)
                    try:
                        self.value += 1
                    finally:
                        if acquired:
                            self._lock.release()
                def also(self):
                    with self._lock:
                        self.value += 2
            """,
        )
        assert report.ok
        assert ("Careful", "value") in report.model.guards

    def test_lock_escape_via_return(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Exposer:
                def __init__(self):
                    self._lock = threading.Lock()
                def lock(self):
                    return self._lock
            """,
        )
        assert [f.code for f in report.findings] == ["C004"]
        assert "escapes" in report.findings[0].message


class TestC005ForkSafety:
    def test_import_time_thread(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            _reaper = threading.Thread(target=print, name="x", daemon=True)
            """,
        )
        assert [f.code for f in report.findings] == ["C005"]

    def test_broadcast_without_owner_check(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            class Front:
                def __init__(self, pool):
                    self.pool = pool
                def invalidate(self, name):
                    self.pool.broadcast_clear(name, 1)
            """,
        )
        assert [f.code for f in report.findings] == ["C005"]

    def test_broadcast_with_owner_check_is_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import os

            class Front:
                def __init__(self, pool):
                    self.pool = pool
                    self._owner_pid = os.getpid()
                def invalidate(self, name):
                    if os.getpid() == self._owner_pid:
                        self.pool.broadcast_clear(name, 1)
            """,
        )
        assert report.ok


class TestC006RequestPathWaits:
    def test_untimed_wait_on_service_path(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Pending:
                def __init__(self):
                    self._done = threading.Event()
                def wait(self):
                    self._done.wait()
            """,
            subdir="service",
        )
        assert "C006" in [f.code for f in report.findings]

    def test_timed_wait_is_clean(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Pending:
                def __init__(self):
                    self._done = threading.Event()
                def wait(self, timeout):
                    self._done.wait(timeout)
            """,
            subdir="service",
        )
        assert report.ok

    def test_untimed_wait_off_service_path_not_c006(self, tmp_path):
        report = _analyze(
            tmp_path,
            """
            import threading

            class Pending:
                def __init__(self):
                    self._done = threading.Event()
                def wait(self):
                    self._done.wait()
            """,
        )
        assert "C006" not in [f.code for f in report.findings]


class TestSuppressions:
    SOURCE = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0
            def bump(self):
                with self._lock:
                    self.value += 1
            def reset(self):
                {comment}
                self.value = 0
        """

    def test_justified_suppression_is_honoured(self, tmp_path):
        report = _analyze(
            tmp_path,
            self.SOURCE.format(
                comment="# lock-ok: C001 reset only runs pre-start"
            ),
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].justification == (
            "reset only runs pre-start"
        )

    def test_bare_suppression_keeps_the_finding(self, tmp_path):
        report = _analyze(
            tmp_path, self.SOURCE.format(comment="# lock-ok: C001")
        )
        assert [f.code for f in report.findings] == ["C001"]
        assert "justification" in report.findings[0].message

    def test_wrong_code_does_not_suppress(self, tmp_path):
        report = _analyze(
            tmp_path,
            self.SOURCE.format(comment="# lock-ok: C003 wrong family"),
        )
        assert [f.code for f in report.findings] == ["C001"]

    def test_multiline_comment_block_suppresses(self, tmp_path):
        report = _analyze(
            tmp_path,
            self.SOURCE.format(
                comment=(
                    "# lock-ok: C001 reset only runs before the workers\n"
                    "        # exist, so no concurrent bump is possible"
                )
            ),
        )
        assert report.ok


class TestRealTree:
    """The acceptance gate: the shipped tree itself must be clean."""

    @pytest.fixture(scope="class")
    def report(self):
        return analyze_concurrency()

    def test_tree_is_clean(self, report):
        assert report.findings == [], "\n".join(
            str(f) for f in report.findings
        )

    def test_every_suppression_is_justified(self, report):
        assert report.suppressed, "expected justified suppressions in pool.py"
        for suppressed in report.suppressed:
            assert suppressed.justification.strip()

    def test_known_guards_inferred(self, report):
        guards = report.model.guards
        assert guards[("ResultCache", "_entries")] == (
            LockId("ResultCache", "_lock"),
        )
        assert guards[("CircuitBreaker", "_state")] == (
            LockId("CircuitBreaker", "_lock"),
        )
        assert guards[("QueryService", "_pool")] == (
            LockId("QueryService", "_lifecycle_lock"),
        )
        assert guards[("WorkerPool", "counters")] == (
            LockId("WorkerPool", "_counters_lock"),
        )

    def test_known_order_edge_present(self, report):
        edge = (
            LockId("_Handle", "lock"),
            LockId("WorkerPool", "_counters_lock"),
        )
        assert edge in report.model.order_edges

    def test_engine_factory_lock_marked(self, report):
        sites = {str(s.lock): s for s in report.model.lock_sites()}
        assert sites["Interpretation._execute_lock"].via_factory

    def test_build_lock_model_shortcut(self):
        model = build_lock_model()
        assert ("ResultCache", "_entries") in model.guards
        guarding = model.guarding_locks()
        assert LockId("ResultCache", "_lock") in guarding
