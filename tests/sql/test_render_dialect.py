"""The dialect layer, checked against SQLite's own parser.

``tests/sql/test_render.py`` covers the ANSI renderer's shape; this file
covers what the dialect layer adds — and, crucially, it round-trips the
escaping rules through ``sqlite3`` itself, so "escaped correctly" means
"a real SQL parser reads back the original value", not "matches our own
expectations".
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, strategies as st

from repro.errors import SqlRenderError
from repro.sql.ast import BinaryOp, ColumnRef, Contains, Literal, Select, SelectItem, TableRef
from repro.sql.parser import parse
from repro.sql.render import (
    ANSI_DIALECT,
    SQLITE_DIALECT,
    check_renderable_text,
    dialect_for,
    escape_string,
    quote_identifier,
    render,
)

# Text a SQL string literal can carry: anything except the control
# characters check_renderable_text rejects.
renderable_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters=[chr(c) for c in range(0x20) if chr(c) not in "\n\t\r"]
        + [chr(0x7F)],
    )
)


@pytest.fixture()
def conn():
    connection = sqlite3.connect(":memory:")
    yield connection
    connection.close()


class TestStringEscaping:
    def test_embedded_quotes_are_doubled(self):
        assert escape_string("O'Brien") == "'O''Brien'"

    @given(renderable_text)
    def test_round_trips_through_sqlite_parser(self, value):
        connection = sqlite3.connect(":memory:")
        try:
            got = connection.execute(f"SELECT {escape_string(value)}").fetchone()[0]
        finally:
            connection.close()
        assert got == value

    @pytest.mark.parametrize("bad", ["a\x00b", "x\x1by", "\x7f", "bell\x07"])
    def test_control_characters_rejected(self, bad):
        with pytest.raises(SqlRenderError, match="control character"):
            escape_string(bad)
        with pytest.raises(SqlRenderError):
            check_renderable_text(bad)

    @pytest.mark.parametrize("ok", ["line\nbreak", "tab\there", "cr\rhere"])
    def test_legal_control_characters_survive(self, ok, conn):
        assert conn.execute(f"SELECT {escape_string(ok)}").fetchone()[0] == ok


class TestIdentifierQuoting:
    def test_ansi_quotes_only_our_keywords(self):
        assert quote_identifier("Student", ANSI_DIALECT) == "Student"
        assert quote_identifier("Order", ANSI_DIALECT) == '"Order"'

    def test_sqlite_quotes_everything(self):
        assert quote_identifier("Student", SQLITE_DIALECT) == '"Student"'
        assert quote_identifier("Date", SQLITE_DIALECT) == '"Date"'

    def test_embedded_quote_is_doubled(self):
        assert quote_identifier('we"ird', SQLITE_DIALECT) == '"we""ird"'

    @pytest.mark.parametrize("name", ["Order", "Group", 'col"umn', "from"])
    def test_round_trips_through_sqlite_parser(self, name, conn):
        quoted = quote_identifier(name, SQLITE_DIALECT)
        conn.execute(f"CREATE TABLE {quoted} (x INTEGER)")
        conn.execute(f"INSERT INTO {quoted} VALUES (1)")
        assert conn.execute(f"SELECT x FROM {quoted}").fetchone() == (1,)


class TestLikeEscaping:
    def _contains_sql(self, phrase, dialect):
        select = Select(
            items=(SelectItem(ColumnRef("x")),),
            from_items=(TableRef("t", "t"),),
            where=Contains(ColumnRef("x"), phrase),
        )
        return render(select, dialect)

    def test_ansi_leaves_wildcards_alone(self):
        sql = self._contains_sql("100%", ANSI_DIALECT)
        assert "LIKE '%100%%'" in sql and "ESCAPE" not in sql

    def test_sqlite_escapes_and_declares_escape_char(self):
        sql = self._contains_sql("100%", SQLITE_DIALECT)
        assert "LIKE '%100\\%%' ESCAPE '\\'" in sql

    @pytest.mark.parametrize(
        "phrase,rows,expected",
        [
            ("100%", ["100% done", "100x done"], ["100% done"]),
            ("a_c", ["a_c", "abc"], ["a_c"]),
            ("back\\slash", ["back\\slash", "backslash"], ["back\\slash"]),
        ],
    )
    def test_wildcard_phrases_match_literally_in_sqlite(
        self, phrase, rows, expected, conn
    ):
        conn.execute("CREATE TABLE t (x TEXT)")
        conn.executemany("INSERT INTO t VALUES (?)", [(r,) for r in rows])
        got = [r[0] for r in conn.execute(self._contains_sql(phrase, SQLITE_DIALECT))]
        assert got == expected


class TestDialectRendering:
    def test_boolean_literals(self):
        select = parse("SELECT COUNT(*) FROM t WHERE b = TRUE")
        assert "b = TRUE" in render(select, ANSI_DIALECT)
        assert '"b" = 1' in render(select, SQLITE_DIALECT)

    def test_division_cast_only_on_sqlite(self):
        expr = BinaryOp("/", ColumnRef("a"), Literal(2))
        select = Select(
            items=(SelectItem(expr),), from_items=(TableRef("t", "t"),)
        )
        assert "CAST" not in render(select, ANSI_DIALECT)
        assert 'CAST("a" AS REAL) / 2' in render(select, SQLITE_DIALECT)

    def test_cast_makes_sqlite_divide_truly(self, conn):
        assert conn.execute("SELECT 7 / 2").fetchone() == (3,)  # the trap
        assert conn.execute("SELECT CAST(7 AS REAL) / 2").fetchone() == (3.5,)

    def test_ansi_dialect_is_byte_identical_to_default(self):
        select = parse(
            "SELECT S.Sname, SUM(C.Credit) FROM Student S, Course C "
            "WHERE S.Sname = 'Green' GROUP BY S.Sname"
        )
        assert render(select) == render(select, ANSI_DIALECT)

    def test_dialect_lookup(self):
        assert dialect_for("sqlite") is SQLITE_DIALECT
        assert dialect_for("ansi") is ANSI_DIALECT
        with pytest.raises(SqlRenderError, match="unknown SQL dialect"):
            dialect_for("postgres")
