"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenStream, tokenize


class TestTokenize:
    def test_keywords_uppercased(self):
        tokens = tokenize("select from")
        assert [t.kind for t in tokens[:-1]] == ["keyword", "keyword"]
        assert tokens[0].text == "SELECT"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Student Sname")
        assert tokens[0].text == "Student"
        assert tokens[0].kind == "ident"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].kind == "number" and tokens[0].text == "42"
        assert tokens[1].kind == "number" and tokens[1].text == "3.14"

    def test_qualified_name_not_a_float(self):
        tokens = tokenize("S.Sid")
        assert [t.kind for t in tokens[:-1]] == ["ident", "punct", "ident"]

    def test_string_literal(self):
        tokens = tokenize("'Green'")
        assert tokens[0].kind == "string" and tokens[0].text == "Green"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].text == "O'Brien"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'abc")

    def test_quoted_identifier(self):
        tokens = tokenize('"Order"')
        assert tokens[0].kind == "ident" and tokens[0].text == "Order"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"Order')

    def test_operators(self):
        tokens = tokenize("<= >= <> != = < >")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["<=", ">=", "<>", "<>", "=", "<", ">"]

    def test_punctuation(self):
        tokens = tokenize("(a, b)")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == ["punct", "ident", "punct", "ident", "punct"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT ;")

    def test_eof_token(self):
        assert tokenize("a")[-1].kind == "eof"


class TestTokenStream:
    def test_accept_and_expect(self):
        stream = TokenStream(tokenize("SELECT a"))
        assert stream.accept_keyword("SELECT")
        assert not stream.accept_keyword("FROM")
        assert stream.expect_ident().text == "a"
        assert stream.at_end()

    def test_expect_keyword_error(self):
        stream = TokenStream(tokenize("a"))
        with pytest.raises(SqlSyntaxError):
            stream.expect_keyword("SELECT")

    def test_expect_punct_error(self):
        stream = TokenStream(tokenize("a"))
        with pytest.raises(SqlSyntaxError):
            stream.expect_punct("(")

    def test_peek_does_not_advance(self):
        stream = TokenStream(tokenize("a b"))
        assert stream.peek().text == "b"
        assert stream.current.text == "a"

    def test_advance_stops_at_eof(self):
        stream = TokenStream(tokenize("a"))
        stream.advance()
        stream.advance()
        assert stream.current.kind == "eof"
