"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    FuncCall,
    IsNull,
    Literal,
    Select,
    Star,
    TableRef,
)
from repro.sql.parser import parse


class TestSelectStructure:
    def test_minimal(self):
        select = parse("SELECT a FROM R")
        assert isinstance(select.items[0].expr, ColumnRef)
        assert isinstance(select.from_items[0], TableRef)
        assert select.where is None

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM R").distinct

    def test_alias_with_as(self):
        select = parse("SELECT a AS x FROM R")
        assert select.items[0].alias == "x"

    def test_alias_without_as(self):
        select = parse("SELECT a x FROM R")
        assert select.items[0].alias == "x"

    def test_table_alias(self):
        select = parse("SELECT S.a FROM Student S")
        item = select.from_items[0]
        assert item.table == "Student" and item.alias == "S"

    def test_derived_table(self):
        select = parse("SELECT R.n FROM (SELECT COUNT(*) AS n FROM T) R")
        derived = select.from_items[0]
        assert isinstance(derived, DerivedTable)
        assert derived.alias == "R"
        assert derived.select.items[0].alias == "n"

    def test_group_by_multiple(self):
        select = parse("SELECT a, b FROM R GROUP BY a, b")
        assert len(select.group_by) == 2

    def test_order_by_desc(self):
        select = parse("SELECT a FROM R ORDER BY a DESC")
        assert select.order_by[0].descending

    def test_limit(self):
        assert parse("SELECT a FROM R LIMIT 5").limit == 5

    def test_limit_requires_number(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM R LIMIT x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM R extra stuff ok (")

    def test_quoted_table_name(self):
        select = parse('SELECT a FROM "Order"')
        assert select.from_items[0].table == "Order"


class TestExpressions:
    def test_comparison_operators(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            select = parse(f"SELECT a FROM R WHERE a {op} 1")
            assert select.where.op == op

    def test_and_or_precedence(self):
        select = parse("SELECT a FROM R WHERE a = 1 OR b = 2 AND c = 3")
        assert select.where.op == "OR"
        assert select.where.right.op == "AND"

    def test_parenthesised_or(self):
        select = parse("SELECT a FROM R WHERE (a = 1 OR b = 2) AND c = 3")
        assert select.where.op == "AND"
        assert select.where.left.op == "OR"

    def test_like_becomes_contains(self):
        select = parse("SELECT a FROM R WHERE name LIKE '%green%'")
        assert isinstance(select.where, Contains)
        assert select.where.phrase == "green"

    def test_like_requires_contains_pattern(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM R WHERE name LIKE 'green%'")

    def test_is_null(self):
        select = parse("SELECT a FROM R WHERE a IS NULL")
        assert isinstance(select.where, IsNull) and not select.where.negated

    def test_is_not_null(self):
        select = parse("SELECT a FROM R WHERE a IS NOT NULL")
        assert select.where.negated

    def test_arithmetic_precedence(self):
        select = parse("SELECT a + b * c FROM R")
        expr = select.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_count_star(self):
        expr = parse("SELECT COUNT(*) FROM R").items[0].expr
        assert isinstance(expr, FuncCall)
        assert isinstance(expr.args[0], Star)

    def test_count_distinct(self):
        expr = parse("SELECT COUNT(DISTINCT a) FROM R").items[0].expr
        assert expr.distinct

    def test_aggregate_names_canonicalised(self):
        expr = parse("SELECT count(a) FROM R").items[0].expr
        assert expr.name == "COUNT"

    def test_literals(self):
        select = parse("SELECT 1, 2.5, 'x', NULL, TRUE, FALSE FROM R")
        values = [item.expr.value for item in select.items]
        assert values == [1, 2.5, "x", None, True, False]

    def test_qualified_column(self):
        expr = parse("SELECT S.Sid FROM Student S").items[0].expr
        assert expr.qualifier == "S" and expr.name == "Sid"


class TestAstHelpers:
    def test_where_conjuncts_flattening(self):
        select = parse(
            "SELECT a FROM R WHERE a = 1 AND b = 2 AND c LIKE '%x%'"
        )
        conjuncts = select.where_conjuncts()
        assert len(conjuncts) == 3

    def test_has_aggregates(self):
        assert parse("SELECT COUNT(a) FROM R").has_aggregates()
        assert not parse("SELECT a FROM R").has_aggregates()

    def test_subqueries(self):
        select = parse("SELECT R.a FROM (SELECT a FROM T) R, S")
        assert len(select.subqueries()) == 1
