"""Property-based tests: render -> parse -> render is a fixpoint.

Hypothesis builds random ASTs in the dialect the translators emit; the
round-trip property pins down both the renderer and the parser at once.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.parser import parse
from repro.sql.render import render

_IDENT_START = string.ascii_letters + "_"
_IDENT_REST = string.ascii_letters + string.digits + "_"

identifiers = st.builds(
    lambda first, rest: first + rest,
    st.sampled_from(list(_IDENT_START)),
    st.text(alphabet=_IDENT_REST, min_size=0, max_size=8),
)

aliases = identifiers

columns = st.builds(
    ColumnRef,
    name=identifiers,
    qualifier=st.one_of(st.none(), identifiers),
)

literals = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(Literal),
    st.booleans().map(Literal),
    st.just(Literal(None)),
    st.text(
        alphabet=string.ascii_letters + string.digits + " '._-", max_size=12
    ).map(Literal),
)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])

scalar_exprs = st.one_of(columns, literals)

predicates = st.one_of(
    st.builds(BinaryOp, comparison_ops, columns, scalar_exprs),
    st.builds(
        Contains,
        columns,
        st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=10),
    ),
    st.builds(IsNull, columns, st.booleans()),
)

aggregates = st.builds(
    FuncCall,
    st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"]),
    st.tuples(columns),
    st.booleans(),
)

select_items = st.builds(
    SelectItem,
    st.one_of(columns, aggregates, st.just(FuncCall("COUNT", (Star(),)))),
    st.one_of(st.none(), identifiers),
)


def _conjunction(preds):
    expr = None
    for pred in preds:
        expr = pred if expr is None else BinaryOp("AND", expr, pred)
    return expr


where_clauses = st.lists(predicates, max_size=3).map(_conjunction)


@st.composite
def selects(draw, depth: int = 1) -> Select:
    items = tuple(draw(st.lists(select_items, min_size=1, max_size=3)))
    from_count = draw(st.integers(min_value=1, max_value=2))
    from_items = []
    used_aliases = set()
    for index in range(from_count):
        alias = draw(aliases.filter(lambda a: a not in used_aliases))
        used_aliases.add(alias)
        if depth > 0 and draw(st.booleans()):
            from_items.append(DerivedTable(draw(selects(depth=depth - 1)), alias))
        else:
            from_items.append(TableRef(draw(identifiers), alias))
    where = draw(where_clauses)
    group_by = tuple(draw(st.lists(columns, max_size=2)))
    order_by = tuple(
        draw(st.lists(st.builds(OrderItem, columns, st.booleans()), max_size=1))
    )
    limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=99)))
    distinct = draw(st.booleans())
    return Select(
        items=items,
        from_items=tuple(from_items),
        where=where,
        group_by=group_by,
        order_by=order_by,
        limit=limit,
        distinct=distinct,
    )


@settings(max_examples=150, deadline=None)
@given(selects(depth=2))
def test_render_parse_roundtrip_is_fixpoint(select: Select) -> None:
    text = render(select)
    reparsed = parse(text)
    assert render(reparsed) == text


@settings(max_examples=150, deadline=None)
@given(selects(depth=1))
def test_parse_of_render_preserves_structure_counts(select: Select) -> None:
    reparsed = parse(render(select))
    assert len(reparsed.items) == len(select.items)
    assert len(reparsed.from_items) == len(select.from_items)
    assert len(reparsed.group_by) == len(select.group_by)
    assert reparsed.distinct == select.distinct
    assert reparsed.limit == select.limit
