"""Tests for the static SQL validator, including the pipeline invariant
that all generated SQL validates against its schema."""

import pytest

from repro.sql.parser import parse
from repro.sql.validate import is_valid, validate_select


def issues_of(university_db, sql: str):
    return [str(issue) for issue in validate_select(parse(sql), university_db.schema)]


class TestFromClause:
    def test_unknown_table(self, university_db):
        issues = issues_of(university_db, "SELECT x FROM Nope")
        assert any("unknown table" in issue for issue in issues)

    def test_duplicate_alias(self, university_db):
        issues = issues_of(university_db, "SELECT S.Sid FROM Student S, Course S")
        assert any("duplicate alias" in issue for issue in issues)

    def test_derived_table_scope(self, university_db):
        assert is_valid(
            parse("SELECT R.n FROM (SELECT COUNT(*) AS n FROM Student) R"),
            university_db.schema,
        )

    def test_nested_issue_carries_path(self, university_db):
        issues = issues_of(
            university_db, "SELECT R.n FROM (SELECT Nope AS n FROM Student) R"
        )
        assert any("subquery R" in issue for issue in issues)


class TestColumnResolution:
    def test_unknown_column(self, university_db):
        issues = issues_of(university_db, "SELECT Nope FROM Student")
        assert any("unknown column" in issue for issue in issues)

    def test_unknown_alias(self, university_db):
        issues = issues_of(university_db, "SELECT X.Sid FROM Student S")
        assert any("unknown alias" in issue for issue in issues)

    def test_ambiguous_column(self, university_db):
        issues = issues_of(university_db, "SELECT Sid FROM Student S, Enrol E")
        assert any("ambiguous" in issue for issue in issues)

    def test_qualified_disambiguation_ok(self, university_db):
        assert is_valid(
            parse("SELECT S.Sid FROM Student S, Enrol E WHERE E.Sid = S.Sid"),
            university_db.schema,
        )

    def test_derived_output_names_visible(self, university_db):
        issues = issues_of(
            university_db,
            "SELECT R.total FROM (SELECT SUM(Credit) AS total FROM Course) R",
        )
        assert issues == []


class TestAggregateDiscipline:
    def test_stray_column_outside_group_by(self, university_db):
        issues = issues_of(
            university_db, "SELECT Sname, COUNT(Sid) FROM Student"
        )
        assert any("not in GROUP BY" in issue for issue in issues)

    def test_grouped_column_accepted(self, university_db):
        assert is_valid(
            parse("SELECT Sname, COUNT(Sid) FROM Student GROUP BY Sname"),
            university_db.schema,
        )

    def test_aggregate_in_where_rejected(self, university_db):
        issues = issues_of(
            university_db, "SELECT Sid FROM Student WHERE COUNT(Sid) > 1"
        )
        assert any("WHERE" in issue for issue in issues)

    def test_nested_aggregate_rejected(self, university_db):
        from repro.sql.ast import ColumnRef, FuncCall, Select, SelectItem, TableRef, agg

        inner = agg("COUNT", ColumnRef("Sid"))
        outer = FuncCall("MAX", (inner,))
        select = Select(
            items=(SelectItem(outer),), from_items=(TableRef.of("Student"),)
        )
        issues = validate_select(select, university_db.schema)
        assert any("nested aggregate" in str(issue) for issue in issues)

    def test_count_star_ok(self, university_db):
        assert is_valid(
            parse("SELECT COUNT(*) FROM Student"), university_db.schema
        )

    def test_bare_star_rejected(self, university_db):
        from repro.sql.ast import Select, SelectItem, Star, TableRef

        select = Select(
            items=(SelectItem(Star()),), from_items=(TableRef.of("Student"),)
        )
        issues = validate_select(select, university_db.schema)
        assert any("COUNT(*)" in str(issue) for issue in issues)

    def test_order_by_output_name_ok(self, university_db):
        assert is_valid(
            parse(
                "SELECT Sname, COUNT(Sid) AS n FROM Student "
                "GROUP BY Sname ORDER BY n DESC"
            ),
            university_db.schema,
        )


class TestPipelineInvariant:
    """Every SQL statement either engine generates must validate."""

    QUERIES = [
        "Green SUM Credit",
        "Java SUM Price",
        "COUNT Lecturer GROUPBY Course",
        "Green George COUNT Code",
        "AVG COUNT Lecturer GROUPBY Course",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_semantic_sql_validates(self, university_engine, university_db, text):
        for interpretation in university_engine.compile(text):
            issues = validate_select(interpretation.select, university_db.schema)
            assert issues == [], interpretation.sql_compact

    @pytest.mark.parametrize("text", QUERIES)
    def test_sqak_sql_validates(self, university_sqak, university_db, text):
        statement = university_sqak.compile(text)
        issues = validate_select(statement.select, university_db.schema)
        assert issues == [], statement.sql_compact

    def test_unnormalized_sql_validates(self, enrolment_engine, enrolment_db):
        for interpretation in enrolment_engine.compile("Green George COUNT Code"):
            issues = validate_select(
                interpretation.select, enrolment_db.schema
            )
            assert issues == [], interpretation.sql_compact

    def test_tpch_sql_validates(self, tpch_engine, tpch_db):
        from repro.experiments import TPCH_QUERIES

        for spec in TPCH_QUERIES:
            for interpretation in tpch_engine.compile(spec.text):
                issues = validate_select(
                    interpretation.select, tpch_db.schema
                )
                assert issues == [], (spec.qid, interpretation.sql_compact)
