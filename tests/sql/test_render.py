"""Unit tests for the SQL renderer."""

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    agg,
    column,
    count_star,
    eq,
)
from repro.sql.render import escape_string, quote_identifier, render, render_pretty, render_expr


class TestRenderExpr:
    def test_column(self):
        assert render_expr(column("Sid", "S")) == "S.Sid"

    def test_literal_string_escaped(self):
        assert render_expr(Literal("O'Brien")) == "'O''Brien'"

    def test_literal_null_and_bools(self):
        assert render_expr(Literal(None)) == "NULL"
        assert render_expr(Literal(True)) == "TRUE"

    def test_contains_renders_like(self):
        assert (
            render_expr(Contains(column("Sname", "S"), "Green"))
            == "S.Sname LIKE '%Green%'"
        )

    def test_aggregate(self):
        assert render_expr(agg("COUNT", column("Sid"))) == "COUNT(Sid)"
        assert render_expr(count_star()) == "COUNT(*)"
        assert (
            render_expr(agg("COUNT", column("a"), distinct=True))
            == "COUNT(DISTINCT a)"
        )

    def test_is_null(self):
        assert render_expr(IsNull(column("a"))) == "a IS NULL"
        assert render_expr(IsNull(column("a"), True)) == "a IS NOT NULL"

    def test_precedence_parentheses(self):
        # (a OR b) AND c needs parens on the OR side
        a = eq(column("a"), Literal(1))
        b = eq(column("b"), Literal(2))
        c = eq(column("c"), Literal(3))
        expr = BinaryOp("AND", BinaryOp("OR", a, b), c)
        assert render_expr(expr) == "(a = 1 OR b = 2) AND c = 3"

    def test_arithmetic_no_spurious_parens(self):
        expr = BinaryOp("+", column("a"), BinaryOp("*", column("b"), column("c")))
        assert render_expr(expr) == "a + b * c"


class TestQuoting:
    def test_keyword_table_name_quoted(self):
        assert quote_identifier("Order") == '"Order"'
        assert quote_identifier("Student") == "Student"

    def test_render_quotes_order_table(self):
        select = Select(
            items=(SelectItem(column("orderkey", "O")),),
            from_items=(TableRef("Order", "O"),),
        )
        assert render(select) == 'SELECT O.orderkey FROM "Order" O'

    def test_escape_string(self):
        assert escape_string("a'b") == "'a''b'"


class TestRenderSelect:
    def test_full_clause_order(self):
        select = Select(
            items=(SelectItem(agg("COUNT", column("Sid", "S")), alias="n"),),
            from_items=(TableRef("Student", "S"),),
            where=Contains(column("Sname", "S"), "Green"),
            group_by=(column("Sname", "S"),),
            order_by=(OrderItem(column("n"), descending=True),),
            limit=3,
        )
        assert render(select) == (
            "SELECT COUNT(S.Sid) AS n FROM Student S "
            "WHERE S.Sname LIKE '%Green%' GROUP BY S.Sname "
            "ORDER BY n DESC LIMIT 3"
        )

    def test_derived_table_compact(self):
        inner = Select(
            items=(SelectItem(column("Code")), SelectItem(column("Bid"))),
            from_items=(TableRef.of("Teach"),),
            distinct=True,
        )
        outer = Select(
            items=(SelectItem(count_star(), alias="n"),),
            from_items=(DerivedTable(inner, "T"),),
        )
        assert render(outer) == (
            "SELECT COUNT(*) AS n FROM (SELECT DISTINCT Code, Bid FROM Teach) T"
        )

    def test_pretty_renders_multiline(self):
        inner = Select(
            items=(SelectItem(column("a")),), from_items=(TableRef.of("T"),)
        )
        outer = Select(
            items=(SelectItem(count_star()),),
            from_items=(DerivedTable(inner, "R"),),
        )
        pretty = render_pretty(outer)
        assert "\n" in pretty
        assert "SELECT a" in pretty
