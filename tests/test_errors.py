"""The exception hierarchy: everything derives from ReproError so callers
can catch one base class, and sub-hierarchies group sensibly."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SchemaError,
    errors.IntegrityError,
    errors.DuplicateKeyError,
    errors.ForeignKeyError,
    errors.TypeMismatchError,
    errors.UnknownTableError,
    errors.UnknownColumnError,
    errors.SqlError,
    errors.SqlSyntaxError,
    errors.SqlExecutionError,
    errors.KeywordQueryError,
    errors.InvalidQueryError,
    errors.NoMatchError,
    errors.NoPatternError,
    errors.UnsupportedQueryError,
    errors.NormalizationError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS, ids=lambda e: e.__name__)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_sql_sub_hierarchy():
    assert issubclass(errors.SqlSyntaxError, errors.SqlError)
    assert issubclass(errors.SqlExecutionError, errors.SqlError)


def test_integrity_sub_hierarchy():
    assert issubclass(errors.DuplicateKeyError, errors.IntegrityError)
    assert issubclass(errors.ForeignKeyError, errors.IntegrityError)
    assert issubclass(errors.TypeMismatchError, errors.IntegrityError)


def test_keyword_sub_hierarchy():
    for exc in (
        errors.InvalidQueryError,
        errors.NoMatchError,
        errors.NoPatternError,
        errors.UnsupportedQueryError,
    ):
        assert issubclass(exc, errors.KeywordQueryError)


def test_catching_base_class_covers_pipeline_failures(university_engine):
    with pytest.raises(errors.ReproError):
        university_engine.search("zzznothing COUNT Code")
    with pytest.raises(errors.ReproError):
        university_engine.search("Green SUM")
