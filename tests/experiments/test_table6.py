"""Table 6 reproduction: answers of the normalized ACMDL queries A1-A8."""

import pytest

from repro.experiments import ACMDL_QUERIES, run_suite


@pytest.fixture(scope="module")
def outcomes(acmdl_engine, acmdl_sqak):
    results = run_suite(acmdl_engine, acmdl_sqak, ACMDL_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


class TestAgreementQueries:
    def test_a1_both_agree(self, outcomes):
        outcome = outcomes["A1"]
        assert outcome.semantic_answers() == outcome.sqak_answers()

    def test_a2_both_return_one_count_per_sigmod_proceeding(self, outcomes):
        outcome = outcomes["A2"]
        ours = sorted(row[-1] for row in outcome.semantic_answers())
        sqak = sorted(row[-1] for row in outcome.sqak_answers())
        assert ours == sqak
        assert len(ours) == 8  # one per SIGMOD proceeding in the dataset


class TestDistinguishingQueries:
    def test_a3_one_answer_per_smith_editor(self, outcomes):
        outcome = outcomes["A3"]
        assert len(outcome.semantic_answers()) == 7
        assert len(outcome.sqak_answers()) == 1

    def test_a3_sqak_mixes_editors(self, outcomes):
        outcome = outcomes["A3"]
        # SQAK's single number is at least each per-editor count
        sqak_value = outcome.sqak_answers()[0][-1]
        assert all(
            sqak_value >= row[-1] for row in outcome.semantic_answers()
        )

    def test_a4_one_date_per_gill_author(self, outcomes):
        outcome = outcomes["A4"]
        assert len(outcome.semantic_answers()) == 6
        assert len(outcome.sqak_answers()) == 1
        # SQAK's single date is the max of our per-author dates
        ours_max = max(row[-1] for row in outcome.semantic_answers())
        assert outcome.sqak_answers()[0][-1] == ours_max

    def test_a5_exact_paper_shape(self, outcomes):
        outcome = outcomes["A5"]
        ours = sorted(row[-1] for row in outcome.semantic_answers())
        assert ours == [2, 2, 2, 2, 2, 6]  # the paper's exact multiset
        assert len(outcome.sqak_answers()) == 4  # four distinct titles


class TestNotSupportedQueries:
    def test_a6_sqak_na_ours_one_per_ieee_publisher(self, outcomes):
        outcome = outcomes["A6"]
        assert outcome.sqak_is_na
        assert len(outcome.semantic_answers()) == 4

    def test_a7_sqak_na_ours_pairs(self, outcomes):
        outcome = outcomes["A7"]
        assert outcome.sqak_is_na
        assert len(outcome.semantic_answers()) >= 1
        assert all(row[-1] >= 1 for row in outcome.semantic_answers())

    def test_a8_sqak_na_ours_two_editor_pairs(self, outcomes):
        outcome = outcomes["A8"]
        assert outcome.sqak_is_na
        assert len(outcome.semantic_answers()) == 2
        assert [row[-1] for row in outcome.semantic_answers()] == [1, 1]
