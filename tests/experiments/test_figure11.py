"""Figure 11 reproduction: SQL-generation times of both systems.

The paper's claim is qualitative: both systems generate SQL in
milliseconds, the semantic approach being slightly slower because it
analyses interpretations and duplicates.  We assert the millisecond scale
and that the reporting path renders the series.
"""

import pytest

from repro.experiments import (
    ACMDL_QUERIES,
    TPCH_QUERIES,
    format_timing_series,
    run_suite,
)


@pytest.fixture(scope="module")
def tpch_outcomes(tpch_engine, tpch_sqak):
    return run_suite(tpch_engine, tpch_sqak, TPCH_QUERIES)


@pytest.fixture(scope="module")
def acmdl_outcomes(acmdl_engine, acmdl_sqak):
    return run_suite(acmdl_engine, acmdl_sqak, ACMDL_QUERIES)


class TestGenerationTimes:
    def test_tpch_compile_times_are_millisecond_scale(self, tpch_outcomes):
        for outcome in tpch_outcomes:
            assert outcome.semantic_compile_ms < 2000.0

    def test_acmdl_compile_times_are_millisecond_scale(self, acmdl_outcomes):
        for outcome in acmdl_outcomes:
            assert outcome.semantic_compile_ms < 2000.0

    def test_sqak_compile_times_recorded_when_supported(self, tpch_outcomes):
        for outcome in tpch_outcomes:
            if not outcome.sqak_is_na:
                assert outcome.sqak_compile_ms is not None
                assert outcome.sqak_compile_ms < 2000.0

    def test_timing_series_renders(self, tpch_outcomes, acmdl_outcomes):
        text_a = format_timing_series("Figure 11(a) TPCH", tpch_outcomes)
        text_b = format_timing_series("Figure 11(b) ACMDL", acmdl_outcomes)
        assert "T1" in text_a and "A1" in text_b
        assert "N.A." in text_a  # T7/T8 have no SQAK time
