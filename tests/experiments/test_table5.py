"""Table 5 reproduction: answers of the normalized TPC-H queries T1-T8.

Absolute values are dataset-dependent; the asserted properties are the
paper's qualitative claims — who answers, how many answers, and in which
direction SQAK is wrong.
"""

import pytest

from repro.experiments import TPCH_QUERIES, run_suite, spec_by_id


@pytest.fixture(scope="module")
def outcomes(tpch_engine, tpch_sqak):
    results = run_suite(tpch_engine, tpch_sqak, TPCH_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


class TestAgreementQueries:
    def test_t1_both_agree(self, outcomes):
        outcome = outcomes["T1"]
        assert not outcome.sqak_is_na
        assert outcome.semantic_answers() == outcome.sqak_answers()

    def test_t2_both_agree(self, outcomes):
        outcome = outcomes["T2"]
        assert outcome.semantic_answers()[0][-1] == outcome.sqak_answers()[0][-1]

    def test_t2_is_a_single_maximum(self, outcomes):
        assert len(outcomes["T2"].semantic_answers()) == 1


class TestDistinguishingQueries:
    def test_t3_one_answer_per_royal_olive_part(self, outcomes):
        outcome = outcomes["T3"]
        assert len(outcome.semantic_answers()) == 8
        assert len(outcome.sqak_answers()) == 1

    def test_t3_sqak_mixes_the_parts(self, outcomes):
        outcome = outcomes["T3"]
        total_ours = sum(row[-1] for row in outcome.semantic_answers())
        sqak_value = outcome.sqak_answers()[0][-1]
        # SQAK's single count covers at least all per-part orders
        assert sqak_value >= total_ours - len(outcome.semantic_answers())

    def test_t4_one_answer_per_yellow_tomato_part(self, outcomes):
        outcome = outcomes["T4"]
        assert len(outcome.semantic_answers()) == 13
        assert len(outcome.sqak_answers()) == 1

    def test_t4_sqak_returns_global_maximum(self, outcomes):
        outcome = outcomes["T4"]
        ours_max = max(row[-1] for row in outcome.semantic_answers())
        assert outcome.sqak_answers()[0][-1] == ours_max


class TestDuplicateDetectionQueries:
    def test_t5_exact_paper_numbers(self, outcomes):
        outcome = outcomes["T5"]
        assert outcome.semantic_answers() == [(4,)]
        assert outcome.sqak_answers() == [("Indian black chocolate", 22)]

    def test_t6_sqak_overcounts_every_supplier(self, outcomes):
        outcome = outcomes["T6"]
        ours = dict(
            (row[0], row[-1]) for row in outcome.semantic_result.rows
        )
        sqak_rows = outcome.sqak_result.rows
        sqak = dict((row[0], row[-1]) for row in sqak_rows)
        assert set(ours) == set(sqak)
        assert all(sqak[key] >= ours[key] for key in ours)
        assert any(sqak[key] > ours[key] for key in ours)


class TestNotSupportedQueries:
    def test_t7_sqak_na_ours_five_segments(self, outcomes):
        outcome = outcomes["T7"]
        assert outcome.sqak_is_na
        assert len(outcome.semantic_answers()) == 5
        # two aggregates per answer row (count, sum) plus the group key
        assert len(outcome.semantic_result.columns) == 3

    def test_t8_sqak_na_ours_three_pairs(self, outcomes):
        outcome = outcomes["T8"]
        assert outcome.sqak_is_na
        assert len(outcome.semantic_answers()) == 3
        assert all(row[-1] >= 1 for row in outcome.semantic_answers())


class TestReporting:
    def test_answer_table_renders(self, outcomes):
        from repro.experiments import format_answer_table

        text = format_answer_table("Table 5", list(outcomes.values()))
        assert "T5" in text and "N.A." in text

    def test_summaries(self, outcomes):
        assert outcomes["T5"].summarize("semantic") == "1 answer: 4"
        assert outcomes["T7"].summarize("sqak") == "N.A."
        assert outcomes["T3"].summarize("semantic").startswith("8 answers")

    def test_compile_times_recorded(self, outcomes):
        for outcome in outcomes.values():
            assert outcome.semantic_compile_ms > 0
            if not outcome.sqak_is_na:
                assert outcome.sqak_compile_ms > 0
