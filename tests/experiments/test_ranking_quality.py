"""Tests for the ranking-quality extension experiment."""

import pytest

from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES
from repro.experiments.ranking_quality import (
    RankingOutcome,
    intended_rank,
    ranking_report,
)


class TestIntendedRank:
    def test_every_tpch_query_found_in_top_k(self, tpch_engine):
        for spec in TPCH_QUERIES:
            outcome = intended_rank(tpch_engine, spec)
            assert outcome.intended_rank is not None, spec.qid

    def test_every_acmdl_query_found_in_top_k(self, acmdl_engine):
        for spec in ACMDL_QUERIES:
            outcome = intended_rank(acmdl_engine, spec)
            assert outcome.intended_rank is not None, spec.qid

    def test_unnormalized_engines_find_intended_interpretations(
        self, tpch_unnorm_engine, acmdl_unnorm_engine
    ):
        for spec in TPCH_QUERIES:
            assert (
                intended_rank(tpch_unnorm_engine, spec).intended_rank
                is not None
            ), spec.qid
        for spec in ACMDL_QUERIES:
            assert (
                intended_rank(acmdl_unnorm_engine, spec).intended_rank
                is not None
            ), spec.qid


class TestReport:
    def test_report_aggregates(self, tpch_engine):
        report = ranking_report(tpch_engine, TPCH_QUERIES)
        assert report.hits_at_k == len(TPCH_QUERIES)
        assert 0 < report.mean_reciprocal_rank <= 1.0
        assert report.hits_at_1 <= report.hits_at_3 <= report.hits_at_k

    def test_most_queries_hit_within_top_3(self, tpch_engine, acmdl_engine):
        # the paper's top-k translation is only useful if the intended
        # reading sits near the top; require at least 3/4 within rank 3
        for engine, specs in (
            (tpch_engine, TPCH_QUERIES),
            (acmdl_engine, ACMDL_QUERIES),
        ):
            report = ranking_report(engine, specs)
            assert report.hits_at_3 * 4 >= len(specs) * 3

    def test_format_table(self, tpch_engine):
        report = ranking_report(tpch_engine, TPCH_QUERIES)
        text = report.format_table()
        assert "hit@1" in text and "MRR" in text
        assert "T5" in text
