"""The evaluation shapes must hold at other generator scales and seeds —
they are planted structurally, not tuned to one dataset instance."""

import pytest

from repro.baselines import SqakEngine
from repro.datasets import AcmdlConfig, TpchConfig, generate_acmdl, generate_tpch
from repro.engine import KeywordSearchEngine
from repro.experiments import TPCH_QUERIES, ACMDL_QUERIES, run_suite


@pytest.fixture(scope="module")
def small_tpch_outcomes():
    config = TpchConfig(
        seed=1234, parts=100, suppliers=40, customers=80, orders=400
    )
    db = generate_tpch(config)
    results = run_suite(KeywordSearchEngine(db), SqakEngine(db), TPCH_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


@pytest.fixture(scope="module")
def small_acmdl_outcomes():
    config = AcmdlConfig(seed=99, authors=80, editors=40, papers=200)
    db = generate_acmdl(config)
    results = run_suite(KeywordSearchEngine(db), SqakEngine(db), ACMDL_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


class TestTpchShapesAtOtherScale:
    def test_agreement_rows(self, small_tpch_outcomes):
        for qid in ("T1", "T2"):
            outcome = small_tpch_outcomes[qid]
            assert outcome.semantic_answers()[0][-1] == outcome.sqak_answers()[0][-1]

    def test_distinguishing_rows(self, small_tpch_outcomes):
        assert len(small_tpch_outcomes["T3"].semantic_answers()) == 8
        assert len(small_tpch_outcomes["T4"].semantic_answers()) == 13
        assert len(small_tpch_outcomes["T3"].sqak_answers()) == 1

    def test_duplicate_detection_rows(self, small_tpch_outcomes):
        assert small_tpch_outcomes["T5"].semantic_answers() == [(4,)]
        assert small_tpch_outcomes["T5"].sqak_answers()[0][-1] == 22

    def test_na_rows(self, small_tpch_outcomes):
        assert small_tpch_outcomes["T7"].sqak_is_na
        assert small_tpch_outcomes["T8"].sqak_is_na
        assert len(small_tpch_outcomes["T8"].semantic_answers()) == 3


class TestAcmdlShapesAtOtherScale:
    def test_agreement_rows(self, small_acmdl_outcomes):
        outcome = small_acmdl_outcomes["A1"]
        assert outcome.semantic_answers() == outcome.sqak_answers()

    def test_distinguishing_rows(self, small_acmdl_outcomes):
        assert len(small_acmdl_outcomes["A3"].semantic_answers()) == 7
        assert len(small_acmdl_outcomes["A3"].sqak_answers()) == 1
        assert len(small_acmdl_outcomes["A4"].semantic_answers()) == 6

    def test_a5_multiset_invariant(self, small_acmdl_outcomes):
        ours = sorted(
            row[-1] for row in small_acmdl_outcomes["A5"].semantic_answers()
        )
        assert ours == [2, 2, 2, 2, 2, 6]
        assert len(small_acmdl_outcomes["A5"].sqak_answers()) == 4

    def test_na_rows(self, small_acmdl_outcomes):
        for qid in ("A6", "A7", "A8"):
            assert small_acmdl_outcomes[qid].sqak_is_na, qid
        assert len(small_acmdl_outcomes["A8"].semantic_answers()) == 2
