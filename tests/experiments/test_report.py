"""Smoke test for the one-call full reproduction report."""

import io

from repro.experiments.report import full_report


def test_full_report_contains_all_tables_and_figures():
    out = io.StringIO()
    full_report(out)
    text = out.getvalue()
    for marker in (
        "Table 5",
        "Table 6",
        "Table 8",
        "Table 9",
        "Figure 11(a)",
        "Figure 11(b)",
    ):
        assert marker in text, marker
    # all sixteen query ids appear
    for qid in [f"T{i}" for i in range(1, 9)] + [f"A{i}" for i in range(1, 9)]:
        assert qid in text, qid
    # the headline disagreements are present
    assert "N.A." in text
