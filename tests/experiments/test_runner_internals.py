"""Unit tests for interpretation selection and outcome reporting."""

import pytest

from repro.experiments import pick_interpretation, spec_by_id
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import _fmt_value, _pattern_satisfies


class TestSpecLookup:
    def test_spec_by_id(self):
        assert spec_by_id("T5").text == 'COUNT supplier "Indian black chocolate"'
        assert spec_by_id("A8").sqak_na

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            spec_by_id("Z9")


class TestPatternSatisfies:
    def test_distinguish_requires_all_multi_conditions_marked(
        self, university_engine
    ):
        spec = QuerySpec("X", "Green SUM Credit", "", distinguish=True)
        patterns = university_engine.patterns("Green SUM Credit")
        marked = [p for p in patterns if _pattern_satisfies(p, spec)]
        assert marked and all(p.distinguishes for p in marked)

    def test_no_distinguish_rejects_marked_patterns(self, university_engine):
        spec = QuerySpec("X", "Green SUM Credit", "", distinguish=False)
        patterns = university_engine.patterns("Green SUM Credit")
        accepted = [p for p in patterns if _pattern_satisfies(p, spec)]
        assert accepted and all(not p.distinguishes for p in accepted)

    def test_require_aggs_pins_node_and_function(self, tpch_engine):
        patterns = tpch_engine.patterns("MAX COUNT order GROUPBY nation")
        pinned = QuerySpec(
            "X", "", "", require_aggs=("COUNT@Order",)
        )
        accepted = [p for p in patterns if _pattern_satisfies(p, pinned)]
        assert accepted
        for pattern in accepted:
            assert any(
                node.orm_node.startswith("Order") and node.aggregates
                for node in pattern.nodes
            )

    def test_require_aggs_with_attribute(self, tpch_engine):
        patterns = tpch_engine.patterns('supplier MAX acctbal "yellow tomato"')
        spec = QuerySpec(
            "X", "", "", distinguish=True, require_aggs=("MAX(acctbal)@Supplier",)
        )
        accepted = [p for p in patterns if _pattern_satisfies(p, spec)]
        assert accepted

    def test_bad_requirement_raises(self, university_engine):
        spec = QuerySpec("X", "", "", require_aggs=("garbage",))
        pattern = next(
            p
            for p in university_engine.patterns("Green SUM Credit")
            if not p.distinguishes
        )
        with pytest.raises(ValueError):
            _pattern_satisfies(pattern, spec)


class TestPickInterpretation:
    def test_falls_back_to_top_ranked(self, university_engine):
        # a requirement nothing satisfies falls back to rank 1
        spec = QuerySpec(
            "X", "Green SUM Credit", "", require_aggs=("MIN(Age)@Faculty",)
        )
        interpretations = university_engine.compile("Green SUM Credit")
        assert pick_interpretation(interpretations, spec) is interpretations[0]

    def test_t2_picker_selects_order_count(self, tpch_engine):
        spec = spec_by_id("T2")
        chosen = pick_interpretation(tpch_engine.compile(spec.text), spec)
        assert any(
            node.orm_node == "Order" and node.aggregates
            for node in chosen.pattern.nodes
        )


class TestFormatting:
    def test_fmt_value_floats(self):
        assert _fmt_value(2.50) == "2.5"
        assert _fmt_value(3.0) == "3"
        assert _fmt_value(123456.0) == "1.23e+05"

    def test_fmt_value_non_float(self):
        assert _fmt_value(7) == "7"
        assert _fmt_value("x") == "x"
