"""Table 8 reproduction: the unnormalized TPC-H runs.

Two claims: (1) our engine's answers are unchanged from Table 5; (2) SQAK
now gets T1/T2 wrong too (duplicated order information), while keeping its
Table 5 mistakes elsewhere.
"""

import pytest

from repro.experiments import TPCH_QUERIES, run_suite


@pytest.fixture(scope="module")
def outcomes(tpch_unnorm_engine, tpch_unnorm_sqak):
    results = run_suite(tpch_unnorm_engine, tpch_unnorm_sqak, TPCH_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


@pytest.fixture(scope="module")
def normalized_outcomes(tpch_engine, tpch_sqak):
    results = run_suite(tpch_engine, tpch_sqak, TPCH_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


class TestSqakBreaksOnDenormalizedData:
    def test_t1_average_inflated_by_duplicate_orders(
        self, outcomes, normalized_outcomes
    ):
        wrong = outcomes["T1"].sqak_answers()[0][-1]
        true_value = normalized_outcomes["T1"].semantic_answers()[0][-1]
        assert wrong > true_value * 1.02  # visibly inflated

    def test_t2_max_count_inflated(self, outcomes, normalized_outcomes):
        wrong = outcomes["T2"].sqak_answers()[0][-1]
        true_value = normalized_outcomes["T2"].semantic_answers()[0][-1]
        assert wrong > true_value

    def test_t5_still_wrong_for_the_table5_reason(self, outcomes):
        assert outcomes["T5"].sqak_answers()[0][-1] == 22

    def test_t7_t8_still_na(self, outcomes):
        assert outcomes["T7"].sqak_is_na
        assert outcomes["T8"].sqak_is_na


class TestOursUnchanged:
    @pytest.mark.parametrize("qid", ["T1", "T2", "T3", "T4", "T5", "T6", "T8"])
    def test_answer_counts_match_table5(
        self, qid, outcomes, normalized_outcomes
    ):
        assert len(outcomes[qid].semantic_answers()) == len(
            normalized_outcomes[qid].semantic_answers()
        )

    def test_t5_exact(self, outcomes):
        assert outcomes["T5"].semantic_answers() == [(4,)]

    def test_generated_sql_reads_stored_relations(self, outcomes):
        # the SQL must run against TPCH' (Ordering), not phantom tables
        assert "Ordering" in outcomes["T5"].semantic_sql

    def test_rewriting_leaves_no_redundant_projections(self, outcomes):
        # T1 reads one deduplicated Order fragment
        sql = outcomes["T1"].semantic_sql
        assert "SELECT DISTINCT orderkey, amount FROM Ordering" in sql
