"""Table 9 reproduction: the unnormalized ACMDL runs."""

import pytest

from repro.experiments import ACMDL_QUERIES, run_suite


@pytest.fixture(scope="module")
def outcomes(acmdl_unnorm_engine, acmdl_unnorm_sqak):
    results = run_suite(acmdl_unnorm_engine, acmdl_unnorm_sqak, ACMDL_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


@pytest.fixture(scope="module")
def normalized_outcomes(acmdl_engine, acmdl_sqak):
    results = run_suite(acmdl_engine, acmdl_sqak, ACMDL_QUERIES)
    return {outcome.spec.qid: outcome for outcome in results}


class TestSqakBreaksOnDenormalizedData:
    def test_a1_average_pages_inflated(self, outcomes, normalized_outcomes):
        wrong = outcomes["A1"].sqak_answers()[0][-1]
        true_value = normalized_outcomes["A1"].semantic_answers()[0][-1]
        assert wrong > true_value * 1.02

    def test_a2_paper_counts_inflated(self, outcomes, normalized_outcomes):
        wrong = sorted(row[-1] for row in outcomes["A2"].sqak_answers())
        true_counts = sorted(
            row[-1] for row in normalized_outcomes["A2"].semantic_answers()
        )
        assert len(wrong) == len(true_counts)
        assert all(w > t for w, t in zip(wrong, true_counts))

    def test_a3_still_one_mixed_answer(self, outcomes):
        assert len(outcomes["A3"].sqak_answers()) == 1

    def test_a6_a7_a8_still_na(self, outcomes):
        for qid in ("A6", "A7", "A8"):
            assert outcomes[qid].sqak_is_na, qid


class TestOursUnchanged:
    @pytest.mark.parametrize(
        "qid", ["A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"]
    )
    def test_answer_counts_match_table6(
        self, qid, outcomes, normalized_outcomes
    ):
        assert len(outcomes[qid].semantic_answers()) == len(
            normalized_outcomes[qid].semantic_answers()
        )

    def test_a5_exact_multiset(self, outcomes):
        ours = sorted(row[-1] for row in outcomes["A5"].semantic_answers())
        assert ours == [2, 2, 2, 2, 2, 6]

    def test_generated_sql_reads_stored_relations(self, outcomes):
        sql = outcomes["A2"].semantic_sql
        assert "PaperAuthor" in sql and "EditorProceeding" in sql
