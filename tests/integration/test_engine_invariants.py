"""Cross-cutting invariants of the whole pipeline.

* every generated SQL statement parses back and round-trips through the
  renderer;
* every generated pattern is connected and has consistent annotations;
* **aggregation consistency**: for SUM/COUNT queries, re-aggregating the
  distinguished (per-object) answers yields exactly the undistinguished
  (mixed) answer — the two interpretations are views of the same data.
"""

from __future__ import annotations

import pytest

from repro.sql.parser import parse
from repro.sql.render import render

UNIVERSITY_QUERIES = [
    "Green SUM Credit",
    "Java SUM Price",
    "COUNT Lecturer GROUPBY Course",
    "Green George COUNT Code",
    "AVG COUNT Lecturer GROUPBY Course",
    "COUNT Student GROUPBY Course",
    "Lecturer George",
    "Engineering COUNT Department",
]

TPCH_QUERY_TEXTS = [
    "order AVG amount",
    "MAX COUNT order GROUPBY nation",
    'COUNT order "royal olive"',
    'COUNT supplier "Indian black chocolate"',
    "COUNT part GROUPBY supplier",
    "COUNT order SUM amount GROUPBY mktsegment",
]


class TestGeneratedSqlWellFormed:
    @pytest.mark.parametrize("text", UNIVERSITY_QUERIES)
    def test_university_sql_round_trips(self, university_engine, text):
        for interpretation in university_engine.compile(text):
            sql = interpretation.sql_compact
            assert render(parse(sql)) == sql

    @pytest.mark.parametrize("text", TPCH_QUERY_TEXTS)
    def test_tpch_sql_round_trips(self, tpch_engine, text):
        for interpretation in tpch_engine.compile(text):
            sql = interpretation.sql_compact
            assert render(parse(sql)) == sql

    @pytest.mark.parametrize("text", UNIVERSITY_QUERIES)
    def test_unnormalized_sql_round_trips(self, enrolment_engine, text):
        try:
            interpretations = enrolment_engine.compile("Green George COUNT Code")
        except Exception:
            pytest.skip("query not applicable to the Enrolment schema")
        for interpretation in interpretations:
            sql = interpretation.sql_compact
            assert render(parse(sql)) == sql


class TestPatternInvariants:
    @pytest.mark.parametrize("text", UNIVERSITY_QUERIES)
    def test_patterns_connected(self, university_engine, text):
        for pattern in university_engine.patterns(text):
            assert pattern.is_connected()

    @pytest.mark.parametrize("text", UNIVERSITY_QUERIES)
    def test_edges_reference_existing_nodes(self, university_engine, text):
        for pattern in university_engine.patterns(text):
            ids = {node.id for node in pattern.nodes}
            for edge in pattern.edges:
                assert edge.first in ids and edge.second in ids
                assert edge.first != edge.second

    @pytest.mark.parametrize("text", UNIVERSITY_QUERIES)
    def test_annotation_relations_belong_to_node(
        self, university_engine, text
    ):
        graph = university_engine.graph
        for pattern in university_engine.patterns(text):
            for node in pattern.nodes:
                orm_node = graph.node(node.orm_node)
                relations = {rel.name for rel in orm_node.relations()}
                for condition in node.conditions:
                    assert condition.relation in relations
                for aggregate in node.aggregates:
                    assert aggregate.relation in relations


class TestAggregationConsistency:
    """Distinguished answers re-aggregate to the undistinguished answer."""

    def _pair(self, engine, text):
        result = engine.search(text)
        distinguished = result.find(distinguishes=True)
        mixed = result.find(distinguishes=False)
        assert distinguished is not None and mixed is not None
        return distinguished, mixed

    def test_q1_sum_consistency(self, university_engine):
        distinguished, mixed = self._pair(university_engine, "Green SUM Credit")
        per_object = [row[-1] for row in distinguished.execute().rows]
        assert sum(per_object) == mixed.execute().scalar()

    def test_t3_count_consistency(self, tpch_engine):
        distinguished, mixed = self._pair(
            tpch_engine, 'COUNT order "royal olive"'
        )
        per_object = [row[-1] for row in distinguished.execute().rows]
        assert sum(per_object) == mixed.execute().scalar()

    def test_t4_max_consistency(self, tpch_engine):
        distinguished, mixed = self._pair(
            tpch_engine, 'supplier MAX acctbal "yellow tomato"'
        )
        per_object = [row[-1] for row in distinguished.execute().rows]
        assert max(per_object) == mixed.execute().scalar()

    def test_a3_count_consistency(self, acmdl_engine):
        distinguished, mixed = self._pair(
            acmdl_engine, "COUNT proceeding editor Smith"
        )
        per_object = [row[-1] for row in distinguished.execute().rows]
        # mixed counts (editor, proceeding) pairs; per-editor counts sum to it
        assert sum(per_object) == mixed.execute().scalar()

    def test_consistency_holds_on_unnormalized_data(self, enrolment_engine):
        distinguished, mixed = self._pair(
            enrolment_engine, "Green SUM Credit"
        )
        per_object = [row[-1] for row in distinguished.execute().rows]
        assert sum(per_object) == mixed.execute().scalar()
