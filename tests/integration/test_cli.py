"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSemanticQueries:
    def test_university_query(self):
        code, text = run_cli("--dataset", "university", "Green SUM Credit")
        assert code == 0
        assert "interpretation #1" in text
        assert "SELECT" in text
        assert "GROUP BY" in text

    def test_top_k(self):
        code, text = run_cli(
            "--dataset", "university", "--top", "2", "Green SUM Credit"
        )
        assert code == 0
        assert "interpretation #2" in text

    def test_explain_skips_execution(self):
        code, text = run_cli(
            "--dataset", "university", "--explain", "Green SUM Credit"
        )
        assert code == 0
        assert "SELECT" in text
        assert "sumCredit\n---------" not in text  # no result table

    def test_unnormalized_dataset(self):
        code, text = run_cli(
            "--dataset", "enrolment", "--top", "2", "Green SUM Credit"
        )
        assert code == 0
        assert "Enrolment" in text

    def test_quoted_phrase(self):
        code, text = run_cli("--dataset", "university", '"Java" SUM Price')
        assert code == 0
        assert "25.0" in text


class TestSqakMode:
    def test_supported_query(self):
        code, text = run_cli("--dataset", "university", "--sqak", "Green SUM Credit")
        assert code == 0
        assert "GROUP BY" in text and "Sname" in text

    def test_na_query_exits_nonzero(self):
        code, text = run_cli(
            "--dataset",
            "tpch",
            "--sqak",
            "COUNT order SUM amount GROUPBY mktsegment",
        )
        assert code == 1
        assert "N.A." in text


class TestOtherModes:
    def test_schema_mode(self):
        code, text = run_cli("--dataset", "university", "--schema")
        assert code == 0
        assert "ORM schema graph" in text
        assert "[relationship] Teach" in text

    def test_raw_sql_mode(self):
        code, text = run_cli(
            "--dataset",
            "university",
            "--sql",
            "SELECT COUNT(*) AS n FROM Student",
        )
        assert code == 0
        assert "3" in text

    def test_error_reported_cleanly(self):
        code, text = run_cli("--dataset", "university", "zzznothing COUNT Code")
        assert code == 2
        assert "error:" in text

    def test_db_dir_loading(self, university_db, tmp_path):
        from repro.relational.io import save_database

        save_database(university_db, tmp_path / "uni")
        code, text = run_cli("--db-dir", str(tmp_path / "uni"), "Java SUM Price")
        assert code == 0
        assert "25.0" in text

    def test_db_dir_with_fds(self, enrolment_db, tmp_path):
        from repro.relational.io import save_database

        save_database(enrolment_db, tmp_path / "enr")
        (tmp_path / "enr" / "fds.json").write_text(
            json.dumps(
                {"Enrolment": ["Sid -> Sname, Age", "Code -> Title, Credit"]}
            )
        )
        code, text = run_cli(
            "--db-dir", str(tmp_path / "enr"), "--top", "2", "Green SUM Credit"
        )
        assert code == 0
        assert "Enrolment" in text

    def test_query_required(self):
        with pytest.raises(SystemExit):
            run_cli("--dataset", "university")


class TestExplainTree:
    def test_explain_renders_pattern_tree(self):
        code, text = run_cli(
            "--dataset", "university", "--explain", "Green George COUNT Code"
        )
        assert code == 0
        assert "[Course COUNT(Code)]" in text
        assert "`-- " in text or "|-- " in text


class TestBackendSelection:
    def test_semantic_answers_on_sqlite(self):
        code, text = run_cli(
            "--dataset", "university", "--backend", "sqlite", "AVG Credit"
        )
        assert code == 0
        assert "4.0" in text

    def test_raw_sql_on_sqlite(self):
        code, text = run_cli(
            "--dataset", "university", "--backend", "sqlite",
            "--sql", "SELECT COUNT(*) FROM Student",
        )
        assert code == 0
        assert "3" in text

    def test_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli(
                "--dataset", "university", "--backend", "oracle", "AVG Credit"
            )

    def test_sqak_refuses_non_memory_backend(self):
        with pytest.raises(SystemExit):
            run_cli(
                "--dataset", "university", "--sqak", "--backend", "sqlite",
                "Green SUM Credit",
            )


class TestDiffSubcommand:
    def test_diff_dispatches_from_main(self):
        code, text = run_cli("diff", "--dataset", "university", "--top", "2")
        assert code == 0
        assert "0 mismatches" in text
