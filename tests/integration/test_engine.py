"""Engine-level behaviour: API surface, ranking, ablation knobs, errors."""

import pytest

from repro.engine import KeywordSearchEngine, describe_pattern
from repro.errors import InvalidQueryError, NoMatchError


class TestSearchApi:
    def test_search_returns_ranked_interpretations(self, university_engine):
        result = university_engine.search("Green SUM Credit")
        assert len(result) >= 2
        assert [i.rank for i in result] == list(range(1, len(result) + 1))

    def test_best_is_first(self, university_engine):
        result = university_engine.search("Green SUM Credit")
        assert result.best is result.interpretations[0]

    def test_k_limits_interpretations(self, university_engine):
        result = university_engine.search("Green SUM Credit", k=1)
        assert len(result) == 1

    def test_execute_runs_top_interpretation(self, university_engine):
        assert university_engine.execute("Java SUM Price") is not None

    def test_result_cached_per_interpretation(self, university_engine):
        chosen = university_engine.search("Java SUM Price").best
        assert chosen.execute() is chosen.execute()

    def test_sql_text_properties(self, university_engine):
        chosen = university_engine.search("Java SUM Price").best
        assert "\n" in chosen.sql
        assert "\n" not in chosen.sql_compact

    def test_find_filters_by_distinguish(self, university_engine):
        result = university_engine.search("Green SUM Credit")
        assert result.find(distinguishes=True).distinguishes
        assert not result.find(distinguishes=False).distinguishes

    def test_descriptions_are_informative(self, university_engine):
        result = university_engine.search("Green SUM Credit")
        text = result.best.description
        assert "SUM" in text and "Green" in text

    def test_describe_pattern_empty(self):
        from repro.patterns import QueryPattern

        assert "retrieve matching objects" in describe_pattern(QueryPattern())


class TestErrors:
    def test_invalid_query_raises(self, university_engine):
        with pytest.raises(InvalidQueryError):
            university_engine.search("Green SUM")

    def test_unmatched_term_raises(self, university_engine):
        with pytest.raises(NoMatchError):
            university_engine.search("qqqqq COUNT Code")


class TestModes:
    def test_normalized_mode_detected(self, university_engine):
        assert university_engine.is_normalized
        assert university_engine.view is None

    def test_unnormalized_mode_detected(self, enrolment_engine):
        assert not enrolment_engine.is_normalized
        assert enrolment_engine.view is not None

    def test_declared_3nf_fds_keep_normalized_mode(self, university_db):
        engine = KeywordSearchEngine(
            university_db, fds={"Student": ["Sid -> Sname"]}
        )
        assert engine.is_normalized


class TestAblationKnobs:
    def test_disable_disambiguation(self, university_db):
        engine = KeywordSearchEngine(university_db, disambiguate=False)
        result = engine.search("Green SUM Credit")
        assert all(not i.distinguishes for i in result)
        assert result.best.execute().rows == [(13.0,)]

    def test_disable_relationship_dedup(self, university_db):
        engine = KeywordSearchEngine(university_db, dedup_relationships=False)
        chosen = engine.search("Java SUM Price").best
        assert "DISTINCT" not in chosen.sql_compact
        assert chosen.execute().rows == [(35.0,)]  # SQAK's wrong answer

    def test_disable_rewrite(self, enrolment_db, enrolment_fds):
        engine = KeywordSearchEngine(
            enrolment_db, fds=enrolment_fds, rewrite_sql=False
        )
        chosen = engine.search("Green SUM Credit").find(distinguishes=True)
        assert "(SELECT" in chosen.sql_compact
        assert chosen.execute().sorted_rows() == [("s2", 5.0), ("s3", 8.0)]
