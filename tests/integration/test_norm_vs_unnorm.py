"""The central Table-8/9 invariant: the semantic engine's answers on an
unnormalized database are identical to its answers on the normalized
original, for every evaluation query."""

import pytest

from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES, pick_interpretation


def answers(engine, spec):
    interpretations = engine.compile(spec.text)
    chosen = pick_interpretation(interpretations, spec)
    return chosen.execute().sorted_rows()


@pytest.mark.parametrize("spec", TPCH_QUERIES, ids=lambda s: s.qid)
def test_tpch_unnormalized_answers_match_normalized(
    spec, tpch_engine, tpch_unnorm_engine
):
    normalized = answers(tpch_engine, spec)
    unnormalized = answers(tpch_unnorm_engine, spec)
    assert _values(normalized) == _values(unnormalized), spec.qid


@pytest.mark.parametrize("spec", ACMDL_QUERIES, ids=lambda s: s.qid)
def test_acmdl_unnormalized_answers_match_normalized(
    spec, acmdl_engine, acmdl_unnorm_engine
):
    normalized = answers(acmdl_engine, spec)
    unnormalized = answers(acmdl_unnorm_engine, spec)
    assert _values(normalized) == _values(unnormalized), spec.qid


def _values(rows):
    """Compare answer multisets; floats are rounded because summation order
    differs between the two databases' join orders."""

    def norm(value):
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    return sorted(sorted(norm(v) for v in row) for row in rows)
