"""Edge cases across the pipeline: empty data, deep nesting, relationship
attributes, degenerate schemas."""

import pytest

from repro.engine import KeywordSearchEngine
from repro.errors import InvalidQueryError, NoMatchError, NoPatternError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


def empty_university() -> Database:
    from repro.datasets.university import university_schema

    return Database(university_schema())


class TestEmptyData:
    def test_metadata_queries_work_on_empty_tables(self):
        engine = KeywordSearchEngine(empty_university())
        result = engine.search("COUNT Student GROUPBY Course")
        assert result.best.execute().rows == []

    def test_global_aggregate_on_empty_table(self):
        engine = KeywordSearchEngine(empty_university())
        chosen = engine.search("AVG Credit").best
        assert chosen.execute().scalar() is None

    def test_count_on_empty_table_is_zero(self):
        engine = KeywordSearchEngine(empty_university())
        chosen = engine.search("COUNT Student").best
        assert chosen.execute().scalar() == 0

    def test_value_terms_fail_cleanly_on_empty_data(self):
        engine = KeywordSearchEngine(empty_university())
        with pytest.raises(NoMatchError):
            engine.search("Green SUM Credit")


class TestDeepNesting:
    def test_three_level_nesting(self, university_engine):
        chosen = university_engine.search(
            "MIN MAX AVG COUNT Lecturer GROUPBY Course"
        ).best
        sql = chosen.sql_compact
        assert "MIN(" in sql and "MAX(" in sql and "AVG(" in sql
        # single group column -> all outer levels act on one value
        assert chosen.execute().scalar() == pytest.approx(4 / 3)

    def test_nested_without_groupby(self, university_engine):
        # nesting over a single global group: outer aggregate of one value
        chosen = university_engine.search("MAX COUNT Student").best
        assert chosen.execute().scalar() == 3


class TestRelationshipAttributes:
    def test_condition_on_relationship_attribute(self, university_engine):
        # Grade belongs to the Enrol relationship, not to an object
        result = university_engine.search("Grade COUNT Student")
        chosen = result.best
        assert chosen.execute() is not None

    def test_count_relationship_relation(self, university_engine):
        chosen = university_engine.search("COUNT Enrol").best
        assert chosen.execute().scalar() == 6

    def test_groupby_relationship_attribute(self, university_engine):
        chosen = university_engine.search(
            "COUNT Student GROUPBY Grade"
        ).best
        rows = dict(chosen.execute().rows)
        # students per grade, deduplicated: A -> {s1,s2,s3}, B -> {s1,s3}
        assert rows == {"A": 3, "B": 2}


class TestDegenerateSchemas:
    def test_single_relation_database(self):
        schema = DatabaseSchema("single")
        schema.add_relation(
            "Thing", [("id", INT), ("name", TEXT), ("price", INT)], ["id"]
        )
        db = Database(schema)
        db.load("Thing", [(1, "apple", 3), (2, "apple", 5), (3, "pear", 4)])
        engine = KeywordSearchEngine(db)
        chosen = engine.search("apple SUM price").find(distinguishes=True)
        assert chosen.execute().sorted_rows() == [(1, 3), (2, 5)]

    def test_two_isolated_relations_cannot_connect(self):
        schema = DatabaseSchema("iso")
        schema.add_relation("A", [("aid", INT), ("aname", TEXT)], ["aid"])
        schema.add_relation("B", [("bid", INT), ("bname", TEXT)], ["bid"])
        db = Database(schema)
        db.load("A", [(1, "x")])
        db.load("B", [(1, "y")])
        engine = KeywordSearchEngine(db)
        with pytest.raises(NoPatternError):
            engine.search("COUNT A GROUPBY B")

    def test_self_reference_relation(self):
        # an employee-manager hierarchy: FK to the relation itself
        schema = DatabaseSchema("emp")
        schema.add_relation(
            "Employee",
            [("eid", INT), ("ename", TEXT), ("manager", INT)],
            ["eid"],
            [ForeignKey(("manager",), "Employee", ("eid",))],
        )
        db = Database(schema)
        db.load("Employee", [(1, "root", None), (2, "alice", 1), (3, "bob", 1)])
        engine = KeywordSearchEngine(db)
        chosen = engine.search("COUNT Employee").best
        assert chosen.execute().scalar() == 3


class TestQueryOddities:
    def test_operator_word_as_quoted_value(self, university_engine):
        # quoting turns an operator word into a basic term; nothing in the
        # university data contains 'count', so matching fails cleanly
        with pytest.raises(NoMatchError):
            university_engine.search('"COUNT" SUM Credit')

    def test_repeated_term(self, university_engine):
        result = university_engine.search("Green Green COUNT Code")
        # two Green nodes (possibly the same student twice) still connect
        assert result.best.execute() is not None

    def test_case_insensitive_everything(self, university_engine):
        lower = university_engine.search("green sum credit").best
        upper = university_engine.search("GREEN SUM CREDIT").best
        assert lower.execute() == upper.execute()

    def test_whitespace_only_query(self, university_engine):
        with pytest.raises(InvalidQueryError):
            university_engine.search("   ")
