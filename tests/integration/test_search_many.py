"""Batch search: ordering, dedup, serial equivalence and thread safety."""

import pytest

from repro.engine import KeywordSearchEngine
from repro.experiments import TPCH_QUERIES


QUERIES = [
    "Green SUM Credit",
    "Java SUM Price",
    "COUNT Student GROUPBY Course",
    "Green SUM Credit",  # duplicate on purpose
]


class TestSearchMany:
    def test_results_in_input_order(self, university_db):
        engine = KeywordSearchEngine(university_db)
        results = engine.search_many(QUERIES, parallel=4)
        assert len(results) == len(QUERIES)
        for text, result in zip(QUERIES, results):
            assert result.query.raw == text

    def test_duplicates_share_one_result(self, university_db):
        engine = KeywordSearchEngine(university_db)
        results = engine.search_many(QUERIES, parallel=4)
        assert results[0] is results[3]
        assert engine.metrics.counter("batch_deduped") == 1
        assert engine.metrics.counter("batch_queries") == len(QUERIES)

    def test_matches_serial_search(self, university_db):
        parallel_engine = KeywordSearchEngine(university_db)
        serial_engine = KeywordSearchEngine(university_db)
        batched = parallel_engine.search_many(QUERIES, parallel=4)
        for text, result in zip(QUERIES, batched):
            serial = serial_engine.search(text)
            assert [i.sql for i in result.interpretations] == [
                i.sql for i in serial.interpretations
            ]
            assert result.best.execute() == serial.best.execute()

    def test_parallel_one_is_serial_path(self, university_db):
        engine = KeywordSearchEngine(university_db)
        results = engine.search_many(QUERIES, parallel=1)
        assert len(results) == len(QUERIES)

    def test_rejects_bad_parallel(self, university_db):
        engine = KeywordSearchEngine(university_db)
        with pytest.raises(ValueError):
            engine.search_many(QUERIES, parallel=0)

    @pytest.mark.parametrize("round", range(5))
    def test_repeated_batches_are_stable(self, tpch_engine, round):
        """Race check: repeated warm batches over the evaluation mix must
        keep producing the same top SQL for every query."""
        texts = [spec.text for spec in TPCH_QUERIES]
        results = tpch_engine.search_many(texts, parallel=4)
        expected = {
            text: result.best.sql for text, result in zip(texts, results)
        }
        again = tpch_engine.search_many(texts, parallel=4)
        for text, result in zip(texts, again):
            assert result.best.sql == expected[text]

    def test_batch_beats_serial_on_warm_caches(self, tpch_db):
        """The batch API's dedup + shared caches must make a repetitive
        batch cheaper than naively looping search() on a cold engine."""
        import time

        texts = [spec.text for spec in TPCH_QUERIES] * 4

        cold = KeywordSearchEngine(tpch_db)
        start = time.perf_counter()
        for text in texts:
            cold.clear_cache()  # the naive loop: no reuse at all
            cold.search(text)
        serial_s = time.perf_counter() - start

        batch = KeywordSearchEngine(tpch_db)
        batch.search_many(texts, parallel=4)  # warm
        start = time.perf_counter()
        batch.search_many(texts, parallel=4)
        batch_s = time.perf_counter() - start
        assert batch_s < serial_s

    def test_trace_flag_attaches_traces(self, university_db):
        engine = KeywordSearchEngine(university_db)
        results = engine.search_many(QUERIES[:2], parallel=2, trace=True)
        for result in results:
            assert result.trace is not None
            assert result.trace.root.name == "search"
