"""End-to-end property: normalization invariance on random databases.

Hypothesis generates a random star schema — objects ``Akind`` and ``Bkind``
linked by a relationship ``Rel`` — with random data, denormalizes it into a
single wide relation (the join), and checks that the semantic engine
answers aggregate queries identically on both representations.  This is
the Table-8/9 claim as a property over arbitrary data, not just the
planted datasets.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.engine import KeywordSearchEngine
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT

# value pools are tiny so collisions (several objects sharing a name) are
# frequent — exactly the situation disambiguation must handle
a_names = st.sampled_from(["ruby", "topaz", "opal"])
b_names = st.sampled_from(["north", "south"])
weights = st.integers(min_value=0, max_value=9)


@st.composite
def star_instances(draw):
    a_count = draw(st.integers(min_value=1, max_value=4))
    b_count = draw(st.integers(min_value=1, max_value=3))
    a_rows = [(i, draw(a_names)) for i in range(a_count)]
    b_rows = [(i, draw(b_names)) for i in range(b_count)]
    pair_pool = [(a, b) for a in range(a_count) for b in range(b_count)]
    pairs = draw(
        st.lists(st.sampled_from(pair_pool), min_size=1, unique=True, max_size=8)
    )
    rel_rows = [(a, b, draw(weights)) for a, b in pairs]
    return a_rows, b_rows, rel_rows


def build_normalized(a_rows, b_rows, rel_rows) -> Database:
    schema = DatabaseSchema("star")
    schema.add_relation("Akind", [("aid", INT), ("aname", TEXT)], ["aid"])
    schema.add_relation("Bkind", [("bid", INT), ("bname", TEXT)], ["bid"])
    schema.add_relation(
        "Rel",
        [("aid", INT), ("bid", INT), ("weight", INT)],
        ["aid", "bid"],
        [
            ForeignKey(("aid",), "Akind", ("aid",)),
            ForeignKey(("bid",), "Bkind", ("bid",)),
        ],
    )
    db = Database(schema)
    db.load("Akind", a_rows)
    db.load("Bkind", b_rows)
    db.load("Rel", rel_rows)
    return db


def build_denormalized(a_rows, b_rows, rel_rows) -> Database:
    schema = DatabaseSchema("star_wide")
    schema.add_relation(
        "Wide",
        [
            ("aid", INT),
            ("bid", INT),
            ("aname", TEXT),
            ("bname", TEXT),
            ("weight", INT),
        ],
        ["aid", "bid"],
    )
    db = Database(schema)
    a_by_id = dict(a_rows)
    b_by_id = dict(b_rows)
    db.load(
        "Wide",
        [(a, b, a_by_id[a], b_by_id[b], w) for a, b, w in rel_rows],
    )
    return db


WIDE_FDS = {"Wide": ["aid -> aname", "bid -> bname"]}
WIDE_HINTS = {
    frozenset({"aid"}): "Akind",
    frozenset({"bid"}): "Bkind",
    frozenset({"aid", "bid"}): "Rel",
}

QUERIES = [
    "COUNT Bkind GROUPBY Akind",
    "COUNT Rel",
    "SUM weight GROUPBY bname",
    "MAX weight",
]


def answers(engine: KeywordSearchEngine, text: str):
    result = engine.search(text, k=1)
    rows = result.best.execute().sorted_rows()
    return [tuple(str(v) for v in row) for row in rows]


@settings(max_examples=40, deadline=None)
@given(star_instances(), st.sampled_from(QUERIES))
def test_unnormalized_answers_match_normalized(instance, query):
    a_rows, b_rows, rel_rows = instance
    # normalization invariance only holds for entities present in the
    # relationship (projections of the wide table cannot see dangling
    # objects); restrict to that case, as the paper's datasets do
    used_a = {a for a, _, _ in rel_rows}
    used_b = {b for _, b, _ in rel_rows}
    assume(used_a == {a for a, _ in a_rows})
    assume(used_b == {b for b, _ in b_rows})

    normalized = KeywordSearchEngine(build_normalized(a_rows, b_rows, rel_rows))
    denormalized = KeywordSearchEngine(
        build_denormalized(a_rows, b_rows, rel_rows),
        fds=WIDE_FDS,
        name_hints=WIDE_HINTS,
    )
    assert not denormalized.is_normalized
    assert answers(normalized, query) == answers(denormalized, query)


@settings(max_examples=25, deadline=None)
@given(star_instances())
def test_view_reconstructs_the_three_relations(instance):
    a_rows, b_rows, rel_rows = instance
    engine = KeywordSearchEngine(
        build_denormalized(a_rows, b_rows, rel_rows),
        fds=WIDE_FDS,
        name_hints=WIDE_HINTS,
    )
    view = engine.view
    assert set(view.relations) == {"Akind", "Bkind", "Rel"}
    assert view.relation("Akind").key == ("aid",)
    assert view.relation("Rel").key == ("aid", "bid")
    # the view's ORM graph has the star shape
    assert engine.graph.object_like_neighbors("Rel") == ["Akind", "Bkind"]


@settings(max_examples=25, deadline=None)
@given(star_instances())
def test_distinguished_sum_consistency_on_random_data(instance):
    """Per-object sums re-aggregate to the mixed sum on random data."""
    a_rows, b_rows, rel_rows = instance
    # need a value collision for disambiguation to trigger; pick the most
    # frequent A name
    names = [name for _, name in a_rows]
    target = max(set(names), key=names.count)
    assume(names.count(target) >= 2)
    engine = KeywordSearchEngine(build_normalized(a_rows, b_rows, rel_rows))
    result = engine.search(f"{target} SUM weight")
    distinguished = result.find(distinguishes=True)
    mixed = result.find(distinguishes=False)
    assume(distinguished is not None and mixed is not None)
    per_object = [row[-1] for row in distinguished.execute().rows]
    mixed_value = mixed.execute().scalar()
    if not per_object:
        assert mixed_value is None
    else:
        assert sum(per_object) == mixed_value
