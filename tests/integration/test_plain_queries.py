"""Plain (non-aggregate) keyword queries — the base capability of [15]
that the aggregate extension builds on, including the Section-2.1 example
{Green George Code} = the common courses taken by Green and George."""

import pytest


class TestSection21Example:
    def test_common_courses_of_green_and_george(self, university_engine):
        best = university_engine.search("Green George Code").best
        assert best.execute().sorted_rows() == [("c1",), ("c3",)]

    def test_sql_is_distinct_projection(self, university_engine):
        best = university_engine.search("Green George Code").best
        sql = best.sql_compact
        assert sql.startswith("SELECT DISTINCT C1.Code")
        assert "GROUP BY" not in sql
        assert sql.count("Enrol") == 2  # the Figure-4 self-join

    def test_no_disambiguation_variants_for_plain_queries(
        self, university_engine
    ):
        result = university_engine.search("Green George Code")
        assert all(not i.distinguishes for i in result.interpretations)


class TestTargetProjection:
    def test_relation_target_projects_identifier(self, university_engine):
        best = university_engine.search("Lecturer George").best
        assert best.execute().rows == [("l2",)]

    def test_attribute_target_projects_attribute(self, university_engine):
        best = university_engine.search("Java Student").best
        # all students enrolled in Java
        assert best.execute().sorted_rows() == [("s1",), ("s2",), ("s3",)]
        assert "DISTINCT" in best.sql_compact

    def test_condition_only_query_projects_conditions(self, university_engine):
        best = university_engine.search("Green").best
        values = {row[0] for row in best.execute().rows}
        assert values == {"Green"}

    def test_duplicate_elimination_still_applies(self, university_engine):
        # textbooks of the Java course: the ternary Teach must not repeat b1
        best = university_engine.search("Java Textbook").best
        rows = best.execute().sorted_rows()
        assert rows == [("b1",), ("b2",)]
        assert "SELECT DISTINCT Code, Bid FROM Teach" in best.sql_compact


class TestPlainQueriesOnOtherDatabases:
    def test_tpch_plain_query(self, tpch_engine):
        best = tpch_engine.search('supplier "Indian black chocolate"').best
        # the four planted suppliers of the chocolate part
        assert len(best.execute().rows) == 4

    def test_unnormalized_plain_query(self, enrolment_engine):
        best = enrolment_engine.search("Green George Code").best
        assert best.execute().sorted_rows() == [("c1",), ("c3",)]

    def test_plain_sql_validates(self, university_engine, university_db):
        from repro.sql.validate import validate_select

        for text in ("Green George Code", "Java Student", "Lecturer George"):
            for interpretation in university_engine.compile(text):
                issues = validate_select(
                    interpretation.select, university_db.schema
                )
                assert issues == [], interpretation.sql_compact
