"""Numeric value matching: terms that parse as numbers match numeric
columns exactly (equality, not substring)."""

import pytest

from repro.errors import NoMatchError


class TestNumericIndex:
    def test_match_number(self, university_db):
        matches = university_db.numeric_index.match_number("24")
        assert any(
            m.relation == "Student" and m.attribute == "Age" for m in matches
        )

    def test_int_float_unification(self, university_db):
        # Credit is FLOAT; '5' must match 5.0
        matches = university_db.numeric_index.match_number("5")
        assert any(
            m.relation == "Course" and m.attribute == "Credit" for m in matches
        )

    def test_non_number_returns_nothing(self, university_db):
        assert university_db.numeric_index.match_number("Green") == []

    def test_no_substring_semantics(self, university_db):
        # '2' is a substring of every age but equals none
        matches = university_db.numeric_index.match_number("2")
        assert not any(m.attribute == "Age" for m in matches)


class TestEndToEnd:
    def test_numeric_term_produces_equality_condition(self, university_engine):
        chosen = university_engine.search("24 COUNT Code").best
        assert "Age = 24" in chosen.sql_compact
        # the 24-year-old student (s2, Green) took exactly one course
        assert chosen.execute().scalar() == 1

    def test_numeric_term_with_aggregate(self, university_engine):
        # average age of students enrolled in the 5-credit course (Java)
        chosen = university_engine.search("5 AVG Age").best
        assert "Credit = 5" in chosen.sql_compact
        assert chosen.execute().scalar() == pytest.approx((22 + 24 + 21) / 3)

    def test_numeric_disambiguation(self, university_engine):
        # two students share age? ages are 22, 24, 21 — all unique, so no
        # disambiguated variant appears for the age condition
        result = university_engine.search("24 COUNT Code")
        assert all(not i.distinguishes for i in result.interpretations)

    def test_numeric_term_without_match_fails_cleanly(self, university_engine):
        with pytest.raises(NoMatchError):
            university_engine.search("999 COUNT Code")

    def test_numeric_matching_on_unnormalized(self, enrolment_engine):
        chosen = enrolment_engine.search("24 COUNT Code").best
        assert "Age = 24" in chosen.sql_compact
        assert chosen.execute().scalar() == 1

    def test_numeric_sql_round_trips(self, university_engine):
        from repro.sql.parser import parse
        from repro.sql.render import render

        for interpretation in university_engine.compile("24 COUNT Code"):
            sql = interpretation.sql_compact
            assert render(parse(sql)) == sql
