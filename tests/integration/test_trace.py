"""End-to-end tracing: engine.search(trace=True), the EXPLAIN CLI and SQAK."""

from __future__ import annotations

import io

from repro.cli import main
from repro.observability import NULL_TRACER, Trace, Tracer

QUERY = "COUNT Lecturer GROUPBY Course"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# engine.search(trace=True)
# ----------------------------------------------------------------------
class TestSearchTrace:
    def test_untraced_search_has_no_trace(self, university_engine):
        result = university_engine.search(QUERY)
        assert result.trace is None

    def test_trace_covers_every_pipeline_stage(self, university_engine):
        result = university_engine.search(QUERY, trace=True)
        trace = result.trace
        assert trace is not None
        assert trace.root.name == "search"
        assert trace.root.attributes["query"] == QUERY
        stage_names = [child.name for child in trace.root.children]
        for stage in (
            "parse",
            "match",
            "generate",
            "disambiguate",
            "rank",
            "translate",
        ):
            assert stage in stage_names, stage
        # stages appear in pipeline order
        order = [stage_names.index(s) for s in ("parse", "match", "generate")]
        assert order == sorted(order)
        assert trace.duration_ms > 0.0

    def test_pipeline_counters_are_populated(self, university_engine):
        trace = university_engine.search(QUERY, trace=True).trace
        assert trace.find("match").counters["terms_matched"] >= 2
        assert trace.find("match").counters["tags_produced"] >= 1
        assert trace.find("generate").counters["patterns_generated"] >= 1
        assert trace.find("rank").counters["patterns_ranked"] >= 1
        assert trace.counter("patterns_translated") >= 1
        assert trace.counter("interpretations") >= 1

    def test_execute_span_joins_the_same_trace(self, university_engine):
        result = university_engine.search(QUERY, trace=True)
        assert result.trace.find("execute") is None
        rows = result.best.execute()
        assert rows.rows
        execute = result.trace.find("execute")
        assert execute is not None
        assert execute.counters["rows_scanned"] > 0
        # rows_output sums every select in the plan (derived tables included),
        # so the final result size is a lower bound
        assert execute.counters["rows_output"] >= len(rows.rows)

    def test_trace_round_trips_through_json(self, university_engine):
        trace = university_engine.search(QUERY, trace=True).trace
        restored = Trace.from_json(trace.to_json())
        assert restored.to_dict() == trace.to_dict()
        assert restored.counters() == trace.counters()

    def test_render_names_the_stages(self, university_engine):
        result = university_engine.search(QUERY, trace=True)
        result.best.execute()
        text = result.trace.render()
        for stage in ("search", "parse", "generate", "translate", "execute"):
            assert stage in text
        assert "ms" in text

    def test_traced_results_match_untraced(self, university_engine):
        untraced = university_engine.search(QUERY)
        traced = university_engine.search(QUERY, trace=True)
        assert [i.sql for i in traced.interpretations] == [
            i.sql for i in untraced.interpretations
        ]

    def test_search_feeds_the_engine_registry(self, university_engine):
        university_engine.metrics.reset()
        university_engine.search(QUERY, trace=True)
        assert university_engine.metrics.counter("patterns_generated") >= 1
        assert university_engine.metrics.timing("span.search")["count"] == 1

    def test_rewrite_span_on_unnormalized_schema(self, enrolment_engine):
        trace = enrolment_engine.search("Green SUM Credit", trace=True).trace
        translate = trace.find("translate")
        assert translate is not None
        assert translate.find("rewrite") is not None
        assert trace.counter("rewrites") >= 1


# ----------------------------------------------------------------------
# repro --explain
# ----------------------------------------------------------------------
class TestExplainCli:
    def test_explain_prints_the_span_tree(self):
        code, text = run_cli("--dataset", "university", "--explain", QUERY)
        assert code == 0
        assert "-- trace" in text
        assert "search" in text
        for stage in ("parse", "match", "generate", "translate"):
            assert stage in text
        assert "ms" in text

    def test_plain_run_prints_no_trace(self):
        code, text = run_cli("--dataset", "university", QUERY)
        assert code == 0
        assert "-- trace" not in text

    def test_sqak_explain_prints_the_span_tree(self):
        code, text = run_cli(
            "--dataset", "university", "--sqak", "--explain", "Lecturer COUNT Course"
        )
        assert code == 0
        assert "-- trace" in text
        for stage in ("parse", "match", "translate"):
            assert stage in text


# ----------------------------------------------------------------------
# SQAK shares the vocabulary
# ----------------------------------------------------------------------
class TestSqakTrace:
    def test_sqak_compile_uses_shared_metric_names(self, university_sqak):
        tracer = Tracer()
        with tracer.span("search"):
            university_sqak.compile("Lecturer COUNT Course", tracer=tracer)
        trace = tracer.trace
        assert trace.find("parse") is not None
        assert trace.find("match") is not None
        assert trace.find("translate") is not None
        assert trace.counter("terms_matched") >= 2
        assert trace.counter("patterns_translated") == 1

    def test_sqak_untraced_by_default(self, university_sqak):
        statement = university_sqak.compile(
            "Lecturer COUNT Course", tracer=NULL_TRACER
        )
        assert statement.sql


# ----------------------------------------------------------------------
# Cache interaction
# ----------------------------------------------------------------------
class TestTraceVsCache:
    def test_traced_run_bypasses_cache_read(self, university_engine):
        university_engine.clear_cache()
        university_engine.metrics.reset()
        university_engine.search(QUERY)  # warm the cache
        trace = university_engine.search(QUERY, trace=True).trace
        # a cache hit would leave the stage spans empty; bypass keeps them real
        assert trace.find("generate").counters["patterns_generated"] >= 1
        assert university_engine.metrics.counter("pattern_cache_bypassed") == 1
