"""Compiled plans must be result-identical to the interpreted executor on
every evaluation query, for both engines, normalized and unnormalized.

This is the acceptance gate for the physical-plan layer: same SQL, same
database, two execution strategies, equal :class:`QueryResult`s.
"""

import pytest

from repro.baselines import SqakEngine
from repro.engine import KeywordSearchEngine
from repro.errors import ReproError, UnsupportedQueryError
from repro.experiments import ACMDL_QUERIES, TPCH_QUERIES, pick_interpretation
from repro.relational.executor import Executor


def _assert_equivalent(database, select):
    interpreted = Executor(database, compile_plans=False).execute(select)
    # optimizer off: byte-for-byte the pre-planner pipeline, including
    # row order
    heuristic = Executor(
        database, compile_plans=True, optimizer="off"
    ).execute(select)
    assert heuristic == interpreted
    assert heuristic.rows == interpreted.rows  # same order as well
    # cost-based optimizer: join reordering may permute rows, but the
    # result must stay multiset-identical (QueryResult == canonicalizes)
    optimized = Executor(
        database, compile_plans=True, optimizer="cost"
    ).execute(select)
    assert optimized == interpreted


def _semantic_selects(engine, specs):
    selects = []
    for spec in specs:
        try:
            interpretations = engine.compile(spec.text)
        except ReproError:
            continue
        selects.append((spec.qid, pick_interpretation(interpretations, spec).select))
    assert selects
    return selects


def _sqak_selects(sqak, specs):
    selects = []
    for spec in specs:
        try:
            statement = sqak.compile(spec.text)
        except (UnsupportedQueryError, ReproError):
            continue
        selects.append((spec.qid, statement.select))
    assert selects
    return selects


class TestSemanticEngineEquivalence:
    def test_tpch(self, tpch_engine):
        for qid, select in _semantic_selects(tpch_engine, TPCH_QUERIES):
            _assert_equivalent(tpch_engine.database, select)

    def test_acmdl(self, acmdl_engine):
        for qid, select in _semantic_selects(acmdl_engine, ACMDL_QUERIES):
            _assert_equivalent(acmdl_engine.database, select)

    def test_tpch_unnormalized(self, tpch_unnorm_engine):
        for qid, select in _semantic_selects(tpch_unnorm_engine, TPCH_QUERIES):
            _assert_equivalent(tpch_unnorm_engine.database, select)

    def test_acmdl_unnormalized(self, acmdl_unnorm_engine):
        for qid, select in _semantic_selects(acmdl_unnorm_engine, ACMDL_QUERIES):
            _assert_equivalent(acmdl_unnorm_engine.database, select)


class TestSqakEquivalence:
    def test_tpch(self, tpch_sqak):
        for qid, select in _sqak_selects(tpch_sqak, TPCH_QUERIES):
            _assert_equivalent(tpch_sqak.database, select)

    def test_acmdl(self, acmdl_sqak):
        for qid, select in _sqak_selects(acmdl_sqak, ACMDL_QUERIES):
            _assert_equivalent(acmdl_sqak.database, select)

    def test_tpch_unnormalized(self, tpch_unnorm_sqak):
        for qid, select in _sqak_selects(tpch_unnorm_sqak, TPCH_QUERIES):
            _assert_equivalent(tpch_unnorm_sqak.database, select)

    def test_acmdl_unnormalized(self, acmdl_unnorm_sqak):
        for qid, select in _sqak_selects(acmdl_unnorm_sqak, ACMDL_QUERIES):
            _assert_equivalent(acmdl_unnorm_sqak.database, select)


class TestEngineKnob:
    def test_compile_plans_flag_reaches_executor(self, university_db):
        fast = KeywordSearchEngine(university_db)
        slow = KeywordSearchEngine(university_db, compile_plans=False)
        assert fast.executor.compile_plans
        assert not slow.executor.compile_plans
        query = "Green SUM Credit"
        assert fast.execute(query) == slow.execute(query)

    def test_clear_cache_drops_plans(self, university_db):
        engine = KeywordSearchEngine(university_db)
        engine.execute("Green SUM Credit")
        assert engine.executor.plan_cache_len > 0
        engine.clear_cache()
        assert engine.executor.plan_cache_len == 0

    def test_ablation_without_hash_joins_still_equivalent(self, university_db):
        sql = (
            "SELECT S.Sname, SUM(C.Credit) FROM Student S, Enrol E, Course C "
            "WHERE S.Sid = E.Sid AND E.Code = C.Code GROUP BY S.Sname"
        )
        baseline = Executor(university_db, compile_plans=False).execute(sql)
        for use_hash_joins in (True, False):
            result = Executor(
                university_db,
                use_hash_joins=use_hash_joins,
                compile_plans=True,
            ).execute(sql)
            assert result == baseline


def test_sqak_executor_compiles_by_default(tpch_sqak):
    assert tpch_sqak.executor.compile_plans
