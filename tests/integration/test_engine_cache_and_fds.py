"""Engine compile cache and declared-FD validation."""

import pytest

from repro.engine import KeywordSearchEngine
from repro.errors import NormalizationError
from repro.unnormalized import validate_declared_fds


class TestCompileCache:
    def test_patterns_cached_per_query_text(self, university_db):
        engine = KeywordSearchEngine(university_db)
        first = engine.patterns("Green SUM Credit")
        second = engine.patterns("Green SUM Credit")
        assert first is second

    def test_different_queries_not_shared(self, university_db):
        engine = KeywordSearchEngine(university_db)
        assert engine.patterns("Green SUM Credit") is not engine.patterns(
            "Java SUM Price"
        )

    def test_clear_cache(self, university_db):
        engine = KeywordSearchEngine(university_db)
        first = engine.patterns("Green SUM Credit")
        engine.clear_cache()
        assert engine.patterns("Green SUM Credit") is not first

    def test_cache_eviction_bounded(self, university_db):
        engine = KeywordSearchEngine(university_db)
        engine.cache_size = 2
        engine.patterns("Green SUM Credit")
        engine.patterns("Java SUM Price")
        engine.patterns("COUNT Student GROUPBY Course")
        assert len(engine._pattern_cache) <= 2

    def test_lru_hit_refreshes_entry(self, university_db):
        """A cache hit must move the entry to most-recently-used, so the
        *other* entry is the one evicted when the cache fills."""
        engine = KeywordSearchEngine(university_db)
        engine.cache_size = 2
        green = engine.patterns("Green SUM Credit")
        engine.patterns("Java SUM Price")
        refreshed = engine.patterns("Green SUM Credit")  # hit: refresh
        assert refreshed is green
        engine.patterns("COUNT Student GROUPBY Course")  # evicts Java
        assert "Green SUM Credit" in engine._pattern_cache
        assert "Java SUM Price" not in engine._pattern_cache
        assert engine.patterns("Green SUM Credit") is green

    def test_lru_evicts_least_recently_used(self, university_db):
        engine = KeywordSearchEngine(university_db)
        engine.cache_size = 2
        engine.patterns("Green SUM Credit")
        engine.patterns("Java SUM Price")
        engine.patterns("COUNT Student GROUPBY Course")
        assert len(engine._pattern_cache) == 2
        assert "Green SUM Credit" not in engine._pattern_cache
        assert "Java SUM Price" in engine._pattern_cache

    def test_hit_metric_recorded(self, university_db):
        engine = KeywordSearchEngine(university_db)
        engine.patterns("Green SUM Credit")
        engine.patterns("Green SUM Credit")
        assert engine.metrics.counter("pattern_cache_hits") == 1
        assert engine.metrics.counter("pattern_cache_misses") == 1

    def test_cached_compile_is_faster_second_time(self, tpch_db):
        import time

        engine = KeywordSearchEngine(tpch_db)
        start = time.perf_counter()
        engine.compile("COUNT part GROUPBY supplier")
        cold = time.perf_counter() - start
        start = time.perf_counter()
        engine.compile("COUNT part GROUPBY supplier")
        warm = time.perf_counter() - start
        assert warm < cold  # pattern generation dominates compile time


class TestDeclaredFdValidation:
    def test_valid_fds_pass(self, enrolment_db, enrolment_fds):
        validate_declared_fds(enrolment_db, enrolment_fds)

    def test_violated_fd_detected(self, enrolment_db):
        with pytest.raises(NormalizationError):
            validate_declared_fds(
                enrolment_db, {"Enrolment": ["Sname -> Sid"]}
            )  # the two Greens have different Sids

    def test_engine_check_fds_flag(self, enrolment_db):
        with pytest.raises(NormalizationError):
            KeywordSearchEngine(
                enrolment_db,
                fds={"Enrolment": ["Sid -> Sname, Age", "Grade -> Sid"]},
                check_fds=True,
            )

    def test_engine_check_fds_accepts_valid(self, enrolment_db, enrolment_fds):
        engine = KeywordSearchEngine(
            enrolment_db, fds=enrolment_fds, check_fds=True
        )
        assert not engine.is_normalized

    def test_empty_fds_trivially_valid(self, university_db):
        validate_declared_fds(university_db, None)
        validate_declared_fds(university_db, {})
