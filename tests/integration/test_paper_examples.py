"""End-to-end reproduction of every worked example in the paper (Q1-Q5,
Examples 1-10), asserted with the paper's literal numbers."""

import pytest

from repro.sql.render import render


def interpretation(engine, text, distinguish=None):
    result = engine.search(text)
    if distinguish is None:
        return result.best
    chosen = result.find(distinguishes=distinguish)
    assert chosen is not None
    return chosen


class TestQ1:
    """Q1 = {Green SUM Credit}: total credits per student named Green."""

    def test_semantic_answers(self, university_engine):
        chosen = interpretation(university_engine, "Green SUM Credit", True)
        assert chosen.execute().sorted_rows() == [("s2", 5.0), ("s3", 8.0)]

    def test_undistinguished_variant_matches_sqak(self, university_engine):
        chosen = interpretation(university_engine, "Green SUM Credit", False)
        assert chosen.execute().rows == [(13.0,)]

    def test_sqak_answer(self, university_sqak):
        assert university_sqak.execute("Green SUM Credit").rows == [
            ("Green", 13.0)
        ]


class TestQ2:
    """Q2 = {Java SUM Price}: textbook b1 must not be counted twice."""

    def test_semantic_answer_is_25(self, university_engine):
        chosen = interpretation(university_engine, "Java SUM Price")
        assert chosen.execute().rows == [(25.0,)]

    def test_distinct_projection_in_sql(self, university_engine):
        chosen = interpretation(university_engine, "Java SUM Price")
        assert "SELECT DISTINCT Code, Bid FROM Teach" in chosen.sql_compact

    def test_sqak_answer_is_35(self, university_sqak):
        assert university_sqak.execute("Java SUM Price").rows[0][1] == 35.0


class TestQ3:
    """Q3 = {Engineering COUNT Department} on the Figure-2 database."""

    def test_semantic_answer_is_1(self, fig2_engine):
        chosen = interpretation(fig2_engine, "Engineering COUNT Department")
        assert chosen.execute().rows == [(1,)]

    def test_semantic_sql_deduplicates_lecturer(self, fig2_engine):
        chosen = interpretation(fig2_engine, "Engineering COUNT Department")
        assert "SELECT DISTINCT Did, Fid FROM Lecturer" in chosen.sql_compact

    def test_sqak_answer_is_2(self, fig2_db):
        from repro.baselines import SqakEngine

        assert SqakEngine(fig2_db).execute(
            "Engineering COUNT Department"
        ).rows == [("Engineering", 2)]


class TestQ4:
    """Q4 = {Green George COUNT Code} (Examples 1, 3, 5)."""

    def test_distinguished_answers(self, university_engine):
        chosen = interpretation(
            university_engine, "Green George COUNT Code", True
        )
        # s2 shares c1 with George; s3 shares c1 and c3
        assert chosen.execute().sorted_rows() == [("s2", 1), ("s3", 2)]

    def test_example5_sql_shape(self, university_engine):
        chosen = interpretation(
            university_engine, "Green George COUNT Code", True
        )
        sql = chosen.sql_compact
        assert "GROUP BY S1.Sid" in sql
        assert sql.count("Student") == 2 and sql.count("Enrol") == 2
        assert "COUNT(C1.Code) AS numCode" in sql

    def test_undistinguished_counts_all(self, university_engine):
        chosen = interpretation(
            university_engine, "Green George COUNT Code", False
        )
        assert chosen.execute().rows == [(3,)]


class TestQ5:
    """Q5 = {COUNT Lecturer GROUPBY Course} (Examples 2, 4, 6)."""

    def test_answers(self, university_engine):
        chosen = interpretation(university_engine, "COUNT Lecturer GROUPBY Course")
        assert chosen.execute().sorted_rows() == [
            ("c1", 2),
            ("c2", 1),
            ("c3", 1),
        ]

    def test_example6_sql_shape(self, university_engine):
        chosen = interpretation(university_engine, "COUNT Lecturer GROUPBY Course")
        sql = chosen.sql_compact
        assert "SELECT DISTINCT Code, Lid FROM Teach" in sql
        assert "GROUP BY C1.Code" in sql
        assert "COUNT(L1.Lid) AS numLid" in sql


class TestExample7:
    """{AVG COUNT Lecturer GROUPBY Course}: nested aggregate."""

    def test_answer_is_four_thirds(self, university_engine):
        chosen = interpretation(
            university_engine, "AVG COUNT Lecturer GROUPBY Course"
        )
        assert chosen.execute().scalar() == pytest.approx(4 / 3)

    def test_sql_is_nested(self, university_engine):
        chosen = interpretation(
            university_engine, "AVG COUNT Lecturer GROUPBY Course"
        )
        sql = chosen.sql_compact
        assert "AVG(numLid)" in sql
        assert sql.count("SELECT") == 3  # outer, inner, DISTINCT projection


class TestCountStudentGroupbyCourse:
    """The Section-2 example {COUNT Student GROUPBY Course}."""

    def test_answers(self, university_engine):
        chosen = interpretation(
            university_engine, "COUNT Student GROUPBY Course"
        )
        assert chosen.execute().sorted_rows() == [
            ("c1", 3),
            ("c2", 1),
            ("c3", 2),
        ]


class TestExamples9And10:
    """Q4 on the unnormalized Figure-8 database."""

    def test_answers_unchanged(self, enrolment_engine):
        chosen = interpretation(
            enrolment_engine, "Green George COUNT Code", True
        )
        assert chosen.execute().sorted_rows() == [("s2", 1), ("s3", 2)]

    def test_example10_rewritten_sql(self, enrolment_engine):
        chosen = interpretation(
            enrolment_engine, "Green George COUNT Code", True
        )
        sql = chosen.sql_compact
        # Rule 3 collapsed the five subqueries into two Enrolment scans
        assert sql.count("Enrolment") == 2
        assert "(SELECT" not in sql
        assert "GROUP BY" in sql

    def test_unrewritten_sql_has_subqueries(self, enrolment_db, enrolment_fds):
        from repro.engine import KeywordSearchEngine

        engine = KeywordSearchEngine(
            enrolment_db, fds=enrolment_fds, rewrite_sql=False
        )
        result = engine.search("Green George COUNT Code")
        chosen = result.find(distinguishes=True)
        sql = chosen.sql_compact
        assert sql.count("(SELECT") >= 4  # Example 9's subquery shape
        # both forms compute the same answers
        assert chosen.execute().sorted_rows() == [("s2", 1), ("s3", 2)]


class TestLecturerGeorgeContext:
    """Section 2's context example: {Lecturer George}."""

    def test_top_pattern_is_single_lecturer_node(self, university_engine):
        patterns = university_engine.patterns("Lecturer George")
        best = patterns[0]
        assert [n.orm_node for n in best.nodes] == ["Lecturer"]
        assert best.nodes[0].conditions[0].phrase == "George"
