"""Unit tests for the tracer, trace tree and metrics registry."""

from __future__ import annotations

import json
import threading

from repro.observability import (
    NULL_TRACER,
    MetricsRegistry,
    Span,
    Trace,
    Tracer,
    format_stage_table,
)


# ----------------------------------------------------------------------
# Span nesting
# ----------------------------------------------------------------------
def test_span_nesting_builds_a_tree():
    tracer = Tracer()
    with tracer.span("search", query="q"):
        with tracer.span("match"):
            pass
        with tracer.span("generate"):
            with tracer.span("inner"):
                pass
    trace = tracer.trace
    assert trace.root.name == "search"
    assert [child.name for child in trace.root.children] == ["match", "generate"]
    generate = trace.find("generate")
    assert [child.name for child in generate.children] == ["inner"]
    assert trace.root.attributes == {"query": "q"}


def test_every_span_gets_a_monotonic_duration():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    for span in tracer.trace.root.walk():
        assert span.duration is not None
        assert span.duration >= 0.0
    outer = tracer.trace.root
    assert outer.duration >= outer.children[0].duration


def test_late_span_attaches_under_the_finished_root():
    tracer = Tracer()
    with tracer.span("search"):
        pass
    # lazy execution after search() returned: same tree
    with tracer.span("execute"):
        tracer.count("rows_output", 3)
    names = [child.name for child in tracer.trace.root.children]
    assert names == ["execute"]
    assert tracer.trace.counter("rows_output") == 3


def test_counters_attach_to_the_innermost_open_span():
    tracer = Tracer()
    with tracer.span("search"):
        tracer.count("outer_counter")
        with tracer.span("generate"):
            tracer.count("patterns_generated", 2)
            tracer.count("patterns_generated", 1)
    trace = tracer.trace
    assert trace.root.counters == {"outer_counter": 1}
    assert trace.find("generate").counters == {"patterns_generated": 3}
    # tree-level aggregation
    assert trace.counter("patterns_generated") == 3
    assert trace.counters() == {"outer_counter": 1, "patterns_generated": 3}


def test_stage_times_sums_same_named_children():
    root = Span("search")
    first, second = Span("execute"), Span("execute")
    first.duration, second.duration = 0.25, 0.5
    match = Span("match")
    match.duration = 0.1
    root.children = [match, first, second]
    root.finish()
    times = Trace(root).stage_times()
    assert times["execute"] == 0.75
    assert times["match"] == 0.1


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def test_trace_json_round_trip():
    tracer = Tracer()
    with tracer.span("search", query="COUNT Lecturer GROUPBY Course"):
        with tracer.span("generate"):
            tracer.count("patterns_generated", 4)
        with tracer.span("execute"):
            tracer.count("rows_scanned", 100)
    trace = tracer.trace
    restored = Trace.from_json(trace.to_json())
    assert restored.to_dict() == trace.to_dict()
    assert restored.root.name == "search"
    assert restored.find("generate").counters == {"patterns_generated": 4}
    assert restored.counter("rows_scanned") == 100
    # durations survive (serialized as milliseconds)
    assert restored.root.duration is not None
    assert abs(restored.root.duration - trace.root.duration) < 1e-6


def test_trace_json_is_plain_sorted_json():
    tracer = Tracer()
    with tracer.span("search"):
        pass
    payload = json.loads(tracer.trace.to_json(indent=2))
    assert payload["name"] == "search"
    assert "duration_ms" in payload


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_shows_timings_and_counters():
    tracer = Tracer()
    with tracer.span("search", query="q"):
        with tracer.span("match"):
            tracer.count("terms_matched", 2)
        with tracer.span("translate"):
            pass
    text = tracer.trace.render()
    lines = text.splitlines()
    assert lines[0].startswith("search")
    assert "ms" in lines[0]
    assert any("match" in line and "terms_matched=2" in line for line in lines)
    assert any(line.startswith("`-- translate") for line in lines)


# ----------------------------------------------------------------------
# Null tracer
# ----------------------------------------------------------------------
def test_null_tracer_is_a_complete_no_op():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.trace is None
    with NULL_TRACER.span("anything", attr=1) as span:
        assert span is None
        NULL_TRACER.count("whatever", 10)
    assert NULL_TRACER.trace is None


def test_null_tracer_reuses_one_handle():
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
def test_registry_counters_and_timings():
    registry = MetricsRegistry()
    registry.increment("rows_scanned", 10)
    registry.increment("rows_scanned", 5)
    registry.observe("span.match", 0.25)
    registry.observe("span.match", 0.75)
    assert registry.counter("rows_scanned") == 15
    assert registry.counter("unknown") == 0
    timing = registry.timing("span.match")
    assert timing["count"] == 2
    assert timing["total_s"] == 1.0
    assert timing["min_s"] == 0.25
    assert timing["max_s"] == 0.75
    assert registry.timing("unknown") is None


def test_registry_json_round_trip():
    registry = MetricsRegistry()
    registry.increment("patterns_generated", 7)
    registry.observe("span.generate", 0.5)
    restored = MetricsRegistry.from_json(registry.to_json())
    assert restored.snapshot() == registry.snapshot()


def test_registry_reset():
    registry = MetricsRegistry()
    registry.increment("x")
    registry.observe("y", 1.0)
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "timings": {}}


def test_registry_is_thread_safe():
    registry = MetricsRegistry()

    def bump():
        for _ in range(1000):
            registry.increment("hits")
            registry.observe("t", 0.001)

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("hits") == 8000
    assert registry.timing("t")["count"] == 8000


def test_tracer_reports_into_its_registry():
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    with tracer.span("search"):
        with tracer.span("match"):
            tracer.count("terms_matched", 3)
    assert registry.counter("terms_matched") == 3
    assert registry.timing("span.match")["count"] == 1
    assert registry.timing("span.search")["count"] == 1


# ----------------------------------------------------------------------
# Stage table formatting
# ----------------------------------------------------------------------
def test_format_stage_table():
    tracer = Tracer()
    with tracer.span("search"):
        with tracer.span("match"):
            tracer.count("terms_matched", 2)
        with tracer.span("generate"):
            tracer.count("patterns_generated", 3)
    table = format_stage_table("Breakdown", [tracer.trace])
    assert "Breakdown" in table
    assert "match" in table and "generate" in table
    assert "patterns_generated=3" in table
    # stage order follows the pipeline, not the alphabet
    assert table.index("match") < table.index("generate")
