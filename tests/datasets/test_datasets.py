"""Tests that the synthetic datasets plant exactly the shapes the paper's
evaluation depends on."""

import pytest

from repro.datasets import (
    AcmdlConfig,
    TpchConfig,
    generate_acmdl,
    generate_tpch,
)


class TestUniversity:
    def test_row_counts_match_figure1(self, university_db):
        assert university_db.row_counts() == {
            "Student": 3,
            "Course": 3,
            "Enrol": 6,
            "Textbook": 4,
            "Faculty": 1,
            "Department": 1,
            "Lecturer": 2,
            "Teach": 6,
        }

    def test_two_students_named_green(self, university_db):
        names = university_db.table("Student").column_values("Sname")
        assert names.count("Green") == 2

    def test_foreign_keys_hold(self, university_db):
        university_db.check_foreign_keys()

    def test_enrolment_is_join_of_figure1(self, enrolment_db, university_db):
        # Figure 8 = Student x Enrol x Course
        assert len(enrolment_db.table("Enrolment")) == len(
            university_db.table("Enrol")
        )


class TestTpchShapes:
    def test_determinism(self):
        first = generate_tpch(TpchConfig(seed=42, orders=50, parts=40))
        second = generate_tpch(TpchConfig(seed=42, orders=50, parts=40))
        assert first.table("Lineitem").rows == second.table("Lineitem").rows

    def test_planted_part_names(self, tpch_db):
        names = tpch_db.table("Part").column_values("pname")
        assert names.count("royal olive") == 8
        assert names.count("yellow tomato") == 13
        assert names.count("Indian black chocolate") == 1
        assert names.count("pink rose") == 2
        assert names.count("white rose") == 2

    def test_chocolate_supplier_shape(self, tpch_db):
        # exactly 4 distinct suppliers across many line items (T5)
        parts = tpch_db.table("Part")
        chocolate = next(
            row[0] for row in parts.rows if row[1] == "Indian black chocolate"
        )
        items = [
            row for row in tpch_db.table("Lineitem").rows if row[0] == chocolate
        ]
        assert len({row[1] for row in items}) == 4
        assert len(items) == 22

    def test_every_order_has_line_items(self, tpch_db):
        covered = {row[2] for row in tpch_db.table("Lineitem").rows}
        assert covered == set(tpch_db.table("Order").column_values("orderkey"))

    def test_every_planted_part_ordered(self, tpch_db):
        parts = tpch_db.table("Part")
        planted = {
            row[0]
            for row in parts.rows
            if row[1] in ("royal olive", "yellow tomato")
        }
        ordered = {row[0] for row in tpch_db.table("Lineitem").rows}
        assert planted <= ordered

    def test_foreign_keys_hold(self, tpch_db):
        tpch_db.check_foreign_keys()


class TestAcmdlShapes:
    def test_determinism(self):
        first = generate_acmdl(AcmdlConfig(seed=7, papers=60))
        second = generate_acmdl(AcmdlConfig(seed=7, papers=60))
        assert first.table("Write").rows == second.table("Write").rows

    def test_planted_names(self, acmdl_db):
        editors = acmdl_db.table("Editor").column_values("lname")
        assert editors.count("Smith") == 7
        authors = acmdl_db.table("Author").column_values("lname")
        assert authors.count("Gill") == 6

    def test_ieee_publishers(self, acmdl_db):
        names = acmdl_db.table("Publisher").column_values("name")
        assert sum("IEEE" in name for name in names) == 4

    def test_tuning_titles_shape(self, acmdl_db):
        # six papers, four distinct title strings (A5)
        titles = [
            row[3]
            for row in acmdl_db.table("Paper").rows
            if "database tuning" in row[3]
        ]
        assert len(titles) == 6
        assert len(set(titles)) == 4

    def test_tuning_author_counts_match_paper(self, acmdl_db):
        # the paper's exact A5 answer multiset: 2,2,2,6,2,2
        tuning_ids = [
            row[0]
            for row in acmdl_db.table("Paper").rows
            if "database tuning" in row[3]
        ]
        write = acmdl_db.table("Write").rows
        counts = sorted(
            sum(1 for pid, _ in write if pid == paper) for paper in tuning_ids
        )
        assert counts == [2, 2, 2, 2, 2, 6]

    def test_sigir_cikm_shared_editors(self, acmdl_db):
        procs = {row[0]: row[1] for row in acmdl_db.table("Proceeding").rows}
        edits = acmdl_db.table("Edit").rows
        sigir_editors = {
            e for e, p in edits if procs[p].startswith("SIGIR")
        }
        cikm_editors = {e for e, p in edits if procs[p].startswith("CIKM")}
        assert len(sigir_editors & cikm_editors) == 2

    def test_every_proceeding_edited_and_every_paper_written(self, acmdl_db):
        edited = {p for _, p in acmdl_db.table("Edit").rows}
        assert edited == set(
            acmdl_db.table("Proceeding").column_values("procid")
        )
        written = {p for p, _ in acmdl_db.table("Write").rows}
        assert written == set(acmdl_db.table("Paper").column_values("paperid"))

    def test_foreign_keys_hold(self, acmdl_db):
        acmdl_db.check_foreign_keys()


class TestDenormalization:
    def test_ordering_row_per_lineitem(self, tpch_unnorm, tpch_db):
        assert len(tpch_unnorm.database.table("Ordering")) == len(
            tpch_db.table("Lineitem")
        )

    def test_ordering_contains_part_and_order_attributes(self, tpch_unnorm, tpch_db):
        ordering = tpch_unnorm.database.table("Ordering")
        schema = ordering.schema
        row = ordering.rows[0]
        partkey = row[schema.column_index("partkey")]
        pname = row[schema.column_index("pname")]
        part = tpch_db.table("Part").get_by_key((partkey,))
        assert part[1] == pname

    def test_customer_gains_regionkey(self, tpch_unnorm, tpch_db):
        customer = tpch_unnorm.database.table("Customer")
        schema = customer.schema
        nations = {
            row[0]: row[2] for row in tpch_db.table("Nation").rows
        }
        for row in customer.rows:
            assert row[schema.column_index("regionkey")] == nations[
                row[schema.column_index("nationkey")]
            ]

    def test_paperauthor_row_per_write(self, acmdl_unnorm, acmdl_db):
        assert len(acmdl_unnorm.database.table("PaperAuthor")) == len(
            acmdl_db.table("Write")
        )

    def test_ptitle_renamed_title(self, acmdl_unnorm):
        schema = acmdl_unnorm.database.table("PaperAuthor").schema
        assert schema.has_column("title")
        assert not schema.has_column("ptitle")

    def test_declared_fds_hold_on_data(self, tpch_unnorm, acmdl_unnorm):
        from repro.fd import FunctionalDependency, holds

        for dataset in (tpch_unnorm, acmdl_unnorm):
            for relation, fd_texts in dataset.fds.items():
                table = dataset.database.table(relation)
                for text in fd_texts:
                    fd = FunctionalDependency.parse(text)
                    assert holds(table, fd), f"{relation}: {text}"
