"""Unit tests for hash and inverted indexes."""

import pytest

from repro.relational.index import HashIndex, InvertedIndex, tokenize_text
from repro.relational.schema import Column, RelationSchema
from repro.relational.table import Table
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


def make_parts() -> Table:
    schema = RelationSchema(
        "Part", [Column("partkey", INT), Column("pname", TEXT)], ["partkey"]
    )
    table = Table(schema)
    table.extend(
        [
            (1, "royal olive"),
            (2, "royal olive"),
            (3, "olive branch"),
            (4, "Indian black chocolate"),
            (5, None),
        ]
    )
    return table


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize_text("Royal Olive") == ["royal", "olive"]

    def test_strips_punctuation(self):
        assert tokenize_text("a-b, c.d!") == ["a", "b", "c", "d"]

    def test_keeps_digits(self):
        assert tokenize_text("Supplier#0042") == ["supplier", "0042"]

    def test_empty(self):
        assert tokenize_text("  ") == []


class TestHashIndex:
    def test_lookup(self):
        table = make_parts()
        index = HashIndex(table, ["pname"])
        assert len(index.lookup(("royal olive",))) == 2
        assert index.lookup(("missing",)) == []

    def test_composite_key(self):
        table = make_parts()
        index = HashIndex(table, ["partkey", "pname"])
        assert len(index.lookup((1, "royal olive"))) == 1

    def test_null_values_indexed_separately(self):
        table = make_parts()
        index = HashIndex(table, ["pname"])
        assert len(index.lookup((None,))) == 1


class TestInvertedIndex:
    @pytest.fixture
    def index(self) -> InvertedIndex:
        idx = InvertedIndex()
        idx.add_table(make_parts())
        return idx

    def test_single_token(self, index):
        matches = index.match_phrase("olive")
        assert len(matches) == 1
        match = matches[0]
        assert match.relation == "Part"
        assert match.attribute == "pname"
        assert match.row_positions == {0, 1, 2}

    def test_phrase_requires_adjacency_by_substring(self, index):
        matches = index.match_phrase("royal olive")
        assert matches[0].row_positions == {0, 1}

    def test_phrase_not_matching_scattered_tokens(self, index):
        # 'olive royal' tokens both exist but never as a substring
        assert index.match_phrase("olive royal") == []

    def test_case_insensitive(self, index):
        matches = index.match_phrase("INDIAN BLACK")
        assert matches[0].row_positions == {3}

    def test_unknown_token(self, index):
        assert index.match_phrase("zzz") == []

    def test_empty_phrase(self, index):
        assert index.match_phrase("") == []

    def test_matching_values(self, index):
        values = index.matching_values("Part", "pname", "royal")
        assert values == {"royal olive"}

    def test_int_columns_not_indexed(self):
        idx = InvertedIndex()
        idx.add_table(make_parts())
        # '1' appears only as an INT partkey, never as text
        assert idx.match_phrase("1") == []
