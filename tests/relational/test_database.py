"""Unit tests for the Database facade (loading, FK checking, indexes)."""

import pytest

from repro.errors import ForeignKeyError, UnknownTableError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


def make_db() -> Database:
    schema = DatabaseSchema("toy")
    schema.add_relation("Parent", [("pid", INT), ("name", TEXT)], ["pid"])
    schema.add_relation(
        "Child",
        [("cid", INT), ("pid", INT)],
        ["cid"],
        [ForeignKey(("pid",), "Parent", ("pid",))],
    )
    return Database(schema)


class TestLoading:
    def test_load_and_counts(self):
        db = make_db()
        db.load("Parent", [(1, "a"), (2, "b")])
        db.load("Child", [(10, 1)])
        assert db.row_counts() == {"Parent": 2, "Child": 1}

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            make_db().table("Nope")

    def test_contains(self):
        db = make_db()
        assert "Parent" in db
        assert "Nope" not in db

    def test_insert_dict(self):
        db = make_db()
        db.insert_dict("Parent", {"pid": 1, "name": "x"})
        assert len(db.table("Parent")) == 1


class TestForeignKeys:
    def test_valid_references_pass(self):
        db = make_db()
        db.load("Parent", [(1, "a")])
        db.load("Child", [(10, 1)])
        db.check_foreign_keys()

    def test_dangling_reference_fails(self):
        db = make_db()
        db.load("Parent", [(1, "a")])
        db.load("Child", [(10, 99)])
        with pytest.raises(ForeignKeyError):
            db.check_foreign_keys()

    def test_null_fk_allowed(self):
        db = make_db()
        db.load("Parent", [(1, "a")])
        db.load("Child", [(10, None)])
        db.check_foreign_keys()


class TestIndexes:
    def test_text_index_lazily_built_and_invalidated(self):
        db = make_db()
        db.load("Parent", [(1, "apple pie")])
        assert db.text_index.match_phrase("apple")[0].relation == "Parent"
        db.load("Parent", [(2, "apple cake")])
        hits = db.text_index.match_phrase("apple")
        assert hits[0].row_positions == {0, 1}

    def test_hash_index_cached(self):
        db = make_db()
        db.load("Parent", [(1, "a")])
        first = db.hash_index("Parent", ["pid"])
        second = db.hash_index("Parent", ["pid"])
        assert first is second

    def test_summary_mentions_tables(self):
        db = make_db()
        text = db.summary()
        assert "Parent" in text and "Child" in text
