"""Unit tests for the value model (coercion, inference, widening)."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import (
    DataType,
    coerce,
    common_type,
    infer_type,
    is_numeric,
)


class TestCoerce:
    def test_none_passes_through_any_type(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_int_accepts_int(self):
        assert coerce(7, DataType.INT) == 7

    def test_int_accepts_integral_float(self):
        assert coerce(7.0, DataType.INT) == 7

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce(7.5, DataType.INT)

    def test_int_accepts_numeric_string(self):
        assert coerce("42", DataType.INT) == 42

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, DataType.INT)

    def test_float_widens_int(self):
        value = coerce(3, DataType.FLOAT)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_accepts_string(self):
        assert coerce("2.5", DataType.FLOAT) == 2.5

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(False, DataType.FLOAT)

    def test_float_rejects_garbage_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("abc", DataType.FLOAT)

    def test_text_accepts_string(self):
        assert coerce("hello", DataType.TEXT) == "hello"

    def test_text_stringifies_numbers(self):
        assert coerce(12, DataType.TEXT) == "12"

    def test_date_accepts_iso(self):
        assert coerce("2016-03-15", DataType.DATE) == "2016-03-15"

    def test_date_rejects_non_iso(self):
        with pytest.raises(TypeMismatchError):
            coerce("15/03/2016", DataType.DATE)

    def test_date_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce(20160315, DataType.DATE)

    def test_bool_accepts_bool(self):
        assert coerce(True, DataType.BOOL) is True

    def test_bool_accepts_zero_one(self):
        assert coerce(1, DataType.BOOL) is True
        assert coerce(0, DataType.BOOL) is False

    def test_bool_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            coerce(2, DataType.BOOL)


class TestInferType:
    def test_none_is_typeless(self):
        assert infer_type(None) is None

    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOL

    def test_int(self):
        assert infer_type(3) is DataType.INT

    def test_float(self):
        assert infer_type(3.5) is DataType.FLOAT

    def test_plain_text(self):
        assert infer_type("abc") is DataType.TEXT

    def test_iso_date_string_is_date(self):
        assert infer_type("1999-12-31") is DataType.DATE

    def test_unsupported_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestCommonType:
    def test_same_type(self):
        assert common_type(DataType.INT, DataType.INT) is DataType.INT

    def test_int_float_widens(self):
        assert common_type(DataType.INT, DataType.FLOAT) is DataType.FLOAT

    def test_date_text_widens(self):
        assert common_type(DataType.DATE, DataType.TEXT) is DataType.TEXT

    def test_incompatible_raises(self):
        with pytest.raises(TypeMismatchError):
            common_type(DataType.INT, DataType.TEXT)


def test_is_numeric():
    assert is_numeric(DataType.INT)
    assert is_numeric(DataType.FLOAT)
    assert not is_numeric(DataType.TEXT)
    assert not is_numeric(DataType.DATE)
    assert not is_numeric(DataType.BOOL)
