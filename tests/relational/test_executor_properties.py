"""Property-based tests: the executor against a pure-Python oracle.

Random small tables and random (structured) queries; each engine answer is
recomputed with plain Python over the same rows.  Also checks that the
hash-join planner and the naive cartesian planner always agree.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.schema import DatabaseSchema, ForeignKey
from repro.relational.types import DataType
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    TableRef,
    agg,
    eq,
)

INT = DataType.INT
TEXT = DataType.TEXT

names = st.sampled_from(["alpha", "beta", "gamma", "delta"])
maybe_values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))


def build_database(
    left_rows: List[Tuple[int, Optional[int], str]],
    right_rows: List[Tuple[int, int, Optional[int]]],
) -> Database:
    schema = DatabaseSchema("prop")
    schema.add_relation(
        "L", [("lid", INT), ("val", INT), ("tag", TEXT)], ["lid"]
    )
    schema.add_relation(
        "R",
        [("rid", INT), ("lid", INT), ("score", INT)],
        ["rid"],
    )
    db = Database(schema)
    db.load("L", [(i, v, t) for i, (k, v, t) in enumerate(left_rows)])
    # note: lid values in R intentionally may dangle; no FK is declared
    db.load("R", [(i, lid, s) for i, (k, lid, s) in enumerate(right_rows)])
    return db


left_rows_strategy = st.lists(
    st.tuples(st.integers(), maybe_values, names), min_size=0, max_size=12
)
right_rows_strategy = st.lists(
    st.tuples(st.integers(), st.integers(min_value=0, max_value=14), maybe_values),
    min_size=0,
    max_size=12,
)


@settings(max_examples=120, deadline=None)
@given(left_rows_strategy, st.integers(min_value=-5, max_value=5))
def test_filter_matches_python_oracle(rows, threshold):
    db = build_database(rows, [])
    select = Select(
        items=(SelectItem(ColumnRef("lid", "L")),),
        from_items=(TableRef.of("L"),),
        where=BinaryOp(">", ColumnRef("val", "L"), Literal(threshold)),
    )
    got = sorted(Executor(db).execute(select).rows)
    table = db.table("L").rows
    expected = sorted(
        (row[0],) for row in table if row[1] is not None and row[1] > threshold
    )
    assert got == expected


@settings(max_examples=120, deadline=None)
@given(left_rows_strategy)
def test_group_by_aggregates_match_python_oracle(rows):
    db = build_database(rows, [])
    select = Select(
        items=(
            SelectItem(ColumnRef("tag", "L")),
            SelectItem(agg("COUNT", ColumnRef("val", "L")), alias="n"),
            SelectItem(agg("SUM", ColumnRef("val", "L")), alias="s"),
            SelectItem(agg("MIN", ColumnRef("val", "L")), alias="lo"),
            SelectItem(agg("MAX", ColumnRef("val", "L")), alias="hi"),
        ),
        from_items=(TableRef.of("L"),),
        group_by=(ColumnRef("tag", "L"),),
    )
    got = {row[0]: row[1:] for row in Executor(db).execute(select).rows}

    groups = defaultdict(list)
    for row in db.table("L").rows:
        groups[row[2]].append(row[1])
    expected = {}
    for tag, values in groups.items():
        non_null = [v for v in values if v is not None]
        expected[tag] = (
            len(non_null),
            sum(non_null) if non_null else None,
            min(non_null) if non_null else None,
            max(non_null) if non_null else None,
        )
    assert got == expected


@settings(max_examples=120, deadline=None)
@given(left_rows_strategy, right_rows_strategy)
def test_equi_join_matches_nested_loop_oracle(left_rows, right_rows):
    db = build_database(left_rows, right_rows)
    select = Select(
        items=(
            SelectItem(ColumnRef("lid", "L")),
            SelectItem(ColumnRef("rid", "R")),
        ),
        from_items=(TableRef.of("L"), TableRef.of("R")),
        where=eq(ColumnRef("lid", "R"), ColumnRef("lid", "L")),
    )
    got = sorted(Executor(db).execute(select).rows)
    expected = sorted(
        (l[0], r[0])
        for l in db.table("L").rows
        for r in db.table("R").rows
        if r[1] == l[0]
    )
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(left_rows_strategy, right_rows_strategy)
def test_hash_and_naive_planners_agree(left_rows, right_rows):
    db = build_database(left_rows, right_rows)
    select = Select(
        items=(
            SelectItem(ColumnRef("tag", "L")),
            SelectItem(agg("COUNT", ColumnRef("rid", "R")), alias="n"),
            SelectItem(agg("SUM", ColumnRef("score", "R")), alias="s"),
        ),
        from_items=(TableRef.of("L"), TableRef.of("R")),
        where=eq(ColumnRef("lid", "R"), ColumnRef("lid", "L")),
        group_by=(ColumnRef("tag", "L"),),
    )
    fast = Executor(db, use_hash_joins=True).execute(select)
    slow = Executor(db, use_hash_joins=False).execute(select)
    assert fast == slow


@settings(max_examples=120, deadline=None)
@given(left_rows_strategy)
def test_distinct_matches_set_semantics(rows):
    db = build_database(rows, [])
    select = Select(
        items=(SelectItem(ColumnRef("tag", "L")), SelectItem(ColumnRef("val", "L"))),
        from_items=(TableRef.of("L"),),
        distinct=True,
    )
    got = Executor(db).execute(select).rows
    expected = {(row[2], row[1]) for row in db.table("L").rows}
    assert len(got) == len(set(got))
    assert set(got) == expected


@settings(max_examples=80, deadline=None)
@given(left_rows_strategy)
def test_count_distinct_matches_oracle(rows):
    db = build_database(rows, [])
    select = Select(
        items=(
            SelectItem(
                agg("COUNT", ColumnRef("val", "L"), distinct=True), alias="n"
            ),
        ),
        from_items=(TableRef.of("L"),),
    )
    got = Executor(db).execute(select).scalar()
    expected = len(
        {row[1] for row in db.table("L").rows if row[1] is not None}
    )
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(left_rows_strategy)
def test_derived_table_equals_direct_query(rows):
    """Wrapping a table scan in a derived table must not change anything."""
    from repro.sql.ast import DerivedTable

    db = build_database(rows, [])
    inner = Select(
        items=(
            SelectItem(ColumnRef("lid"), alias="lid"),
            SelectItem(ColumnRef("val"), alias="val"),
        ),
        from_items=(TableRef.of("L"),),
    )
    wrapped = Select(
        items=(SelectItem(agg("SUM", ColumnRef("val", "D")), alias="s"),),
        from_items=(DerivedTable(inner, "D"),),
    )
    direct = Select(
        items=(SelectItem(agg("SUM", ColumnRef("val", "L")), alias="s"),),
        from_items=(TableRef.of("L"),),
    )
    executor = Executor(db)
    assert executor.execute(wrapped) == executor.execute(direct)
