"""Cooperative cancellation: token semantics and mid-query aborts.

The acceptance test for the serving layer's deadlines lives here: a
query with a short deadline against a deliberately explosive join must
abort at a checkpoint *while running* — long before the join would have
completed — in both the compiled-plan and interpreted executor paths.
"""

from __future__ import annotations

import time

import pytest

from repro.cancellation import (
    CHECK_STRIDE,
    NULL_TOKEN,
    CancellationToken,
    cancellation_scope,
    current_token,
)
from repro.errors import DeadlineExceededError
from repro.relational.algebra import Rowset, cross_join, hash_join, select_rows
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.sql.ast import BinaryOp, ColumnRef, Literal


class TestCancellationToken:
    def test_fresh_token_passes_checks(self):
        token = CancellationToken()
        token.check()
        assert not token.expired()
        assert token.remaining() is None
        assert token.deadline is None

    def test_cancel_trips_check(self):
        token = CancellationToken(reason="test shutdown")
        token.cancel()
        assert token.cancelled and token.expired()
        with pytest.raises(DeadlineExceededError, match="test shutdown"):
            token.check()

    def test_cancel_can_update_reason(self):
        token = CancellationToken()
        token.cancel(reason="drained")
        with pytest.raises(DeadlineExceededError, match="drained"):
            token.check()

    def test_deadline_expiry(self):
        token = CancellationToken.with_timeout(0.005)
        assert token.remaining() <= 0.005
        time.sleep(0.01)
        assert token.expired()
        assert token.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_generous_deadline_passes(self):
        token = CancellationToken.with_timeout(60.0)
        token.check()
        assert not token.expired()
        assert 59.0 < token.remaining() <= 60.0

    def test_null_token_is_inert(self):
        NULL_TOKEN.check()
        assert not NULL_TOKEN.expired()
        assert NULL_TOKEN.remaining() is None
        with pytest.raises(TypeError):
            NULL_TOKEN.cancel()


class TestCancellationScope:
    def test_default_is_null_token(self):
        assert current_token() is NULL_TOKEN

    def test_scope_installs_and_restores(self):
        token = CancellationToken()
        with cancellation_scope(token) as active:
            assert active is token
            assert current_token() is token
        assert current_token() is NULL_TOKEN

    def test_scopes_nest(self):
        outer, inner = CancellationToken(), CancellationToken()
        with cancellation_scope(outer):
            with cancellation_scope(inner):
                assert current_token() is inner
            assert current_token() is outer

    def test_scope_restores_on_exception(self):
        token = CancellationToken()
        with pytest.raises(RuntimeError):
            with cancellation_scope(token):
                raise RuntimeError("boom")
        assert current_token() is NULL_TOKEN


class TestOperatorCheckpoints:
    """Cancelled tokens abort the row loops at their strides."""

    def test_select_rows_aborts(self):
        rowset = Rowset.from_labels(
            [("R", "a")], [(i,) for i in range(CHECK_STRIDE * 3)]
        )
        predicate = BinaryOp(">", ColumnRef("a"), Literal(-1))
        token = CancellationToken()
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(DeadlineExceededError):
                select_rows(rowset, predicate)

    def test_cross_join_aborts(self):
        side = Rowset.from_labels([("L", "a")], [(i,) for i in range(256)])
        other = Rowset.from_labels([("R", "b")], [(i,) for i in range(256)])
        token = CancellationToken()
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(DeadlineExceededError):
                cross_join(side, other)

    def test_hash_join_aborts(self):
        left = Rowset.from_labels(
            [("L", "k")], [(i,) for i in range(CHECK_STRIDE * 2)]
        )
        right = Rowset.from_labels(
            [("R", "k")], [(i,) for i in range(CHECK_STRIDE * 2)]
        )
        token = CancellationToken()
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(DeadlineExceededError):
                hash_join(left, right, [0], [0])

    def test_operators_unaffected_without_scope(self):
        left = Rowset.from_labels([("L", "k")], [(1,), (2,)])
        right = Rowset.from_labels([("R", "k")], [(2,), (3,)])
        assert len(hash_join(left, right, [0], [0])) == 1


def explosive_database(rows: int = 150) -> Database:
    """One table whose triple self-cross-join yields ``rows ** 3`` tuples."""
    schema = DatabaseSchema("explosive")
    schema.add_relation("T", [("id", DataType.INT)], ["id"])
    database = Database(schema)
    database.load("T", [(i,) for i in range(rows)])
    return database


# rows=150 -> 3.4M output tuples: several hundred ms of join work, so a
# 50 ms deadline must fire at a checkpoint long before completion
SLOW_SQL = "SELECT COUNT(*) FROM T A, T B, T C"
DEADLINE_S = 0.05


class TestMidQueryDeadline:
    """The ISSUE acceptance criterion: a 50 ms deadline aborts a slow
    join through the checkpoints, not after the join completes."""

    def _full_runtime(self, executor: Executor) -> float:
        started = time.perf_counter()
        executor.execute(SLOW_SQL)
        return time.perf_counter() - started

    @pytest.mark.parametrize("compile_plans", [True, False])
    def test_deadline_aborts_mid_join(self, compile_plans):
        database = explosive_database()
        executor = Executor(database, compile_plans=compile_plans)
        full = self._full_runtime(executor)
        if full < DEADLINE_S * 3:
            pytest.skip(f"machine too fast for a meaningful abort ({full:.3f}s)")
        token = CancellationToken.with_timeout(DEADLINE_S)
        started = time.perf_counter()
        with cancellation_scope(token):
            with pytest.raises(DeadlineExceededError):
                executor.execute(SLOW_SQL)
        elapsed = time.perf_counter() - started
        # aborted at a checkpoint: well under the uncancelled runtime
        assert elapsed < full * 0.8, (
            f"abort took {elapsed:.3f}s vs full run {full:.3f}s"
        )

    def test_cancelled_token_aborts_immediately(self):
        database = explosive_database(rows=30)
        executor = Executor(database)
        token = CancellationToken()
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(DeadlineExceededError):
                executor.execute(SLOW_SQL)

    def test_execution_unaffected_outside_scope(self):
        database = explosive_database(rows=20)
        executor = Executor(database)
        assert executor.execute(SLOW_SQL).scalar() == 20**3
