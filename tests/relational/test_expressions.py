"""Unit tests for scalar/aggregate expression evaluation."""

import pytest

from repro.errors import SqlExecutionError
from repro.relational.expressions import (
    Binding,
    evaluate,
    evaluate_aggregate,
    evaluate_with_aggregates,
)
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    FuncCall,
    IsNull,
    Literal,
    Star,
    agg,
)


@pytest.fixture
def binding() -> Binding:
    return Binding([("S", "Sid"), ("S", "Sname"), (None, "Age")])


ROW = ("s1", "Green", 24)


class TestBinding:
    def test_qualified_resolution(self, binding):
        assert binding.resolve(ColumnRef("Sname", "S")) == 1

    def test_unqualified_resolution(self, binding):
        assert binding.resolve(ColumnRef("Age")) == 2

    def test_case_insensitive(self, binding):
        assert binding.resolve(ColumnRef("sname", "S")) == 1

    def test_unknown_column(self, binding):
        with pytest.raises(SqlExecutionError):
            binding.resolve(ColumnRef("Nope"))

    def test_ambiguous_column(self):
        b = Binding([("A", "x"), ("B", "x")])
        with pytest.raises(SqlExecutionError):
            b.resolve(ColumnRef("x"))
        assert b.resolve(ColumnRef("x", "B")) == 1

    def test_merge(self, binding):
        merged = binding.merge(Binding([("T", "z")]))
        assert merged.resolve(ColumnRef("z", "T")) == 3

    def test_can_resolve(self, binding):
        assert binding.can_resolve(ColumnRef("Sid", "S"))
        assert not binding.can_resolve(ColumnRef("Nope"))


class TestScalarEvaluation:
    def test_literal(self, binding):
        assert evaluate(Literal(5), ROW, binding) == 5

    def test_column(self, binding):
        assert evaluate(ColumnRef("Sname", "S"), ROW, binding) == "Green"

    def test_comparison(self, binding):
        expr = BinaryOp(">", ColumnRef("Age"), Literal(21))
        assert evaluate(expr, ROW, binding) is True

    def test_comparison_with_null_is_false(self, binding):
        expr = BinaryOp("=", ColumnRef("Age"), Literal(None))
        assert evaluate(expr, ROW, binding) is False

    def test_numeric_widening_comparison(self, binding):
        expr = BinaryOp("=", Literal(24.0), ColumnRef("Age"))
        assert evaluate(expr, ROW, binding) is True

    def test_mixed_type_comparison_raises(self, binding):
        expr = BinaryOp("<", ColumnRef("Sname", "S"), Literal(3))
        with pytest.raises(SqlExecutionError):
            evaluate(expr, ROW, binding)

    def test_and_or(self, binding):
        t = BinaryOp("=", Literal(1), Literal(1))
        f = BinaryOp("=", Literal(1), Literal(2))
        assert evaluate(BinaryOp("AND", t, f), ROW, binding) is False
        assert evaluate(BinaryOp("OR", t, f), ROW, binding) is True

    def test_contains(self, binding):
        assert evaluate(Contains(ColumnRef("Sname", "S"), "gree"), ROW, binding)
        assert not evaluate(Contains(ColumnRef("Sname", "S"), "blue"), ROW, binding)

    def test_contains_null_is_false(self, binding):
        assert evaluate(Contains(ColumnRef("Sname", "S"), "x"), ("s", None, 1), binding) is False

    def test_is_null(self, binding):
        assert evaluate(IsNull(ColumnRef("Age")), ("s", "n", None), binding)
        assert evaluate(IsNull(ColumnRef("Age"), negated=True), ROW, binding)

    def test_arithmetic(self, binding):
        expr = BinaryOp("*", ColumnRef("Age"), Literal(2))
        assert evaluate(expr, ROW, binding) == 48

    def test_arithmetic_null_propagates(self, binding):
        expr = BinaryOp("+", Literal(None), Literal(1))
        assert evaluate(expr, ROW, binding) is None

    def test_division_by_zero(self, binding):
        with pytest.raises(SqlExecutionError):
            evaluate(BinaryOp("/", Literal(1), Literal(0)), ROW, binding)

    def test_aggregate_outside_group_raises(self, binding):
        with pytest.raises(SqlExecutionError):
            evaluate(agg("COUNT", ColumnRef("Age")), ROW, binding)


GROUP = [("s1", "a", 10), ("s2", "b", 20), ("s3", "c", None)]


class TestAggregates:
    def test_count_star(self, binding):
        assert evaluate_aggregate(FuncCall("COUNT", (Star(),)), GROUP, binding) == 3

    def test_count_ignores_nulls(self, binding):
        assert evaluate_aggregate(agg("COUNT", ColumnRef("Age")), GROUP, binding) == 2

    def test_count_distinct(self, binding):
        rows = [("s1", "a", 10), ("s2", "b", 10)]
        call = agg("COUNT", ColumnRef("Age"), distinct=True)
        assert evaluate_aggregate(call, rows, binding) == 1

    def test_sum_avg_min_max(self, binding):
        assert evaluate_aggregate(agg("SUM", ColumnRef("Age")), GROUP, binding) == 30
        assert evaluate_aggregate(agg("AVG", ColumnRef("Age")), GROUP, binding) == 15
        assert evaluate_aggregate(agg("MIN", ColumnRef("Age")), GROUP, binding) == 10
        assert evaluate_aggregate(agg("MAX", ColumnRef("Age")), GROUP, binding) == 20

    def test_empty_group_aggregates_are_null(self, binding):
        assert evaluate_aggregate(agg("SUM", ColumnRef("Age")), [], binding) is None
        assert evaluate_aggregate(agg("MAX", ColumnRef("Age")), [], binding) is None

    def test_count_of_empty_group_is_zero(self, binding):
        assert evaluate_aggregate(agg("COUNT", ColumnRef("Age")), [], binding) == 0

    def test_sum_over_text_raises(self, binding):
        with pytest.raises(SqlExecutionError):
            evaluate_aggregate(agg("SUM", ColumnRef("Sname", "S")), GROUP, binding)

    def test_min_max_over_dates(self, binding):
        rows = [("s1", "a", None)]
        b = Binding([(None, "d")])
        date_rows = [("2001-01-01",), ("1999-12-31",)]
        assert evaluate_aggregate(agg("MAX", ColumnRef("d")), date_rows, b) == "2001-01-01"
        assert evaluate_aggregate(agg("MIN", ColumnRef("d")), date_rows, b) == "1999-12-31"


class TestMixedEvaluation:
    def test_scalar_on_first_row(self, binding):
        value = evaluate_with_aggregates(ColumnRef("Sid", "S"), GROUP, binding)
        assert value == "s1"

    def test_aggregate(self, binding):
        value = evaluate_with_aggregates(agg("SUM", ColumnRef("Age")), GROUP, binding)
        assert value == 30

    def test_arithmetic_over_aggregates(self, binding):
        expr = BinaryOp(
            "/", agg("SUM", ColumnRef("Age")), agg("COUNT", ColumnRef("Age"))
        )
        assert evaluate_with_aggregates(expr, GROUP, binding) == 15

    def test_empty_group_scalar_is_null(self, binding):
        assert evaluate_with_aggregates(ColumnRef("Age"), [], binding) is None
