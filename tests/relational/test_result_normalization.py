"""Aggregate output types are pinned (repro.relational.result.normalize_aggregate).

Both execution paths — interpreted and compiled — must produce the same
Python types a real SQL backend would: COUNT is int, AVG is float,
SUM/MIN/MAX of an empty or all-NULL group is NULL.  The differential
harness compares types strictly, so any drift here fails `repro diff`.
"""

from __future__ import annotations

import pytest

from repro.errors import SqlExecutionError
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.result import normalize_aggregate
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType


class TestNormalizeAggregate:
    def test_count_is_always_int(self):
        assert normalize_aggregate("COUNT", True) == 1
        assert type(normalize_aggregate("COUNT", True)) is int
        assert type(normalize_aggregate("count", 5)) is int

    def test_avg_is_always_float(self):
        assert normalize_aggregate("AVG", 3) == 3.0
        assert type(normalize_aggregate("AVG", 3)) is float

    def test_null_stays_null_except_count(self):
        for func in ("SUM", "MIN", "MAX", "AVG"):
            assert normalize_aggregate(func, None) is None

    def test_sum_of_bools_widens_to_int(self):
        assert normalize_aggregate("SUM", True) == 1
        assert type(normalize_aggregate("SUM", True)) is int

    def test_sum_of_ints_stays_int(self):
        assert type(normalize_aggregate("SUM", 7)) is int
        assert type(normalize_aggregate("SUM", 7.5)) is float


def _db():
    schema = DatabaseSchema("agg")
    schema.add_relation(
        "t",
        [
            ("Id", DataType.INT),
            ("n", DataType.INT),
            ("maybe", DataType.INT),
            ("flag", DataType.BOOL),
        ],
        primary_key=("Id",),
    )
    database = Database(schema)
    database.load(
        "t",
        [
            (1, 2, None, True),
            (2, 4, None, False),
            (3, 6, None, True),
        ],
    )
    return database


@pytest.fixture(params=[True, False], ids=["compiled", "interpreted"])
def executor(request):
    return Executor(_db(), compile_plans=request.param)


class TestBothExecutionPaths:
    def test_count_of_empty_group_is_int_zero(self, executor):
        value = executor.execute("SELECT COUNT(*) FROM t WHERE Id = 0").scalar()
        assert value == 0 and type(value) is int

    def test_sum_of_empty_group_is_null(self, executor):
        assert executor.execute("SELECT SUM(n) FROM t WHERE Id = 0").scalar() is None

    def test_min_max_of_empty_group_is_null(self, executor):
        row = executor.execute(
            "SELECT MIN(n), MAX(n) FROM t WHERE Id = 0"
        ).rows[0]
        assert row == (None, None)

    def test_aggregates_over_all_null_column_are_null(self, executor):
        row = executor.execute(
            "SELECT SUM(maybe), MIN(maybe), MAX(maybe), AVG(maybe) FROM t"
        ).rows[0]
        assert row == (None, None, None, None)

    def test_avg_is_float_even_when_integral(self, executor):
        value = executor.execute("SELECT AVG(n) FROM t").scalar()
        assert value == 4.0 and type(value) is float

    def test_count_never_leaks_bool(self, executor):
        value = executor.execute("SELECT COUNT(flag) FROM t").scalar()
        assert value == 3 and type(value) is int

    def test_sum_over_bool_column_is_rejected(self, executor):
        # deliberate policy, enforced statically too (S010): SUM/AVG over
        # a boolean attribute is a translation bug, so the pipeline can
        # never ship such a statement to a backend that would accept it.
        with pytest.raises(SqlExecutionError, match="non-numeric"):
            executor.execute("SELECT SUM(flag) FROM t")

    def test_grouped_aggregates_normalized_per_group(self, executor):
        result = executor.execute(
            "SELECT flag, AVG(n), COUNT(*) FROM t GROUP BY flag"
        )
        for _, avg, count in result.rows:
            assert type(avg) is float
            assert type(count) is int
