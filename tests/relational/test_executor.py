"""Integration-grade tests for the SQL executor against the university DB.

These use SQL text (exercising lexer + parser + executor together) and
assert against hand-computed answers over the Figure 1 data.
"""

import pytest

from repro.errors import SqlExecutionError
from repro.relational.executor import execute_sql


class TestBasicSelect:
    def test_full_scan(self, university_db):
        result = execute_sql(university_db, "SELECT Sid FROM Student")
        assert sorted(result.column("Sid")) == ["s1", "s2", "s3"]

    def test_filter_equality(self, university_db):
        result = execute_sql(
            university_db, "SELECT Sid FROM Student WHERE Sname = 'Green'"
        )
        assert sorted(result.column("Sid")) == ["s2", "s3"]

    def test_filter_contains(self, university_db):
        result = execute_sql(
            university_db, "SELECT Sid FROM Student WHERE Sname LIKE '%reen%'"
        )
        assert sorted(result.column("Sid")) == ["s2", "s3"]

    def test_filter_comparison(self, university_db):
        result = execute_sql(
            university_db, "SELECT Sname FROM Student WHERE Age >= 22"
        )
        assert sorted(result.column("Sname")) == ["George", "Green"]

    def test_projection_alias(self, university_db):
        result = execute_sql(university_db, "SELECT Sname AS name FROM Student")
        assert result.columns == ("name",)

    def test_distinct(self, university_db):
        result = execute_sql(university_db, "SELECT DISTINCT Sname FROM Student")
        assert sorted(result.column("Sname")) == ["George", "Green"]

    def test_order_by_and_limit(self, university_db):
        result = execute_sql(
            university_db, "SELECT Sname FROM Student ORDER BY Sname LIMIT 2"
        )
        assert result.column("Sname") == ["George", "Green"]

    def test_order_by_desc(self, university_db):
        result = execute_sql(
            university_db, "SELECT Age FROM Student ORDER BY Age DESC"
        )
        assert result.column("Age") == [24, 22, 21]


class TestJoins:
    def test_two_way_join(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT S.Sname, C.Title FROM Student S, Enrol E, Course C "
            "WHERE E.Sid = S.Sid AND E.Code = C.Code AND C.Title = 'Database'",
        )
        assert result.rows == [("George", "Database")]

    def test_self_join(self, university_db):
        # pairs of different students enrolled in the same course
        result = execute_sql(
            university_db,
            "SELECT DISTINCT S1.Sid, S2.Sid FROM Student S1, Enrol E1, "
            "Enrol E2, Student S2 WHERE E1.Sid = S1.Sid AND E2.Sid = S2.Sid "
            "AND E1.Code = E2.Code AND S1.Sid < S2.Sid",
        )
        assert sorted(result.rows) == [("s1", "s2"), ("s1", "s3"), ("s2", "s3")]

    def test_cartesian_product_when_no_join_condition(self, university_db):
        result = execute_sql(
            university_db, "SELECT F.Fname, D.Dname FROM Faculty F, Department D"
        )
        assert result.rows == [("Engineering", "CS")]

    def test_duplicate_alias_rejected(self, university_db):
        with pytest.raises(SqlExecutionError):
            execute_sql(
                university_db, "SELECT S.Sid FROM Student S, Course S"
            )

    def test_unknown_column_rejected(self, university_db):
        with pytest.raises(SqlExecutionError):
            execute_sql(university_db, "SELECT Nope FROM Student")

    def test_ambiguous_column_rejected(self, university_db):
        with pytest.raises(SqlExecutionError):
            execute_sql(
                university_db, "SELECT Sid FROM Student S, Enrol E"
            )


class TestAggregation:
    def test_global_aggregates(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT COUNT(Sid) AS n, AVG(Age) AS a, MIN(Age) AS lo, "
            "MAX(Age) AS hi FROM Student",
        )
        assert result.rows == [(3, 67 / 3, 21, 24)]

    def test_count_star(self, university_db):
        assert execute_sql(university_db, "SELECT COUNT(*) FROM Enrol").scalar() == 6

    def test_group_by(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT Sname, COUNT(Sid) AS n FROM Student GROUP BY Sname",
        )
        assert sorted(result.rows) == [("George", 1), ("Green", 2)]

    def test_group_by_with_join(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT C.Code, COUNT(S.Sid) AS numSid FROM Student S, Enrol E, "
            "Course C WHERE E.Sid = S.Sid AND E.Code = C.Code GROUP BY C.Code",
        )
        assert sorted(result.rows) == [("c1", 3), ("c2", 1), ("c3", 2)]

    def test_count_distinct(self, university_db):
        result = execute_sql(
            university_db, "SELECT COUNT(DISTINCT Sname) FROM Student"
        )
        assert result.scalar() == 2

    def test_sum_of_empty_filter_is_null(self, university_db):
        result = execute_sql(
            university_db, "SELECT SUM(Age) FROM Student WHERE Sname = 'Nobody'"
        )
        assert result.scalar() is None

    def test_derived_table(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT MAX(R.n) FROM (SELECT Sname, COUNT(Sid) AS n FROM Student "
            "GROUP BY Sname) R",
        )
        assert result.scalar() == 2

    def test_distinct_projection_subquery(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT COUNT(T.Bid) FROM (SELECT DISTINCT Code, Bid FROM Teach) T "
            "WHERE T.Code = 'c1'",
        )
        assert result.scalar() == 2  # b1 deduplicated across lecturers


class TestQueryResult:
    def test_to_dicts(self, university_db):
        result = execute_sql(university_db, "SELECT Sid FROM Student LIMIT 1")
        assert result.to_dicts() == [{"Sid": "s1"}]

    def test_scalar_requires_1x1(self, university_db):
        result = execute_sql(university_db, "SELECT Sid FROM Student")
        with pytest.raises(SqlExecutionError):
            result.scalar()

    def test_format_table(self, university_db):
        result = execute_sql(university_db, "SELECT Sid, Age FROM Student")
        text = result.format_table()
        assert "Sid" in text and "s1" in text

    def test_format_table_truncates(self, university_db):
        result = execute_sql(university_db, "SELECT Sid FROM Enrol")
        assert "more rows" in result.format_table(max_rows=2)

    def test_equality_ignores_row_order(self, university_db):
        first = execute_sql(university_db, "SELECT Sid FROM Student ORDER BY Sid")
        second = execute_sql(
            university_db, "SELECT Sid FROM Student ORDER BY Sid DESC"
        )
        assert first == second

    def test_unknown_result_column(self, university_db):
        result = execute_sql(university_db, "SELECT Sid FROM Student")
        with pytest.raises(SqlExecutionError):
            result.column("nope")


class TestPaperSqlStatements:
    """The exact SQL statements printed in the paper, verbatim semantics."""

    def test_q1_sqak_mixes_greens(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT S.Sname, SUM(C.Credit) FROM Student S, Enrol E, Course C "
            "WHERE E.Sid = S.Sid AND E.Code = C.Code AND S.Sname = 'Green' "
            "GROUP BY Sname",
        )
        assert result.rows == [("Green", 13.0)]

    def test_q1_semantic_distinguishes_greens(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT S.Sid, SUM(C.Credit) AS t FROM Student S, Enrol E, Course C "
            "WHERE E.Sid = S.Sid AND E.Code = C.Code AND S.Sname = 'Green' "
            "GROUP BY S.Sid",
        )
        assert sorted(result.rows) == [("s2", 5.0), ("s3", 8.0)]

    def test_q2_duplicate_textbooks(self, university_db):
        wrong = execute_sql(
            university_db,
            "SELECT C.Title, SUM(B.Price) FROM Course C, Teach T, Textbook B "
            "WHERE T.Bid = B.Bid AND T.Code = C.Code AND C.Title = 'Java' "
            "GROUP BY C.Title",
        )
        assert wrong.rows[0][1] == 35.0
        right = execute_sql(
            university_db,
            "SELECT C.Title, SUM(B.Price) FROM Course C, "
            "(SELECT DISTINCT Code, Bid FROM Teach) T, Textbook B "
            "WHERE T.Bid = B.Bid AND T.Code = C.Code AND C.Title = 'Java' "
            "GROUP BY C.Title",
        )
        assert right.rows[0][1] == 25.0

    def test_example7_nested_average(self, university_db):
        result = execute_sql(
            university_db,
            "SELECT AVG(R.numLid) AS avgnumLid FROM "
            "(SELECT C.Code, COUNT(L.Lid) AS numLid FROM Lecturer L, Course C, "
            "(SELECT DISTINCT Lid, Code FROM Teach) T "
            "WHERE T.Lid = L.Lid AND T.Code = C.Code GROUP BY C.Code) R",
        )
        assert result.scalar() == pytest.approx(4 / 3)
