"""Unit tests for database persistence (CSV + schema.json)."""

import json

import pytest

from repro.errors import SchemaError
from repro.relational.executor import execute_sql
from repro.relational.io import (
    export_result_csv,
    load_database,
    save_database,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaRoundTrip:
    def test_round_trip_preserves_structure(self, university_db):
        document = schema_to_dict(university_db.schema)
        rebuilt = schema_from_dict(document)
        assert rebuilt.relation_names == university_db.schema.relation_names
        teach = rebuilt.relation("Teach")
        assert teach.primary_key == ("Code", "Lid", "Bid")
        assert len(teach.foreign_keys) == 3

    def test_document_is_json_serializable(self, university_db):
        json.dumps(schema_to_dict(university_db.schema))

    def test_malformed_document_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"name": "x"})
        with pytest.raises(SchemaError):
            schema_from_dict(
                {
                    "name": "x",
                    "relations": [
                        {
                            "name": "R",
                            "columns": [{"name": "a", "type": "nope"}],
                            "primary_key": ["a"],
                        }
                    ],
                }
            )


class TestDatabaseRoundTrip:
    def test_save_and_load_university(self, university_db, tmp_path):
        save_database(university_db, tmp_path / "uni")
        reloaded = load_database(tmp_path / "uni")
        assert reloaded.row_counts() == university_db.row_counts()
        for relation in university_db.schema:
            assert (
                reloaded.table(relation.name).rows
                == university_db.table(relation.name).rows
            )

    def test_reloaded_database_answers_queries(self, university_db, tmp_path):
        save_database(university_db, tmp_path / "uni")
        reloaded = load_database(tmp_path / "uni")
        sql = (
            "SELECT C.Code, COUNT(S.Sid) AS n FROM Student S, Enrol E, Course C "
            "WHERE E.Sid = S.Sid AND E.Code = C.Code GROUP BY C.Code"
        )
        assert execute_sql(reloaded, sql) == execute_sql(university_db, sql)

    def test_reloaded_engine_reproduces_q1(self, university_db, tmp_path):
        from repro.engine import KeywordSearchEngine

        save_database(university_db, tmp_path / "uni")
        engine = KeywordSearchEngine(load_database(tmp_path / "uni"))
        chosen = engine.search("Green SUM Credit").find(distinguishes=True)
        assert chosen.execute().sorted_rows() == [("s2", 5.0), ("s3", 8.0)]

    def test_null_round_trip(self, tmp_path):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema("nulls")
        schema.add_relation(
            "R",
            [("id", DataType.INT), ("x", DataType.TEXT), ("y", DataType.FLOAT)],
            ["id"],
        )
        db = Database(schema)
        db.load("R", [(1, None, None), (2, "a", 1.5)])
        save_database(db, tmp_path / "n")
        reloaded = load_database(tmp_path / "n")
        assert reloaded.table("R").rows == [(1, None, None), (2, "a", 1.5)]

    def test_bool_and_date_round_trip(self, tmp_path):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema("b")
        schema.add_relation(
            "R",
            [("id", DataType.INT), ("flag", DataType.BOOL), ("d", DataType.DATE)],
            ["id"],
        )
        db = Database(schema)
        db.load("R", [(1, True, "2020-01-02"), (2, False, None)])
        save_database(db, tmp_path / "b")
        assert load_database(tmp_path / "b").table("R").rows == [
            (1, True, "2020-01-02"),
            (2, False, None),
        ]

    def test_missing_schema_file(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database(tmp_path)

    def test_missing_data_file(self, university_db, tmp_path):
        save_database(university_db, tmp_path / "uni")
        (tmp_path / "uni" / "Student.csv").unlink()
        with pytest.raises(SchemaError):
            load_database(tmp_path / "uni")

    def test_header_mismatch_rejected(self, university_db, tmp_path):
        save_database(university_db, tmp_path / "uni")
        csv_path = tmp_path / "uni" / "Student.csv"
        lines = csv_path.read_text().splitlines()
        lines[0] = "Wrong,Header,Here"
        csv_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError):
            load_database(tmp_path / "uni")


class TestResultExport:
    def test_export_result(self, university_db, tmp_path):
        result = execute_sql(
            university_db, "SELECT Sname, Age FROM Student ORDER BY Sname"
        )
        target = export_result_csv(result, tmp_path / "out.csv")
        content = target.read_text().splitlines()
        assert content[0] == "Sname,Age"
        assert content[1] == "George,22"
