"""Unit tests for row storage."""

import pytest

from repro.errors import DuplicateKeyError, SchemaError
from repro.relational.schema import Column, RelationSchema
from repro.relational.table import Table
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


@pytest.fixture
def student_table() -> Table:
    schema = RelationSchema(
        "Student",
        [Column("Sid", TEXT), Column("Sname", TEXT), Column("Age", INT)],
        ["Sid"],
    )
    return Table(schema)


class TestInsert:
    def test_insert_and_len(self, student_table):
        student_table.insert(("s1", "George", 22))
        assert len(student_table) == 1

    def test_insert_coerces_types(self, student_table):
        row = student_table.insert(("s1", "George", "22"))
        assert row[2] == 22

    def test_wrong_arity_rejected(self, student_table):
        with pytest.raises(SchemaError):
            student_table.insert(("s1", "George"))

    def test_duplicate_key_rejected(self, student_table):
        student_table.insert(("s1", "George", 22))
        with pytest.raises(DuplicateKeyError):
            student_table.insert(("s1", "Other", 30))

    def test_null_key_rejected(self, student_table):
        with pytest.raises(DuplicateKeyError):
            student_table.insert((None, "George", 22))

    def test_unenforced_key_allows_duplicates(self):
        schema = RelationSchema("R", [Column("a", INT)], ["a"])
        table = Table(schema, enforce_key=False)
        table.insert((1,))
        table.insert((1,))
        assert len(table) == 2

    def test_insert_dict(self, student_table):
        row = student_table.insert_dict({"Sid": "s1", "Sname": "Green"})
        assert row == ("s1", "Green", None)

    def test_insert_dict_unknown_column(self, student_table):
        with pytest.raises(SchemaError):
            student_table.insert_dict({"Sid": "s1", "Nope": 1})

    def test_extend(self, student_table):
        student_table.extend([("s1", "a", 1), ("s2", "b", 2)])
        assert len(student_table) == 2


class TestAccess:
    def test_get_by_key(self, student_table):
        student_table.insert(("s1", "George", 22))
        assert student_table.get_by_key(("s1",))[1] == "George"
        assert student_table.get_by_key(("sX",)) is None

    def test_column_values(self, student_table):
        student_table.extend([("s1", "a", 1), ("s2", "b", None)])
        assert student_table.column_values("Age") == [1, None]

    def test_distinct_key_count(self, student_table):
        student_table.extend(
            [("s1", "Green", 1), ("s2", "Green", 2), ("s3", "Blue", 3)]
        )
        assert student_table.distinct_key_count(["Sname"]) == 2
        assert student_table.distinct_key_count(["Sid", "Sname"]) == 3

    def test_iteration_order_is_insertion_order(self, student_table):
        student_table.extend([("s2", "b", 2), ("s1", "a", 1)])
        assert [row[0] for row in student_table] == ["s2", "s1"]
