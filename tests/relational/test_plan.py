"""Compiled physical plans: closure semantics, index pushdown, caching.

The compiled path must be indistinguishable from the interpreted executor
on results (including row order, errors and NULL semantics); these tests
pin the places where the two could plausibly diverge.  Full query-set
equivalence lives in ``tests/integration/test_plan_equivalence.py``.
"""

import pytest

from repro.errors import SqlExecutionError
from repro.observability import Tracer
from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.plan import CompiledPlan
from repro.relational.types import DataType
from repro.sql.parser import parse


@pytest.fixture()
def shop_db():
    db = Database.from_definitions(
        "shop",
        [
            (
                "Item",
                [
                    ("Id", DataType.INT),
                    ("Name", DataType.TEXT),
                    ("Price", DataType.FLOAT),
                    ("Stock", DataType.INT),
                ],
                ["Id"],
                [],
            ),
        ],
    )
    db.load(
        "Item",
        [
            (1, "royal olive", 4.5, 10),
            (2, "Roy's bread", 2.0, 0),
            (3, "plain olive", 4.5, None),
            (4, None, None, 7),
            (5, "viceroy tea", 9.0, 10),
        ],
    )
    return db


def both_paths(db, sql):
    compiled = Executor(db, compile_plans=True).execute(sql)
    interpreted = Executor(db, compile_plans=False).execute(sql)
    return compiled, interpreted


class TestCompiledSemantics:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT Name FROM Item",
            "SELECT Name, Price FROM Item WHERE Price > 3",
            "SELECT Name FROM Item WHERE Price = 4.5 AND Stock = 10",
            "SELECT Name FROM Item WHERE Stock IS NULL",
            "SELECT Name FROM Item WHERE Stock IS NOT NULL",
            "SELECT Id, Price * 2 FROM Item",
            "SELECT COUNT(*) FROM Item",
            "SELECT Price, COUNT(*) FROM Item GROUP BY Price",
            "SELECT DISTINCT Price FROM Item",
            "SELECT Name FROM Item ORDER BY Name DESC LIMIT 2",
            "SELECT Name FROM Item WHERE Name LIKE '%roy%'",
        ],
    )
    def test_matches_interpreter(self, shop_db, sql):
        compiled, interpreted = both_paths(shop_db, sql)
        assert compiled == interpreted
        assert compiled.rows == interpreted.rows  # identical order, too

    def test_null_comparisons_not_satisfied(self, shop_db):
        compiled, interpreted = both_paths(
            shop_db, "SELECT Id FROM Item WHERE Price > 0"
        )
        assert compiled == interpreted
        assert 4 not in compiled.column("Id")  # NULL price filtered out

    def test_division_by_zero_raised_lazily(self, shop_db):
        # the error surfaces at execution (on the offending row), never at
        # plan-compilation time — matching the interpreter
        sql = "SELECT Id / Stock FROM Item WHERE Stock IS NOT NULL"
        plan = CompiledPlan(parse(sql), shop_db)
        with pytest.raises(SqlExecutionError, match="division by zero"):
            plan.execute()

    def test_mixed_type_comparison_raises_like_interpreter(self, shop_db):
        sql = "SELECT Id FROM Item WHERE Name = 3"
        with pytest.raises(SqlExecutionError):
            Executor(shop_db, compile_plans=False).execute(sql)
        with pytest.raises(SqlExecutionError):
            Executor(shop_db, compile_plans=True).execute(sql)

    def test_unknown_column_raises(self, shop_db):
        with pytest.raises(SqlExecutionError, match="unknown column"):
            Executor(shop_db, compile_plans=True).execute(
                "SELECT Nope FROM Item WHERE Nope = 1"
            )


class TestIndexPushdown:
    def test_contains_pushdown_is_substring_exact(self, shop_db):
        """'roy' must match 'royal', "Roy's" and 'viceroy' — token-exact
        candidate generation would miss the first and last."""
        compiled, interpreted = both_paths(
            shop_db, "SELECT Id FROM Item WHERE Name LIKE '%roy%'"
        )
        assert sorted(compiled.column("Id")) == [1, 2, 5]
        assert compiled == interpreted

    def test_contains_uses_inverted_index(self, shop_db):
        plan = CompiledPlan(
            parse("SELECT Id FROM Item WHERE Name LIKE '%olive%'"), shop_db
        )
        assert "InvertedIndex" in plan.explain()
        tracer = Tracer()
        with tracer.span("t"):
            result = plan.execute(tracer)
        assert sorted(result.column("Id")) == [1, 3]
        assert tracer.trace.counter("index_scans") >= 1
        assert tracer.trace.counter("rows_skipped_by_index") == 3  # rows 2, 4, 5

    def test_numeric_equality_uses_index(self, shop_db):
        plan = CompiledPlan(
            parse("SELECT Id FROM Item WHERE Price = 4.5"), shop_db
        )
        assert "NumericIndex" in plan.explain()
        assert sorted(plan.execute().column("Id")) == [1, 3]

    def test_text_equality_uses_hash_index(self, shop_db):
        plan = CompiledPlan(
            parse("SELECT Id FROM Item WHERE Name = 'plain olive'"), shop_db
        )
        assert "HashIndex" in plan.explain()
        assert plan.execute().column("Id") == [3]

    def test_equality_with_null_literal_matches_nothing(self, shop_db):
        compiled, interpreted = both_paths(
            shop_db, "SELECT Id FROM Item WHERE Price = NULL"
        )
        assert len(compiled) == 0
        assert compiled == interpreted

    def test_index_results_track_mutations(self, shop_db):
        executor = Executor(shop_db)
        sql = "SELECT Id FROM Item WHERE Name LIKE '%olive%'"
        assert len(executor.execute(sql)) == 2
        shop_db.load("Item", [(6, "green olive", 3.0, 1)])
        assert sorted(executor.execute(sql).column("Id")) == [1, 3, 6]

    def test_pushdown_survives_direct_insert(self, shop_db):
        # rows appended via table.insert() bypass load(); the data version
        # must still move (via the row-count component)
        executor = Executor(shop_db)
        sql = "SELECT Id FROM Item WHERE Price = 4.5"
        assert len(executor.execute(sql)) == 2
        shop_db.table("Item").insert((7, "cheap olive", 4.5, 2))
        assert sorted(executor.execute(sql).column("Id")) == [1, 3, 7]


class TestPlanCache:
    def test_warm_equals_cold(self, shop_db):
        executor = Executor(shop_db)
        sql = "SELECT Name FROM Item WHERE Price > 3 ORDER BY Name"
        cold = executor.execute(sql)
        warm = executor.execute(sql)
        assert cold == warm
        assert cold.rows == warm.rows

    def test_cache_hit_reuses_plan(self, shop_db):
        executor = Executor(shop_db)
        select = parse("SELECT Id FROM Item")
        first = executor.plan_for(select)
        second = executor.plan_for(select)
        assert first is second

    def test_equivalent_ast_shares_plan(self, shop_db):
        # keyed by rendered SQL: structurally equal ASTs hit the same entry
        executor = Executor(shop_db)
        first = executor.plan_for(parse("SELECT Id FROM Item"))
        second = executor.plan_for(parse("SELECT Id FROM Item"))
        assert first is second

    def test_clear_plan_cache_recompiles(self, shop_db):
        executor = Executor(shop_db)
        select = parse("SELECT Id FROM Item")
        first = executor.plan_for(select)
        executor.clear_plan_cache()
        assert executor.plan_for(select) is not first

    def test_mutation_invalidates_cached_plan(self, shop_db):
        executor = Executor(shop_db)
        select = parse("SELECT Id FROM Item")
        first = executor.plan_for(select)
        shop_db.load("Item", [(8, "new", 1.0, 1)])
        assert executor.plan_for(select) is not first

    def test_cache_is_bounded_lru(self, shop_db):
        executor = Executor(shop_db)
        executor.plan_cache_size = 2
        a = executor.plan_for(parse("SELECT Id FROM Item"))
        executor.plan_for(parse("SELECT Name FROM Item"))
        executor.plan_for(parse("SELECT Id FROM Item"))  # refresh a
        executor.plan_for(parse("SELECT Price FROM Item"))  # evicts Name
        assert executor.plan_cache_len == 2
        assert executor.plan_for(parse("SELECT Id FROM Item")) is a

    def test_cache_counters(self, shop_db):
        executor = Executor(shop_db)
        tracer = Tracer()
        with tracer.span("t"):
            executor.execute("SELECT Id FROM Item", tracer=tracer)
            executor.execute("SELECT Id FROM Item", tracer=tracer)
        assert tracer.trace.counter("plan_cache_misses") == 1
        assert tracer.trace.counter("plan_cache_hits") == 1
        assert tracer.trace.counter("compiled_predicates") == 0


class TestExplain:
    def test_explain_renders_without_executing(self, shop_db):
        plan = CompiledPlan(
            parse(
                "SELECT Price, COUNT(*) AS n FROM Item "
                "WHERE Name LIKE '%olive%' GROUP BY Price ORDER BY n LIMIT 3"
            ),
            shop_db,
        )
        text = plan.explain()
        assert "scan Item" in text
        assert "push" in text
        assert "group by" in text
        assert "limit 3" in text

    def test_explain_shows_join_strategy(self, university_db):
        plan = CompiledPlan(
            parse(
                "SELECT S.Sname FROM Student S, Enrol E "
                "WHERE S.Sid = E.Sid AND E.Grade = 'A+'"
            ),
            university_db,
        )
        assert "equi-join" in plan.explain()
        no_hash = CompiledPlan(
            parse("SELECT S.Sname FROM Student S, Enrol E WHERE S.Sid = E.Sid"),
            university_db,
            use_hash_joins=False,
        )
        assert "cross+filter" in no_hash.explain()
