"""Unit tests for the relational-algebra operators."""

import pytest

from repro.relational.algebra import (
    Rowset,
    cross_join,
    distinct,
    hash_join,
    null_safe_sort_key,
    project,
    select_rows,
)
from repro.sql.ast import BinaryOp, ColumnRef, Literal


def make_rowset(qualifier, names, rows) -> Rowset:
    return Rowset.from_labels([(qualifier, n) for n in names], rows)


class TestSelectProject:
    def test_select_rows(self):
        rs = make_rowset("R", ["a"], [(1,), (2,), (3,)])
        predicate = BinaryOp(">", ColumnRef("a"), Literal(1))
        assert [row[0] for row in select_rows(rs, predicate).rows] == [2, 3]

    def test_project(self):
        rs = make_rowset("R", ["a", "b"], [(1, "x"), (2, "y")])
        out = project(rs, [1], [(None, "b")])
        assert out.rows == [("x",), ("y",)]

    def test_distinct_preserves_first_seen_order(self):
        rs = make_rowset("R", ["a"], [(2,), (1,), (2,), (1,)])
        assert distinct(rs).rows == [(2,), (1,)]

    def test_relabel(self):
        rs = make_rowset("R", ["a"], [(1,)])
        out = rs.relabel("X")
        assert out.binding.labels == (("X", "a"),)


class TestJoins:
    def test_cross_join(self):
        left = make_rowset("L", ["a"], [(1,), (2,)])
        right = make_rowset("R", ["b"], [("x",), ("y",)])
        out = cross_join(left, right)
        assert len(out) == 4
        assert out.rows[0] == (1, "x")

    def test_hash_join_basic(self):
        left = make_rowset("L", ["k", "v"], [(1, "a"), (2, "b"), (3, "c")])
        right = make_rowset("R", ["k2"], [(2,), (3,), (4,)])
        out = hash_join(left, right, [0], [0])
        assert sorted(row[0] for row in out.rows) == [2, 3]

    def test_hash_join_column_order_preserved_when_right_smaller(self):
        # right side is smaller, so it becomes the build side; output
        # columns must still be left ++ right
        left = make_rowset("L", ["k"], [(1,), (2,), (3,)])
        right = make_rowset("R", ["k2", "w"], [(2, "x")])
        out = hash_join(left, right, [0], [0])
        assert out.rows == [(2, 2, "x")]
        assert out.binding.labels == (("L", "k"), ("R", "k2"), ("R", "w"))

    def test_hash_join_null_keys_never_match(self):
        left = make_rowset("L", ["k"], [(None,), (1,)])
        right = make_rowset("R", ["k2"], [(None,), (1,)])
        out = hash_join(left, right, [0], [0])
        assert out.rows == [(1, 1)]

    def test_hash_join_duplicates_multiply(self):
        left = make_rowset("L", ["k"], [(1,), (1,)])
        right = make_rowset("R", ["k2"], [(1,), (1,)])
        assert len(hash_join(left, right, [0], [0])) == 4

    def test_hash_join_composite_keys(self):
        left = make_rowset("L", ["a", "b"], [(1, 2), (1, 3)])
        right = make_rowset("R", ["c", "d"], [(1, 2), (1, 9)])
        out = hash_join(left, right, [0, 1], [0, 1])
        assert out.rows == [(1, 2, 1, 2)]

    def test_hash_join_arity_mismatch(self):
        left = make_rowset("L", ["a"], [(1,)])
        right = make_rowset("R", ["b"], [(1,)])
        with pytest.raises(ValueError):
            hash_join(left, right, [0], [])


class TestSortKey:
    def test_nulls_sort_first(self):
        values = ["b", None, "a"]
        assert sorted(values, key=null_safe_sort_key) == [None, "a", "b"]

    def test_mixed_numbers_and_text(self):
        values = ["x", 2, None, 1]
        assert sorted(values, key=null_safe_sort_key) == [None, 1, 2, "x"]

    def test_bools_sort_with_bools(self):
        values = [True, False]
        assert sorted(values, key=null_safe_sort_key) == [False, True]
