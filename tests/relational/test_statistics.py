"""Unit tests for table/column statistics."""

import pytest

from repro.relational.statistics import (
    analyze_database,
    analyze_table,
    estimated_join_selectivity,
)


class TestAnalyzeTable:
    def test_student_profile(self, university_db):
        stats = analyze_table(university_db.table("Student"))
        assert stats.rows == 3
        sname = stats.column("Sname")
        assert sname.distinct == 2  # George + Green
        assert sname.nulls == 0
        assert sname.minimum == "George" and sname.maximum == "Green"
        age = stats.column("Age")
        assert (age.minimum, age.maximum) == (21, 24)

    def test_null_handling(self):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema("s")
        schema.add_relation(
            "R", [("id", DataType.INT), ("x", DataType.INT)], ["id"]
        )
        db = Database(schema)
        db.load("R", [(1, None), (2, 5), (3, None)])
        stats = analyze_table(db.table("R"))
        x = stats.column("x")
        assert x.nulls == 2
        assert x.distinct == 1
        assert x.null_fraction(stats.rows) == pytest.approx(2 / 3)

    def test_empty_table(self):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema("s")
        schema.add_relation("R", [("id", DataType.INT)], ["id"])
        stats = analyze_table(Database(schema).table("R"))
        assert stats.rows == 0
        assert stats.column("id").minimum is None

    def test_unknown_column_raises(self, university_db):
        stats = analyze_table(university_db.table("Student"))
        with pytest.raises(KeyError):
            stats.column("nope")

    def test_format(self, university_db):
        text = analyze_table(university_db.table("Student")).format()
        assert "Student: 3 rows" in text
        assert "Sname" in text


class TestAnalyzeDatabase:
    def test_profiles_every_table(self, university_db):
        stats = analyze_database(university_db)
        assert set(stats) == set(university_db.schema.relation_names)
        assert stats["Enrol"].rows == 6

    def test_key_columns_have_full_distinct(self, tpch_db):
        stats = analyze_database(tpch_db)
        part = stats["Part"]
        assert part.column("partkey").distinct == part.rows


class TestSelectivity:
    def test_equi_join_selectivity(self, university_db):
        stats = analyze_database(university_db)
        selectivity = estimated_join_selectivity(
            stats["Enrol"], "Sid", stats["Student"], "Sid"
        )
        assert selectivity == pytest.approx(1 / 3)

    def test_selectivity_never_zero_division(self):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema("s")
        schema.add_relation("R", [("id", DataType.INT)], ["id"])
        db = Database(schema)
        stats = analyze_table(db.table("R"))
        assert estimated_join_selectivity(stats, "id", stats, "id") == 1.0
