"""Unit tests for the schema catalog."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from repro.relational.types import DataType

INT = DataType.INT
TEXT = DataType.TEXT


def make_student() -> RelationSchema:
    return RelationSchema(
        "Student",
        [Column("Sid", TEXT), Column("Sname", TEXT), Column("Age", INT)],
        ["Sid"],
    )


def make_enrol() -> RelationSchema:
    return RelationSchema(
        "Enrol",
        [Column("Sid", TEXT), Column("Code", TEXT), Column("Grade", TEXT)],
        ["Sid", "Code"],
        [
            ForeignKey(("Sid",), "Student", ("Sid",)),
            ForeignKey(("Code",), "Course", ("Code",)),
        ],
    )


class TestRelationSchema:
    def test_column_lookup(self):
        student = make_student()
        assert student.column("Age").dtype is INT
        assert student.column_index("Sname") == 1
        assert student.has_column("Sid")
        assert not student.has_column("Nope")

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            make_student().column("Nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Column("a", INT), Column("a", INT)], ["a"])

    def test_missing_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Column("a", INT)], [])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Column("a", INT)], ["b"])

    def test_fk_columns_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "R",
                [Column("a", INT)],
                ["a"],
                [ForeignKey(("b",), "S", ("b",))],
            )

    def test_fk_column_arity_checked(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "S", ("a",))

    def test_fk_must_be_nonempty(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "S", ())

    def test_fk_columns_helpers(self):
        enrol = make_enrol()
        assert enrol.fk_columns() == ("Sid", "Code")
        assert enrol.non_key_columns() == ("Grade",)
        assert enrol.key_is_all_foreign()
        assert len(enrol.fks_within_key()) == 2
        assert enrol.fks_outside_key() == ()

    def test_fks_outside_key(self):
        lecturer = RelationSchema(
            "Lecturer",
            [Column("Lid", TEXT), Column("Did", TEXT)],
            ["Lid"],
            [ForeignKey(("Did",), "Department", ("Did",))],
        )
        assert not lecturer.key_is_all_foreign()
        assert len(lecturer.fks_outside_key()) == 1


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema("db")
        schema.add(make_student())
        assert "Student" in schema
        assert schema.relation("Student").name == "Student"
        assert len(schema) == 1

    def test_duplicate_relation_rejected(self):
        schema = DatabaseSchema("db")
        schema.add(make_student())
        with pytest.raises(SchemaError):
            schema.add(make_student())

    def test_unknown_relation_raises(self):
        with pytest.raises(UnknownTableError):
            DatabaseSchema("db").relation("Nope")

    def test_find_relation_case_insensitive(self):
        schema = DatabaseSchema("db")
        schema.add(make_student())
        assert schema.find_relation("student") is schema.relation("Student")
        assert schema.find_relation("nope") is None

    def test_validate_rejects_dangling_fk(self):
        schema = DatabaseSchema("db")
        schema.add(make_enrol())
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_rejects_fk_to_non_key(self):
        schema = DatabaseSchema("db")
        schema.add_relation("Parent", [("a", INT), ("b", INT)], ["a"])
        schema.add_relation(
            "Child",
            [("c", INT), ("b", INT)],
            ["c"],
            [ForeignKey(("b",), "Parent", ("b",))],
        )
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_rejects_type_mismatch(self):
        schema = DatabaseSchema("db")
        schema.add_relation("Parent", [("a", INT)], ["a"])
        schema.add_relation(
            "Child",
            [("c", INT), ("a", TEXT)],
            ["c"],
            [ForeignKey(("a",), "Parent", ("a",))],
        )
        with pytest.raises(SchemaError):
            schema.validate()

    def test_references_between(self):
        schema = DatabaseSchema("db")
        schema.add_relation("Student", [("Sid", TEXT)], ["Sid"])
        schema.add_relation("Course", [("Code", TEXT)], ["Code"])
        schema.add(make_enrol())
        refs = schema.references_between("Enrol", "Student")
        assert len(refs) == 1
        assert refs[0].columns == ("Sid",)
        assert schema.references_between("Enrol", "Course")[0].columns == ("Code",)

    def test_university_schema_validates(self, university_db):
        university_db.schema.validate()
