"""Unit tests for pattern generation: terminals, context merging,
connection with node replication (Figures 4-7)."""

import pytest

from repro.keywords import KeywordQuery, NormalizedCatalog, TermMatcher
from repro.patterns import PatternGenerator


@pytest.fixture(scope="module")
def catalog(request):
    from repro.datasets import university_database

    return NormalizedCatalog(university_database())


@pytest.fixture(scope="module")
def generator(catalog):
    return PatternGenerator(catalog)


def generate(generator, catalog, text):
    query = KeywordQuery(text)
    tags = TermMatcher(catalog).match_query(query)
    return query, generator.generate(query, tags)


def best_pattern(generator, catalog, text):
    from repro.patterns import rank_patterns

    __, patterns = generate(generator, catalog, text)
    return rank_patterns(patterns)[0]


class TestTerminalsAndContext:
    def test_value_term_creates_condition_node(self, generator, catalog):
        pattern = best_pattern(generator, catalog, "Green SUM Credit")
        student = next(n for n in pattern.nodes if n.orm_node == "Student")
        assert student.conditions[0].phrase == "Green"
        course = next(n for n in pattern.nodes if n.orm_node == "Course")
        assert course.aggregates[0].func == "SUM"
        assert course.aggregates[0].attribute == "Credit"

    def test_relation_context_merges_value(self, generator, catalog):
        # {Lecturer George}: one Lecturer node, not Lecturer + Student
        pattern = best_pattern(generator, catalog, "Lecturer George")
        assert len(pattern.nodes) == 1
        node = pattern.nodes[0]
        assert node.orm_node == "Lecturer"
        assert node.conditions[0].phrase == "George"

    def test_non_adjacent_value_not_merged(self, generator, catalog):
        # value after an unrelated attribute term gets its own node
        pattern = best_pattern(generator, catalog, "Lecturer SUM Credit Green")
        assert {n.orm_node for n in pattern.nodes} >= {"Lecturer", "Student"}

    def test_relation_name_aggregate_counts_identifier(self, generator, catalog):
        pattern = best_pattern(generator, catalog, "COUNT Student GROUPBY Course")
        student = next(n for n in pattern.nodes if n.orm_node == "Student")
        assert student.aggregates[0].attribute == "Sid"
        course = next(n for n in pattern.nodes if n.orm_node == "Course")
        assert course.groupbys[0].attributes == ("Code",)

    def test_min_on_relation_name_is_rejected(self, generator, catalog):
        # MIN must apply to an attribute; the relation-name reading dies and
        # no pattern remains for the combination
        from repro.errors import NoPatternError

        query = KeywordQuery("MIN Student")
        tags = TermMatcher(catalog).match_query(query)
        # the only surviving interpretations use value/attribute tags; with
        # figure-1 data 'student' matches no value, so nothing remains
        with pytest.raises(NoPatternError):
            generator.generate(query, tags)

    def test_nested_chain_recorded_as_outer(self, generator, catalog):
        pattern = best_pattern(
            generator, catalog, "AVG COUNT Lecturer GROUPBY Course"
        )
        lecturer = next(n for n in pattern.nodes if n.orm_node == "Lecturer")
        assert lecturer.aggregates[0].func == "COUNT"
        assert lecturer.aggregates[0].outer_chain == ("AVG",)


class TestConnection:
    def test_figure4_shape(self, generator, catalog):
        pattern = best_pattern(generator, catalog, "Green George Code")
        names = sorted(n.orm_node for n in pattern.nodes)
        assert names == ["Course", "Enrol", "Enrol", "Student", "Student"]
        assert pattern.is_connected()
        # the Course node is shared: exactly one instance
        course_nodes = [n for n in pattern.nodes if n.orm_node == "Course"]
        assert len(course_nodes) == 1
        # each Enrol connects one student with the shared course
        for node in pattern.nodes:
            if node.orm_node == "Enrol":
                adjacent = {
                    pattern.nodes[x].orm_node for x in pattern.neighbors(node.id)
                }
                assert adjacent == {"Student", "Course"}

    def test_single_node_pattern(self, generator, catalog):
        pattern = best_pattern(generator, catalog, "Lecturer George")
        assert len(pattern.edges) == 0

    def test_two_terminals_simple_path(self, generator, catalog):
        pattern = best_pattern(generator, catalog, "COUNT Lecturer GROUPBY Course")
        names = sorted(n.orm_node for n in pattern.nodes)
        assert names == ["Course", "Lecturer", "Teach"]

    def test_same_type_twice_routes_through_hub(self, generator, catalog):
        # {Green George}: two students joined via the common-course hub
        pattern = best_pattern(generator, catalog, "Green George")
        names = sorted(n.orm_node for n in pattern.nodes)
        assert names == ["Course", "Enrol", "Enrol", "Student", "Student"]

    def test_distant_terminals_pull_in_path(self, generator, catalog):
        # Faculty and Student are 6 hops apart in the ORM graph
        pattern = best_pattern(generator, catalog, "Engineering COUNT Student")
        names = {n.orm_node for n in pattern.nodes}
        assert {"Faculty", "Department", "Lecturer", "Teach", "Course",
                "Enrol", "Student"} == names

    def test_exactness_propagates_to_pattern(self, generator, catalog):
        __, patterns = generate(generator, catalog, "Lecturer George")
        exact = [p for p in patterns if len(p.nodes) == 1]
        assert exact and all(p.tag_exactness < 1.0 for p in exact)
        # the merged single-node pattern used a value tag (0.8)

    def test_patterns_deduplicated(self, generator, catalog):
        __, patterns = generate(generator, catalog, "Green George Code")
        signatures = [p.signature() for p in patterns]
        assert len(signatures) == len(set(signatures))


class TestBipartiteReplication:
    def test_two_multi_types_yield_bipartite_relationships(self, generator, catalog):
        # two student values + two course values: in the interpretation
        # where all four are students/courses, every student-course pair
        # gets its own Enrol node (4 Enrols)
        from collections import Counter

        __, patterns = generate(generator, catalog, "Green George Java Database")
        shapes = [Counter(n.orm_node for n in p.nodes) for p in patterns]
        bipartite = [
            (pattern, counts)
            for pattern, counts in zip(patterns, shapes)
            if counts["Student"] == 2 and counts["Course"] == 2
        ]
        assert bipartite, "the all-students/all-courses interpretation exists"
        pattern, counts = bipartite[0]
        assert counts["Enrol"] == 4
        assert pattern.is_connected()
        # each Enrol joins exactly one (student, course) pair
        for node in pattern.nodes:
            if node.orm_node == "Enrol":
                adjacent = {
                    pattern.nodes[x].orm_node for x in pattern.neighbors(node.id)
                }
                assert adjacent == {"Student", "Course"}
