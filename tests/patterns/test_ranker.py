"""Unit tests for pattern ranking."""

import pytest

from repro.orm import RelationType
from repro.patterns import (
    AggregateAnnotation,
    Condition,
    QueryPattern,
    pattern_score,
    rank_patterns,
    top_k,
)


def simple_pattern(object_nodes: int, exactness: float = 1.0) -> QueryPattern:
    pattern = QueryPattern()
    pattern.tag_exactness = exactness
    previous = None
    for index in range(object_nodes):
        node = pattern.add_node(f"O{index}", f"O{index}", RelationType.OBJECT)
        if previous is not None:
            # fabricate an edge; the orm_edge payload is unused by ranking
            from repro.orm.graph import OrmEdge
            from repro.relational.schema import ForeignKey

            pattern.add_edge(
                previous.id,
                node.id,
                OrmEdge(
                    f"O{index - 1}",
                    f"O{index}",
                    f"O{index - 1}",
                    f"O{index}",
                    ForeignKey(("x",), f"O{index}", ("x",)),
                ),
            )
        previous = node
    return pattern


class TestScoring:
    def test_fewer_object_nodes_rank_higher(self):
        small = simple_pattern(2)
        large = simple_pattern(3)
        assert pattern_score(small) < pattern_score(large)

    def test_shorter_target_condition_distance_ranks_higher(self):
        near = simple_pattern(3)
        near.nodes[0].aggregates.append(
            AggregateAnnotation("COUNT", "O0", "x", "numx")
        )
        near.nodes[1].conditions.append(Condition("O1", "a", "v"))

        far = simple_pattern(3)
        far.nodes[0].aggregates.append(
            AggregateAnnotation("COUNT", "O0", "x", "numx")
        )
        far.nodes[2].conditions.append(Condition("O2", "a", "v"))
        assert pattern_score(near) < pattern_score(far)

    def test_higher_exactness_breaks_ties(self):
        exact = simple_pattern(2, exactness=1.0)
        fuzzy = simple_pattern(2, exactness=0.7)
        assert pattern_score(exact) < pattern_score(fuzzy)

    def test_no_targets_score_zero_distance(self):
        pattern = simple_pattern(2)
        assert pattern_score(pattern)[1] == 0.0


class TestRanking:
    def test_rank_patterns_sorted(self):
        patterns = [simple_pattern(3), simple_pattern(1), simple_pattern(2)]
        ranked = rank_patterns(patterns)
        assert [len(p.nodes) for p in ranked] == [1, 2, 3]

    def test_rank_is_deterministic(self):
        patterns = [simple_pattern(2), simple_pattern(2)]
        assert [p.signature() for p in rank_patterns(patterns)] == [
            p.signature() for p in rank_patterns(list(reversed(patterns)))
        ]

    def test_top_k(self):
        patterns = [simple_pattern(n) for n in (3, 1, 2)]
        assert len(top_k(patterns, 2)) == 2
        assert len(top_k(patterns, 10)) == 3

    def test_disambiguated_variant_adjacent_to_base(self):
        from repro.datasets import university_database
        from repro.keywords import KeywordQuery, NormalizedCatalog, TermMatcher
        from repro.patterns import PatternGenerator, disambiguate_all

        catalog = NormalizedCatalog(university_database())
        query = KeywordQuery("Green SUM Credit")
        tags = TermMatcher(catalog).match_query(query)
        patterns = disambiguate_all(
            PatternGenerator(catalog).generate(query, tags), catalog
        )
        ranked = rank_patterns(patterns)
        # the base pattern and its distinguished variant share all scores
        # except the signature tie-break, so they are adjacent
        flags = [p.distinguishes for p in ranked[:2]]
        assert set(flags) == {True, False}
