"""White-box tests of the generator's connection machinery: replication
groups, hub routing, tree construction."""

import pytest

from repro.keywords import NormalizedCatalog
from repro.patterns.generator import PatternGenerator, TerminalSpec


@pytest.fixture(scope="module")
def generator():
    from repro.datasets import university_database

    return PatternGenerator(NormalizedCatalog(university_database()))


def spec(orm_node: str, relation: str = None) -> TerminalSpec:
    return TerminalSpec(orm_node=orm_node, relation=relation or orm_node)


class TestReplicationGroups:
    def test_relationship_inherits_replication(self, generator):
        adjacency = {
            "Student": {"Enrol"},
            "Enrol": {"Student", "Course"},
            "Course": {"Enrol"},
        }
        groups = generator._replication_groups(
            set(adjacency), adjacency, multi={"Student"}
        )
        assert groups["Student"] == frozenset({"Student"})
        assert groups["Enrol"] == frozenset({"Student"})
        assert groups["Course"] == frozenset()  # object node absorbs

    def test_two_multi_types_cross(self, generator):
        adjacency = {
            "Student": {"Enrol"},
            "Enrol": {"Student", "Course"},
            "Course": {"Enrol"},
        }
        groups = generator._replication_groups(
            set(adjacency), adjacency, multi={"Student", "Course"}
        )
        assert groups["Enrol"] == frozenset({"Student", "Course"})

    def test_replication_stops_at_object_node(self, generator):
        # Student(x2) -- Enrol -- Course -- Teach -- Lecturer: the Course
        # object node absorbs, so Teach is never replicated
        adjacency = {
            "Student": {"Enrol"},
            "Enrol": {"Student", "Course"},
            "Course": {"Enrol", "Teach"},
            "Teach": {"Course", "Lecturer"},
            "Lecturer": {"Teach"},
        }
        groups = generator._replication_groups(
            set(adjacency), adjacency, multi={"Student"}
        )
        assert groups["Teach"] == frozenset()
        assert groups["Lecturer"] == frozenset()


class TestTreeEdges:
    def test_single_terminal_no_edges(self, generator):
        from collections import Counter

        edges = generator._tree_edges(["Student"], Counter({"Student": 1}))
        assert edges == set()

    def test_single_type_multiple_instances_gets_hub(self, generator):
        from collections import Counter

        edges = generator._tree_edges(["Student"], Counter({"Student": 2}))
        # hub path: Student - Enrol - Course
        assert edges == {("Enrol", "Student"), ("Course", "Enrol")}

    def test_nearest_object_like_path(self, generator):
        path = generator._nearest_object_like_path("Student")
        assert path == ["Student", "Enrol", "Course"]

    def test_nearest_hub_for_textbook(self, generator):
        path = generator._nearest_object_like_path("Textbook")
        assert path[0] == "Textbook"
        assert generator.graph.node(path[-1]).is_object_like


class TestConnectTerminals:
    def test_figure4_instance_counts(self, generator):
        from collections import Counter

        pattern = generator.connect_terminals(
            [spec("Student"), spec("Student"), spec("Course")]
        )
        counts = Counter(node.orm_node for node in pattern.nodes)
        assert counts == {"Student": 2, "Enrol": 2, "Course": 1}

    def test_annotations_land_on_distinct_instances(self, generator):
        from repro.patterns.pattern import Condition

        green = spec("Student")
        green.conditions.append(Condition("Student", "Sname", "Green", 2))
        george = spec("Student")
        george.conditions.append(Condition("Student", "Sname", "George", 1))
        pattern = generator.connect_terminals([green, george, spec("Course")])
        phrases = sorted(
            condition.phrase
            for node in pattern.nodes
            for condition in node.conditions
        )
        assert phrases == ["George", "Green"]
        # one condition per student node, never both on one
        for node in pattern.nodes:
            assert len(node.conditions) <= 1

    def test_empty_terminals_rejected(self, generator):
        from repro.errors import NoPatternError

        with pytest.raises(NoPatternError):
            generator.connect_terminals([])

    def test_three_terminals_via_teach(self, generator):
        pattern = generator.connect_terminals(
            [spec("Course"), spec("Lecturer"), spec("Textbook")]
        )
        names = sorted(node.orm_node for node in pattern.nodes)
        assert names == ["Course", "Lecturer", "Teach", "Textbook"]
