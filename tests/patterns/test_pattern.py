"""Unit tests for the query-pattern model."""

import pytest

from repro.orm import OrmSchemaGraph, RelationType
from repro.patterns import (
    AggregateAnnotation,
    Condition,
    GroupByAnnotation,
    QueryPattern,
)


@pytest.fixture
def graph(university_db) -> OrmSchemaGraph:
    return OrmSchemaGraph(university_db.schema)


@pytest.fixture
def figure4_pattern(graph) -> QueryPattern:
    """The pattern of Figure 4: two Students, two Enrols, one Course."""
    pattern = QueryPattern()
    course = pattern.add_node("Course", "Course", RelationType.OBJECT)
    enrol1 = pattern.add_node("Enrol", "Enrol", RelationType.RELATIONSHIP)
    enrol2 = pattern.add_node("Enrol", "Enrol", RelationType.RELATIONSHIP)
    green = pattern.add_node("Student", "Student", RelationType.OBJECT)
    george = pattern.add_node("Student", "Student", RelationType.OBJECT)
    green.conditions.append(Condition("Student", "Sname", "Green", 2))
    george.conditions.append(Condition("Student", "Sname", "George", 1))
    edge_sc = graph.edges_between("Enrol", "Course")[0]
    edge_ss = graph.edges_between("Enrol", "Student")[0]
    pattern.add_edge(enrol1.id, course.id, edge_sc)
    pattern.add_edge(enrol2.id, course.id, edge_sc)
    pattern.add_edge(enrol1.id, green.id, edge_ss)
    pattern.add_edge(enrol2.id, george.id, edge_ss)
    return pattern


class TestStructure:
    def test_connectivity(self, figure4_pattern):
        assert figure4_pattern.is_connected()

    def test_disconnected_detected(self):
        pattern = QueryPattern()
        pattern.add_node("A", "A", RelationType.OBJECT)
        pattern.add_node("B", "B", RelationType.OBJECT)
        assert not pattern.is_connected()

    def test_empty_pattern_not_connected(self):
        assert not QueryPattern().is_connected()

    def test_neighbors(self, figure4_pattern):
        course = figure4_pattern.nodes[0]
        assert sorted(figure4_pattern.neighbors(course.id)) == [1, 2]

    def test_distance(self, figure4_pattern):
        # Green student to George student: via enrol-course-enrol = 4 hops
        assert figure4_pattern.distance(3, 4) == 4
        assert figure4_pattern.distance(3, 3) == 0

    def test_adjacent_object_like(self, figure4_pattern):
        enrol1 = figure4_pattern.nodes[1]
        adjacent = figure4_pattern.adjacent_object_like(enrol1.id)
        assert {node.orm_node for node in adjacent} == {"Course", "Student"}

    def test_object_like_count(self, figure4_pattern):
        assert figure4_pattern.object_like_count() == 3


class TestAnnotations:
    def test_target_and_condition_nodes(self, figure4_pattern):
        course = figure4_pattern.nodes[0]
        course.aggregates.append(
            AggregateAnnotation("COUNT", "Course", "Code", "numCode")
        )
        assert [n.orm_node for n in figure4_pattern.target_nodes()] == ["Course"]
        condition_nodes = figure4_pattern.condition_nodes()
        assert {n.orm_node for n in condition_nodes} == {"Student"}

    def test_distinguishes_flag(self, figure4_pattern):
        assert not figure4_pattern.distinguishes
        green = figure4_pattern.nodes[3]
        green.groupbys.append(
            GroupByAnnotation("Student", ("Sid",), from_disambiguation=True)
        )
        assert figure4_pattern.distinguishes

    def test_explicit_groupby_does_not_distinguish(self, figure4_pattern):
        node = figure4_pattern.nodes[0]
        node.groupbys.append(GroupByAnnotation("Course", ("Code",)))
        assert not figure4_pattern.distinguishes

    def test_describe_mentions_annotations(self, figure4_pattern):
        course = figure4_pattern.nodes[0]
        course.aggregates.append(
            AggregateAnnotation("COUNT", "Course", "Code", "numCode", ("AVG",))
        )
        text = figure4_pattern.describe()
        assert "AVG(COUNT(Code))" in text
        assert "Sname~'Green'" in text


class TestCopyAndSignature:
    def test_copy_is_deep_for_annotations(self, figure4_pattern):
        clone = figure4_pattern.copy()
        clone.nodes[0].aggregates.append(
            AggregateAnnotation("COUNT", "Course", "Code", "numCode")
        )
        assert not figure4_pattern.nodes[0].aggregates

    def test_copy_preserves_signature(self, figure4_pattern):
        assert figure4_pattern.copy().signature() == figure4_pattern.signature()

    def test_signature_distinguishes_annotations(self, figure4_pattern):
        clone = figure4_pattern.copy()
        clone.nodes[0].groupbys.append(
            GroupByAnnotation("Course", ("Code",), from_disambiguation=True)
        )
        assert clone.signature() != figure4_pattern.signature()

    def test_signature_invariant_under_node_order(self, graph):
        def build(reverse: bool) -> QueryPattern:
            pattern = QueryPattern()
            names = ["Student", "Course"]
            if reverse:
                names.reverse()
            nodes = {
                name: pattern.add_node(name, name, RelationType.OBJECT)
                for name in names
            }
            enrol = pattern.add_node("Enrol", "Enrol", RelationType.RELATIONSHIP)
            edge_s = graph.edges_between("Enrol", "Student")[0]
            edge_c = graph.edges_between("Enrol", "Course")[0]
            pattern.add_edge(enrol.id, nodes["Student"].id, edge_s)
            pattern.add_edge(enrol.id, nodes["Course"].id, edge_c)
            return pattern

        assert build(False).signature() == build(True).signature()
