"""Unit tests for the ASCII pattern-tree rendering."""

import pytest

from repro.patterns import QueryPattern


class TestRenderTree:
    def test_empty_pattern(self):
        assert QueryPattern().render_tree() == "(empty pattern)"

    def test_figure6_shape(self, university_engine):
        pattern = next(
            p
            for p in university_engine.patterns("Green George COUNT Code")
            if p.distinguishes
        )
        tree = pattern.render_tree()
        lines = tree.splitlines()
        # rooted at the target (Course with the COUNT annotation)
        assert lines[0].startswith("[Course COUNT(Code)]")
        assert tree.count("[Enrol]") == 2
        assert "Sname~'Green'" in tree and "Sname~'George'" in tree
        assert "GROUPBY*(Sid)" in tree

    def test_single_node(self, university_engine):
        pattern = university_engine.patterns("Lecturer George")[0]
        tree = pattern.render_tree()
        assert tree.splitlines() == [pattern.nodes[0].describe()]

    def test_every_node_rendered_once(self, university_engine):
        for text in ("Green SUM Credit", "COUNT Lecturer GROUPBY Course"):
            pattern = university_engine.patterns(text)[0]
            tree = pattern.render_tree()
            assert len(tree.splitlines()) == len(pattern.nodes)

    def test_root_prefers_target_node(self, university_engine):
        pattern = university_engine.patterns("Green SUM Credit")[0]
        tree = pattern.render_tree()
        assert tree.splitlines()[0].startswith("[Course")
