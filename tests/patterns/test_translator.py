"""Unit tests for pattern translation to SQL (Section 3.1.3)."""

import pytest

from repro.keywords import KeywordQuery, NormalizedCatalog, TermMatcher
from repro.orm import OrmSchemaGraph
from repro.patterns import (
    PatternGenerator,
    PatternTranslator,
    disambiguate_all,
    rank_patterns,
)
from repro.relational.executor import execute_sql
from repro.sql.ast import DerivedTable, TableRef
from repro.sql.render import render


@pytest.fixture(scope="module")
def setup():
    from repro.datasets import university_database

    db = university_database()
    catalog = NormalizedCatalog(db)
    return db, catalog


def translate_best(catalog, text, distinguish=None):
    query = KeywordQuery(text)
    tags = TermMatcher(catalog).match_query(query)
    patterns = disambiguate_all(
        PatternGenerator(catalog).generate(query, tags), catalog
    )
    ranked = rank_patterns(patterns)
    if distinguish is not None:
        ranked = [p for p in ranked if p.distinguishes == distinguish]
    translator = PatternTranslator(catalog.graph)
    return translator.translate(ranked[0]), ranked[0]


class TestSelectClause:
    def test_aggregate_alias(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "COUNT Student GROUPBY Course")
        sql = render(select)
        assert "COUNT(S1.Sid) AS numSid" in sql
        assert "GROUP BY C1.Code" in sql
        assert "C1.Code" in sql.split("FROM")[0]  # group key also selected

    def test_disambiguation_selects_identifier(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "Green SUM Credit", distinguish=True)
        sql = render(select)
        assert "S1.Sid" in sql.split("FROM")[0]
        assert "GROUP BY S1.Sid" in sql


class TestFromClause:
    def test_plain_tables_for_fully_connected_relationship(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "COUNT Student GROUPBY Course")
        assert all(isinstance(item, TableRef) for item in select.from_items)

    def test_partial_relationship_gets_distinct_projection(self, setup):
        # Teach is ternary; a pattern touching only Course+Lecturer must
        # project DISTINCT (Code, Lid) — Example 6
        db, catalog = setup
        select, __ = translate_best(catalog, "COUNT Lecturer GROUPBY Course")
        derived = [
            item for item in select.from_items if isinstance(item, DerivedTable)
        ]
        assert len(derived) == 1
        inner = derived[0].select
        assert inner.distinct
        assert sorted(item.expr.name for item in inner.items) == ["Code", "Lid"]
        assert inner.from_items[0].table == "Teach"

    def test_dedup_can_be_disabled_for_ablation(self, setup):
        db, catalog = setup
        query = KeywordQuery("COUNT Lecturer GROUPBY Course")
        tags = TermMatcher(catalog).match_query(query)
        pattern = rank_patterns(PatternGenerator(catalog).generate(query, tags))[0]
        translator = PatternTranslator(catalog.graph, dedup_relationships=False)
        select = translator.translate(pattern)
        assert all(isinstance(item, TableRef) for item in select.from_items)
        # and the ablated SQL over-counts: lecturer l1 teaches c1 with two
        # textbooks, so c1 counts 3 instead of 2
        rows = dict(execute_sql(db, select).rows)
        assert rows["c1"] == 3

    def test_aliases_unique(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "Green George COUNT Code")
        aliases = [item.alias for item in select.from_items]
        assert len(aliases) == len(set(aliases))


class TestWhereClause:
    def test_join_conditions_follow_foreign_keys(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "COUNT Student GROUPBY Course")
        sql = render(select)
        assert "E1.Sid = S1.Sid" in sql
        assert "E1.Code = C1.Code" in sql

    def test_conditions_render_contains(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "Green SUM Credit")
        assert "LIKE '%Green%'" in render(select)

    def test_self_join_has_two_enrol_joins(self, setup):
        db, catalog = setup
        select, __ = translate_best(
            catalog, "Green George COUNT Code", distinguish=True
        )
        sql = render(select)
        assert sql.count("Enrol") == 2
        assert sql.count("Student") == 2


class TestNestedAggregates:
    def test_example7_structure(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "AVG COUNT Lecturer GROUPBY Course")
        # outer query averages the inner count
        assert len(select.from_items) == 1
        assert isinstance(select.from_items[0], DerivedTable)
        sql = render(select)
        assert "AVG(numLid)" in sql
        assert "COUNT(L1.Lid) AS numLid" in sql

    def test_example7_answer(self, setup):
        db, catalog = setup
        select, __ = translate_best(catalog, "AVG COUNT Lecturer GROUPBY Course")
        assert execute_sql(db, select).scalar() == pytest.approx(4 / 3)

    def test_double_nesting(self, setup):
        db, catalog = setup
        select, __ = translate_best(
            catalog, "MAX AVG COUNT Lecturer GROUPBY Course"
        )
        sql = render(select)
        assert "MAX(avgnumLid)" in sql
        assert execute_sql(db, select).scalar() == pytest.approx(4 / 3)


class TestComponentRelations:
    def test_component_attribute_joins_component_relation(self):
        from repro.relational.database import Database
        from repro.relational.schema import DatabaseSchema, ForeignKey
        from repro.relational.types import DataType

        TEXT = DataType.TEXT
        schema = DatabaseSchema("db")
        schema.add_relation("Student", [("Sid", TEXT), ("Sname", TEXT)], ["Sid"])
        schema.add_relation(
            "StudentHobby",
            [("Sid", TEXT), ("Hobby", TEXT)],
            ["Sid", "Hobby"],
            [ForeignKey(("Sid",), "Student", ("Sid",))],
        )
        db = Database(schema)
        db.load("Student", [("s1", "Green"), ("s2", "Blue")])
        db.load(
            "StudentHobby",
            [("s1", "chess"), ("s1", "tennis"), ("s2", "chess")],
        )
        catalog = NormalizedCatalog(db)
        query = KeywordQuery("Green COUNT Hobby")
        tags = TermMatcher(catalog).match_query(query)
        patterns = rank_patterns(PatternGenerator(catalog).generate(query, tags))
        select = PatternTranslator(catalog.graph).translate(patterns[0])
        sql = render(select)
        assert "StudentHobby" in sql
        assert execute_sql(db, select).scalar() == 2
