"""Unit tests for pattern disambiguation (Section 3.1.2)."""

import pytest

from repro.keywords import KeywordQuery, NormalizedCatalog, TermMatcher
from repro.patterns import PatternGenerator, disambiguate_all, disambiguate_pattern


@pytest.fixture(scope="module")
def catalog():
    from repro.datasets import university_database

    return NormalizedCatalog(university_database())


def patterns_for(catalog, text):
    query = KeywordQuery(text)
    tags = TermMatcher(catalog).match_query(query)
    return PatternGenerator(catalog).generate(query, tags)


class TestDisambiguation:
    def test_multi_object_condition_forks(self, catalog):
        base = patterns_for(catalog, "Green SUM Credit")[0]
        variants = disambiguate_pattern(base, catalog)
        assert len(variants) == 2
        assert not variants[0].distinguishes
        assert variants[1].distinguishes

    def test_groupby_uses_identifier(self, catalog):
        base = patterns_for(catalog, "Green SUM Credit")[0]
        distinguished = disambiguate_pattern(base, catalog)[1]
        student = next(
            n for n in distinguished.nodes if n.orm_node == "Student"
        )
        disamb = [g for g in student.groupbys if g.from_disambiguation]
        assert disamb[0].attributes == ("Sid",)

    def test_unique_object_condition_does_not_fork(self, catalog):
        # George matches exactly one student
        base = next(
            p
            for p in patterns_for(catalog, "George SUM Credit")
            if any(
                n.orm_node == "Student" and n.conditions for n in p.nodes
            )
        )
        assert len(disambiguate_pattern(base, catalog)) == 1

    def test_two_multi_nodes_fork_exponentially(self, catalog):
        # two Green students... use Green twice: Green(Student) and
        # Green(Student) — instead use Green + Java? Java unique. Use the
        # A7-analogue: Green Green is degenerate; test with Green and the
        # ambiguous 'George' resolved to Student (1 object) -> only Green forks
        base = patterns_for(catalog, "Green George COUNT Code")[0]
        variants = disambiguate_pattern(base, catalog)
        assert len(variants) == 2  # only the Green node is multi-object

    def test_original_pattern_not_mutated(self, catalog):
        base = patterns_for(catalog, "Green SUM Credit")[0]
        before = base.signature()
        disambiguate_pattern(base, catalog)
        assert base.signature() == before

    def test_disambiguate_all_dedupes(self, catalog):
        patterns = patterns_for(catalog, "Green SUM Credit")
        variants = disambiguate_all(patterns, catalog)
        signatures = [v.signature() for v in variants]
        assert len(signatures) == len(set(signatures))

    def test_explicit_groupby_on_identifier_not_forked(self, catalog):
        # {COUNT Student GROUPBY Course} + a condition that already groups
        # by Code: an explicit GROUPBY(identifier) must not fork again
        patterns = patterns_for(catalog, "Java COUNT Student GROUPBY Course")
        merged = [
            p
            for p in patterns
            for n in p.nodes
            if n.orm_node == "Course" and n.conditions and n.groupbys
        ]
        if merged:  # context merge produced condition+groupby on one node
            variants = disambiguate_pattern(merged[0], catalog)
            assert len(variants) == 1

    def test_relationship_condition_never_forks(self, catalog):
        # a condition on a relationship attribute (Grade) is not an object
        patterns = patterns_for(catalog, "Grade COUNT Student")
        for pattern in patterns:
            for variant in disambiguate_pattern(pattern, catalog):
                for node in variant.nodes:
                    if node.orm_node == "Enrol":
                        assert not any(
                            g.from_disambiguation for g in node.groupbys
                        )
