"""ViewCatalog extras: suggestions and numeric matching on the view."""

import pytest

from repro.keywords.suggest import complete_term, suggest_queries


class TestViewCatalogCompletions:
    def test_value_completions_come_from_stored_data(self, enrolment_engine):
        catalog = enrolment_engine.catalog
        tokens = catalog.value_completions("gre")
        assert "green" in tokens

    def test_complete_term_on_view(self, enrolment_engine):
        suggestions = complete_term(enrolment_engine.catalog, "gre")
        values = [s for s in suggestions if s.kind == "value"]
        assert values
        assert "2 objects" in values[0].detail

    def test_metadata_completions_use_view_names(self, tpch_unnorm_engine):
        suggestions = complete_term(tpch_unnorm_engine.catalog, "sup")
        assert any(
            s.kind == "relation" and s.text == "Supplier" for s in suggestions
        )

    def test_suggest_queries_on_view_run(self, tpch_unnorm_engine):
        for text in suggest_queries(tpch_unnorm_engine.catalog, limit=4):
            result = tpch_unnorm_engine.search(text, k=1)
            assert result.best.execute() is not None


class TestViewCatalogNumericMatching:
    def test_numeric_hit_maps_to_view_owner(self, enrolment_engine):
        hits = [
            hit
            for hit in enrolment_engine.catalog.value_matches("24")
            if hit.value is not None
        ]
        assert hits
        assert hits[0].attribute == "Age"
        assert hits[0].distinct_objects == 1  # only s2 is 24

    def test_numeric_distinct_counts_by_view_identifier(self, enrolment_engine):
        # Credit 5.0 belongs to one course (c1) though it appears in 3 rows
        hits = [
            hit
            for hit in enrolment_engine.catalog.value_matches("5")
            if hit.attribute == "Credit"
        ]
        assert hits and hits[0].distinct_objects == 1
