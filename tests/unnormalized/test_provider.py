"""Unit tests for the unnormalized source provider (fragment subqueries)."""

import pytest

from repro.orm import RelationType
from repro.patterns.pattern import QueryPattern
from repro.sql.ast import DerivedTable, TableRef
from repro.sql.render import render
from repro.unnormalized import UnnormalizedSourceProvider


def node_for(view, relation_name):
    pattern = QueryPattern()
    node_type = view.graph.node(relation_name).type
    return pattern.add_node(relation_name, relation_name, node_type)


class TestSingleFragment:
    def test_distinct_added_when_key_not_retained(self, enrolment_engine):
        view = enrolment_engine.view
        student_rel = next(
            rel.name for rel in view.relations.values() if rel.key == ("Sid",)
        )
        provider = UnnormalizedSourceProvider(view)
        item = provider.from_item(
            node_for(view, student_rel), ["Sname"], False, "S1"
        )
        assert isinstance(item, DerivedTable)
        assert item.select.distinct
        # the view key is always retained
        names = [i.expr.name for i in item.select.items]
        assert "Sid" in names and "Sname" in names

    def test_no_distinct_when_source_key_retained(self, enrolment_engine):
        view = enrolment_engine.view
        enrol_rel = next(
            rel.name for rel in view.relations.values() if len(rel.key) == 2
        )
        provider = UnnormalizedSourceProvider(view)
        item = provider.from_item(
            node_for(view, enrol_rel), ["Sid", "Code"], False, "E1"
        )
        assert isinstance(item, DerivedTable)
        assert not item.select.distinct

    def test_force_distinct_restricts_to_requested(self, tpch_unnorm_engine):
        view = tpch_unnorm_engine.view
        provider = UnnormalizedSourceProvider(view)
        item = provider.from_item(
            node_for(view, "Lineitem"), ["partkey", "suppkey"], True, "L1"
        )
        assert isinstance(item, DerivedTable)
        assert item.select.distinct
        names = [i.expr.name for i in item.select.items]
        assert names == ["partkey", "suppkey"]  # no orderkey added

    def test_whole_relation_becomes_table_ref(self, tpch_unnorm_engine):
        # Region survived denormalization; reading all its columns needs no
        # subquery
        view = tpch_unnorm_engine.view
        provider = UnnormalizedSourceProvider(view)
        item = provider.from_item(
            node_for(view, "Region"), ["regionkey", "rname"], False, "R1"
        )
        assert isinstance(item, TableRef)
        assert item.table == "Region"

    def test_fragment_use_metadata_recorded(self, enrolment_engine):
        view = enrolment_engine.view
        provider = UnnormalizedSourceProvider(view)
        student_rel = next(
            rel.name for rel in view.relations.values() if rel.key == ("Sid",)
        )
        provider.from_item(node_for(view, student_rel), ["Sname"], False, "S1")
        use = provider.fragment_uses["S1"]
        assert use.source == "Enrolment"
        assert use.view_key == ("Sid",)
        assert use.distinct


class TestJoinedFragments:
    def test_merged_view_relation_joins_fragments(self, fig2_engine):
        # Department needs Dname (from Department) and Fid (from Lecturer)
        view = fig2_engine.view
        provider = UnnormalizedSourceProvider(view)
        item = provider.from_item(
            node_for(view, "Department"), ["Did", "Dname", "Fid"], False, "D1"
        )
        assert isinstance(item, DerivedTable)
        sql = render(item.select)
        assert "Department" in sql and "Lecturer" in sql
        assert "F1.Did = F2.Did" in sql

    def test_single_fragment_preferred_when_sufficient(self, fig2_engine):
        view = fig2_engine.view
        provider = UnnormalizedSourceProvider(view)
        item = provider.from_item(
            node_for(view, "Department"), ["Did", "Fid"], False, "D1"
        )
        # (Did, Fid) is covered by the Lecturer fragment alone
        assert isinstance(item, DerivedTable)
        sql = render(item.select)
        assert "Lecturer" in sql and "Department" not in sql


class TestNaiveMode:
    def test_naive_projects_all_fragment_attributes(self, enrolment_engine):
        view = enrolment_engine.view
        provider = UnnormalizedSourceProvider(view, naive=True)
        student_rel = next(
            rel.name for rel in view.relations.values() if rel.key == ("Sid",)
        )
        item = provider.from_item(
            node_for(view, student_rel), ["Sname"], False, "S1"
        )
        names = [i.expr.name for i in item.select.items]
        assert set(names) == {"Sid", "Sname", "Age"}
