"""Unit tests for SQL rewriting Rules 1-3 (Section 4.1, Example 10)."""

import pytest

from repro.relational.executor import execute_sql
from repro.sql.ast import DerivedTable, TableRef
from repro.sql.render import render
from repro.unnormalized.rewriter import (
    apply_rule1,
    apply_rule2,
    apply_rule3,
    referenced_columns,
    rewrite_qualifiers,
)
from repro.sql.parser import parse
from repro.unnormalized.provider import FragmentUse


def example9_sql() -> str:
    """The paper's Example 9 SQL (5 subqueries over Enrolment)."""
    return (
        "SELECT S1.Sid, COUNT(C1.Code) AS numCode FROM "
        "(SELECT DISTINCT Code, Title, Credit FROM Enrolment) C1, "
        "(SELECT Sid, Code, Grade FROM Enrolment) E1, "
        "(SELECT DISTINCT Sid, Sname, Age FROM Enrolment) S1, "
        "(SELECT Sid, Code, Grade FROM Enrolment) E2, "
        "(SELECT DISTINCT Sid, Sname, Age FROM Enrolment) S2 "
        "WHERE C1.Code = E1.Code AND C1.Code = E2.Code "
        "AND S1.Sid = E1.Sid AND S1.Sname LIKE '%Green%' "
        "AND S2.Sid = E2.Sid AND S2.Sname LIKE '%George%' "
        "GROUP BY S1.Sid"
    )


def example9_uses() -> dict:
    course = FragmentUse("C1", "Enrolment", ("Code", "Title", "Credit"), ("Code",), True)
    enrol1 = FragmentUse("E1", "Enrolment", ("Sid", "Code", "Grade"), ("Sid", "Code"), False)
    student1 = FragmentUse("S1", "Enrolment", ("Sid", "Sname", "Age"), ("Sid",), True)
    enrol2 = FragmentUse("E2", "Enrolment", ("Sid", "Code", "Grade"), ("Sid", "Code"), False)
    student2 = FragmentUse("S2", "Enrolment", ("Sid", "Sname", "Age"), ("Sid",), True)
    return {u.alias: u for u in (course, enrol1, student1, enrol2, student2)}


class TestRule3:
    def test_example10_collapses_to_two_scans(self, enrolment_db):
        select = parse(example9_sql())
        rewritten = apply_rule3(
            select, example9_uses(), enrolment_db.schema
        )
        tables = [
            item for item in rewritten.from_items if isinstance(item, TableRef)
        ]
        assert len(tables) == 2
        assert all(t.table == "Enrolment" for t in tables)
        sql = render(rewritten)
        assert "U1.Code = U2.Code" in sql or "U2.Code = U1.Code" in sql
        assert "(SELECT" not in sql  # no subqueries remain

    def test_example10_preserves_answers(self, enrolment_db):
        original = parse(example9_sql())
        rewritten = apply_rule3(original, example9_uses(), enrolment_db.schema)
        assert execute_sql(enrolment_db, original) == execute_sql(
            enrolment_db, rewritten
        )
        rows = execute_sql(enrolment_db, rewritten).sorted_rows()
        assert rows == [("s2", 1), ("s3", 2)]

    def test_same_role_never_merged(self, enrolment_db):
        # E1 and E2 are the same projection role: they must end up in
        # different units (a genuine self-join), never one scan
        select = parse(example9_sql())
        rewritten = apply_rule3(select, example9_uses(), enrolment_db.schema)
        assert len(rewritten.from_items) == 2

    def test_no_merge_without_lossless_join(self, enrolment_db):
        # join S1-C1 on nothing shared: no equality edge, so no merge
        sql = (
            "SELECT S1.Sname, C1.Title FROM "
            "(SELECT DISTINCT Sid, Sname FROM Enrolment) S1, "
            "(SELECT DISTINCT Code, Title FROM Enrolment) C1"
        )
        uses = {
            "S1": FragmentUse("S1", "Enrolment", ("Sid", "Sname"), ("Sid",), True),
            "C1": FragmentUse("C1", "Enrolment", ("Code", "Title"), ("Code",), True),
        }
        select = parse(sql)
        assert apply_rule3(select, uses, enrolment_db.schema) is select

    def test_union_must_cover_source_key(self, enrolment_db):
        # S1 x S1b joined on Sid but neither holds Code: union misses the
        # Enrolment key, so replacement would change multiplicity
        sql = (
            "SELECT S1.Sname FROM "
            "(SELECT DISTINCT Sid, Sname FROM Enrolment) S1, "
            "(SELECT DISTINCT Sid, Age FROM Enrolment) S2 "
            "WHERE S1.Sid = S2.Sid"
        )
        uses = {
            "S1": FragmentUse("S1", "Enrolment", ("Sid", "Sname"), ("Sid",), True),
            "S2": FragmentUse("S2", "Enrolment", ("Sid", "Age"), ("Sid",), True),
        }
        select = parse(sql)
        assert apply_rule3(select, uses, enrolment_db.schema) is select


class TestRule1:
    def test_unused_attributes_pruned(self):
        sql = (
            "SELECT C1.Code FROM "
            "(SELECT DISTINCT Code, Title, Credit FROM Enrolment) C1"
        )
        uses = {
            "C1": FragmentUse(
                "C1", "Enrolment", ("Code", "Title", "Credit"), ("Code",), True
            )
        }
        rewritten = apply_rule1(parse(sql), uses)
        inner = rewritten.from_items[0].select
        assert [item.expr.name for item in inner.items] == ["Code"]

    def test_view_key_never_pruned(self):
        sql = (
            "SELECT S1.Sname FROM "
            "(SELECT DISTINCT Sid, Sname, Age FROM Enrolment) S1"
        )
        uses = {
            "S1": FragmentUse(
                "S1", "Enrolment", ("Sid", "Sname", "Age"), ("Sid",), True
            )
        }
        rewritten = apply_rule1(parse(sql), uses)
        inner = rewritten.from_items[0].select
        names = [item.expr.name for item in inner.items]
        assert "Sid" in names  # key kept, Age dropped
        assert "Age" not in names

    def test_untracked_subqueries_left_alone(self):
        sql = "SELECT R.a FROM (SELECT a, b FROM T) R"
        rewritten = apply_rule1(parse(sql), {})
        assert len(rewritten.from_items[0].select.items) == 2


class TestRule2:
    def test_condition_pushed_into_subquery(self):
        sql = (
            "SELECT S1.Sid FROM "
            "(SELECT DISTINCT Sid, Sname FROM Enrolment) S1 "
            "WHERE S1.Sname LIKE '%Green%'"
        )
        rewritten = apply_rule2(parse(sql))
        assert rewritten.where is None
        inner = rewritten.from_items[0].select
        assert "LIKE '%Green%'" in render(inner)

    def test_condition_on_base_table_not_pushed(self):
        sql = "SELECT S.Sid FROM Student S WHERE S.Sname LIKE '%Green%'"
        select = parse(sql)
        assert apply_rule2(select) is select

    def test_condition_on_unprojected_column_not_pushed(self):
        sql = (
            "SELECT S1.Sid FROM (SELECT Sid FROM Enrolment) S1 "
            "WHERE S1.Sname LIKE '%Green%'"
        )
        rewritten = apply_rule2(parse(sql))
        assert rewritten.where is not None


class TestUtilities:
    def test_rewrite_qualifiers(self):
        from repro.sql.render import render_expr

        select = parse("SELECT A.x FROM T A WHERE A.y = 1 AND B.z = 2")
        new_where = rewrite_qualifiers(select.where, {"A": "U"})
        text = render_expr(new_where)
        assert "U.y" in text and "B.z" in text

    def test_rewrite_qualifiers_handles_contains_and_funcs(self):
        from repro.sql.render import render_expr

        select = parse(
            "SELECT COUNT(A.x) FROM T A WHERE A.name LIKE '%g%'"
        )
        rewritten_item = rewrite_qualifiers(select.items[0].expr, {"A": "U"})
        rewritten_where = rewrite_qualifiers(select.where, {"A": "U"})
        assert render_expr(rewritten_item) == "COUNT(U.x)"
        assert "U.name LIKE" in render_expr(rewritten_where)

    def test_referenced_columns(self):
        select = parse(
            "SELECT R.a, COUNT(R.b) FROM (SELECT a, b, c FROM T) R "
            "WHERE R.c = 1 GROUP BY R.a"
        )
        assert referenced_columns(select, "R") == {"a", "b", "c"}
