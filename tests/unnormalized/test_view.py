"""Unit tests for the normalized 3NF view (Algorithm 1)."""

import pytest

from repro.unnormalized import NormalizedView, ViewCatalog, database_is_normalized


class TestNormalizedDetection:
    def test_figure1_is_normalized(self, university_db):
        assert database_is_normalized(university_db)

    def test_enrolment_is_unnormalized(self, enrolment_db, enrolment_fds):
        assert not database_is_normalized(enrolment_db, enrolment_fds)

    def test_enrolment_without_fds_looks_normalized(self, enrolment_db):
        # without declared FDs only the key FD holds, and that is 3NF
        assert database_is_normalized(enrolment_db)

    def test_figure2_is_unnormalized(self, fig2_db):
        assert not database_is_normalized(
            fig2_db, {"Lecturer": ["Did -> Fid"]}
        )


class TestExample8View:
    @pytest.fixture(scope="class")
    def view(self, enrolment_db, enrolment_fds):
        return NormalizedView.build(enrolment_db, enrolment_fds)

    def test_three_view_relations(self, view):
        assert len(view.relations) == 3
        keys = {rel.key for rel in view.relations.values()}
        assert keys == {("Sid",), ("Code",), ("Sid", "Code")}

    def test_fragments_are_projections_of_enrolment(self, view):
        for rel in view.relations.values():
            assert [f.source for f in rel.fragments] == ["Enrolment"]

    def test_student_fragment_attributes(self, view):
        student = next(
            rel for rel in view.relations.values() if rel.key == ("Sid",)
        )
        assert set(student.column_names) == {"Sid", "Sname", "Age"}

    def test_inferred_foreign_keys(self, view):
        enrol = view.schema.relation(
            next(r.name for r in view.relations.values() if len(r.key) == 2)
        )
        targets = {fk.ref_table for fk in enrol.foreign_keys}
        assert len(targets) == 2

    def test_orm_graph_shape(self, view):
        relationship = [
            name
            for name, node in view.graph.nodes.items()
            if node.type.value == "relationship"
        ]
        assert len(relationship) == 1
        assert len(view.graph.object_like_neighbors(relationship[0])) == 2

    def test_describe_mentions_projections(self, view):
        assert "pi_{" in view.describe()


class TestFigure2View:
    def test_department_merges_lecturer_fragment(self, fig2_engine):
        view = fig2_engine.view
        department = view.relation("Department")
        sources = {f.source for f in department.fragments}
        assert sources == {"Department", "Lecturer"}
        assert set(department.column_names) == {"Did", "Dname", "Fid"}

    def test_faculty_untouched(self, fig2_engine):
        faculty = fig2_engine.view.relation("Faculty")
        assert len(faculty.fragments) == 1
        assert faculty.fragments[0].source == "Faculty"


class TestTpchView:
    def test_name_hints_applied(self, tpch_unnorm_engine):
        view = tpch_unnorm_engine.view
        for name in ("Part", "Supplier", "Order", "Lineitem", "Customer", "Nation"):
            assert name in view.relations, name

    def test_nation_merges_three_sources(self, tpch_unnorm_engine):
        nation = tpch_unnorm_engine.view.relation("Nation")
        sources = {f.source for f in nation.fragments}
        assert sources == {"Ordering", "Customer", "Nation"}
        assert set(nation.column_names) == {"nationkey", "nname", "regionkey"}

    def test_lineitem_is_relationship(self, tpch_unnorm_engine):
        graph = tpch_unnorm_engine.view.graph
        assert graph.node("Lineitem").type.value == "relationship"
        assert graph.object_like_neighbors("Lineitem") == [
            "Order",
            "Part",
            "Supplier",
        ]

    def test_view_orm_graph_isomorphic_to_normalized(
        self, tpch_unnorm_engine, tpch_engine
    ):
        unnorm = tpch_unnorm_engine.graph
        norm = tpch_engine.graph
        assert set(unnorm.nodes) == set(norm.nodes)
        for name in norm.nodes:
            assert unnorm.neighbors(name) == norm.neighbors(name)


class TestViewCatalog:
    def test_value_match_maps_to_owner(self, enrolment_engine):
        catalog = enrolment_engine.catalog
        hits = catalog.value_matches("Green")
        assert len(hits) == 1
        assert hits[0].attribute == "Sname"
        assert hits[0].distinct_objects == 2

    def test_key_value_match_prefers_identified_relation(self, enrolment_engine):
        # 'c1' is a Code value; its owner is the course view relation
        catalog = enrolment_engine.catalog
        hits = catalog.value_matches("c1")
        assert any(
            catalog.view.relation(hit.relation).key == ("Code",) for hit in hits
        )

    def test_distinct_object_count(self, enrolment_engine):
        catalog = enrolment_engine.catalog
        student_rel = next(
            rel.name
            for rel in catalog.view.relations.values()
            if rel.key == ("Sid",)
        )
        assert catalog.distinct_object_count(student_rel, "Sname", "Green") == 2
