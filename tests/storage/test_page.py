"""Slotted-page layout: insertion, retrieval, fullness."""

import pytest

from repro.errors import StorageError
from repro.storage import SlottedPage
from repro.storage.page import PAGE_HEADER_SIZE, SLOT_SIZE


def blank(page_size=64):
    return SlottedPage.initialize(bytearray(page_size))


class TestSlottedPage:
    def test_blank_page(self):
        page = blank()
        assert page.slot_count == 0
        assert len(page) == 0
        assert page.free_space == 64 - PAGE_HEADER_SIZE

    def test_insert_and_record_roundtrip(self):
        page = blank()
        assert page.insert(b"alpha") == 0
        assert page.insert(b"beta") == 1
        assert page.record(0) == b"alpha"
        assert page.record(1) == b"beta"
        assert list(page.records()) == [b"alpha", b"beta"]

    def test_empty_records_are_representable(self):
        page = blank()
        assert page.insert(b"") == 0
        assert page.record(0) == b""

    def test_page_full_returns_none(self):
        page = blank()
        record = b"x" * 8
        inserted = 0
        while page.insert(record) is not None:
            inserted += 1
        assert inserted == SlottedPage.capacity_for(8, 64)
        assert inserted >= 2
        # the page is full but intact
        assert list(page.records()) == [record] * inserted

    def test_record_too_big_for_any_page_raises(self):
        page = blank()
        too_big = b"x" * (64 - PAGE_HEADER_SIZE - SLOT_SIZE + 1)
        with pytest.raises(StorageError, match="cannot fit"):
            page.insert(too_big)

    def test_slot_out_of_range(self):
        page = blank()
        page.insert(b"only")
        with pytest.raises(StorageError, match="slot 1 out of range"):
            page.record(1)
        with pytest.raises(StorageError, match="out of range"):
            page.record(-1)

    def test_mutations_write_through_to_the_buffer(self):
        data = bytearray(64)
        page = SlottedPage.initialize(data)
        page.insert(b"shared")
        # a second view over the same buffer sees the record
        assert SlottedPage(data).record(0) == b"shared"

    def test_capacity_for_degenerate_sizes(self):
        assert SlottedPage.capacity_for(1000, 64) == 0
        assert SlottedPage.capacity_for(1, 64) == (64 - PAGE_HEADER_SIZE) // 5
