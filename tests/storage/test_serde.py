"""Row serde: type-exact round-trips, wide ints, corruption detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.storage.serde import decode_row, encode_row


def make_schema():
    schema = DatabaseSchema("serde")
    schema.add_relation(
        "T",
        [
            ("i", DataType.INT),
            ("f", DataType.FLOAT),
            ("t", DataType.TEXT),
            ("d", DataType.DATE),
            ("b", DataType.BOOL),
        ],
        ["i"],
    )
    return schema.relation("T")


SCHEMA = make_schema()


class TestRoundTrip:
    def test_plain_row(self):
        row = (7, 2.5, "héllo wörld", "2016-03-15", True)
        assert decode_row(encode_row(row, SCHEMA), SCHEMA) == row

    def test_nulls_everywhere(self):
        row = (None, None, None, None, None)
        assert decode_row(encode_row(row, SCHEMA), SCHEMA) == row

    def test_types_are_exact(self):
        row = (0, -0.0, "", "x", False)
        decoded = decode_row(encode_row(row, SCHEMA), SCHEMA)
        assert decoded == row
        assert isinstance(decoded[0], int) and not isinstance(decoded[0], bool)
        assert isinstance(decoded[1], float)
        assert isinstance(decoded[4], bool)

    def test_int_wider_than_64_bits(self):
        for wide in (2**63, -(2**63) - 1, 10**30, -(10**30)):
            row = (wide, None, None, None, None)
            assert decode_row(encode_row(row, SCHEMA), SCHEMA) == row

    @settings(max_examples=200, deadline=None)
    @given(
        st.tuples(
            st.one_of(st.none(), st.integers()),
            st.one_of(st.none(), st.floats(allow_nan=False)),
            st.one_of(st.none(), st.text(max_size=40)),
            st.one_of(st.none(), st.text(max_size=12)),
            st.one_of(st.none(), st.booleans()),
        )
    )
    def test_property_roundtrip(self, row):
        assert decode_row(encode_row(row, SCHEMA), SCHEMA) == row


class TestErrors:
    def test_wrong_arity(self):
        with pytest.raises(StorageError, match="cannot encode"):
            encode_row((1, 2), SCHEMA)

    def test_truncated_record(self):
        buffer = encode_row((7, 2.5, "abc", "2016", True), SCHEMA)
        with pytest.raises(StorageError, match="corrupt record"):
            decode_row(buffer[:-3], SCHEMA)

    def test_trailing_bytes(self):
        buffer = encode_row((7, 2.5, "abc", "2016", True), SCHEMA)
        with pytest.raises(StorageError, match="trailing bytes"):
            decode_row(buffer + b"junk", SCHEMA)
