"""SPIMI inverted index: block spills + k-way merge must equal the
single-pass in-memory build."""

import os

from repro.datasets import university_database
from repro.relational.index import InvertedIndex, tokenize_text
from repro.storage import SpimiBuilder, SpimiIndex


def feed(builder, database):
    """Index every text column of *database* exactly like the in-memory
    InvertedIndex (one add per distinct token per value)."""
    from repro.relational.types import DataType

    for relation in database.schema:
        text_columns = [
            (i, col.name)
            for i, col in enumerate(relation.columns)
            if col.dtype in (DataType.TEXT, DataType.DATE)
        ]
        for pos, row in enumerate(database.table(relation.name).rows):
            for col_idx, col_name in text_columns:
                value = row[col_idx]
                if value is None:
                    continue
                for token in set(tokenize_text(str(value))):
                    builder.add(token, relation.name, col_name, pos)


def build_spimi(tmp_path, database, block_budget):
    block_dir = tmp_path / f"blocks-{block_budget}"
    block_dir.mkdir()
    builder = SpimiBuilder(str(block_dir), block_budget)
    feed(builder, database)
    postings_path = str(tmp_path / f"postings-{block_budget}.bin")
    dict_path = str(tmp_path / f"postings-{block_budget}.json")
    stats = builder.finalize(postings_path, dict_path)
    return SpimiIndex(postings_path, dict_path), stats, block_dir


def memory_index(database):
    index = InvertedIndex()
    index.add_tables(
        database.table(relation.name) for relation in database.schema
    )
    return index


class TestSpimiEqualsInMemory:
    def test_tiny_blocks_match_single_pass(self, tmp_path):
        database = university_database()
        reference = memory_index(database)
        spilled, spilled_stats, block_dir = build_spimi(tmp_path, database, 25)
        unspilled, unspilled_stats, _ = build_spimi(tmp_path, database, 10**9)
        try:
            assert spilled_stats["blocks"] > 1
            assert unspilled_stats["blocks"] == 1
            assert spilled_stats["tokens"] == unspilled_stats["tokens"]
            assert spilled_stats["postings"] == unspilled_stats["postings"]
            vocab = sorted(spilled.vocabulary())
            assert vocab == sorted(unspilled.vocabulary())
            assert vocab == sorted(reference._postings)
            for token in vocab:
                spilled_postings = {
                    slot: set(positions)
                    for slot, positions in spilled.postings(token).items()
                }
                assert spilled_postings == {
                    slot: set(positions)
                    for slot, positions in unspilled.postings(token).items()
                }
                assert spilled_postings == {
                    slot: set(positions)
                    for slot, positions in reference._postings[token].items()
                }
        finally:
            spilled.close()
            unspilled.close()
        # blocks are cleaned up after the merge
        assert list(block_dir.glob("*")) == []

    def test_candidates_cover_verified_matches(self, tmp_path):
        database = university_database()
        reference = memory_index(database)
        index, _, _ = build_spimi(tmp_path, database, 25)
        try:
            for relation, attribute, phrase in [
                ("Student", "Sname", "green"),
                ("Course", "Title", "java"),
                ("Textbook", "Tname", "program"),
            ]:
                verified = reference.positions_for_contains(
                    relation, attribute, phrase
                )
                first = tokenize_text(phrase)[0]
                candidates = index.candidate_positions(first, relation, attribute)
                assert verified is not None and verified
                assert candidates >= verified
        finally:
            index.close()

    def test_unknown_token_is_empty(self, tmp_path):
        database = university_database()
        index, _, _ = build_spimi(tmp_path, database, 25)
        try:
            assert index.postings("zzzznope") == {}
            assert index.candidate_positions("zzzznope", "Student", "Sname") == set()
        finally:
            index.close()

    def test_postings_file_sizes_recorded(self, tmp_path):
        database = university_database()
        index, stats, _ = build_spimi(tmp_path, database, 25)
        try:
            assert stats["tokens"] == len(index)
            assert os.path.getsize(index.postings_path) > 0
        finally:
            index.close()
