"""Static hash index: probes, duplicate values, overflow chains."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, HashFile, Pager
from repro.storage.hashindex import hash_key

PAGE = 64  # (64 - 6) // 12 = 4 entries per bucket page


def open_index(tmp_path, items, page_size=PAGE, name="ix.hash"):
    path = str(tmp_path / name)
    buckets = HashFile.build(path, items, page_size)
    pool = BufferPool(8)
    pool.register(name, Pager(path, page_size))
    index = HashFile(pool, name)
    assert index.buckets == buckets
    return index


class TestHashFile:
    def test_point_probes(self, tmp_path):
        items = [(f"value-{i}", i) for i in range(30)]
        index = open_index(tmp_path, items)
        for value, position in items:
            assert position in index.positions(value)
        assert index.positions("value-0") == {0}

    def test_absent_value(self, tmp_path):
        index = open_index(tmp_path, [("present", 0)])
        assert index.positions("absent") == set()

    def test_duplicates_force_overflow_chains(self, tmp_path):
        # 20 identical values hash to one bucket: at 4 entries per page
        # the chain must span several overflow pages
        items = [("dup", i) for i in range(20)] + [("other", 99)]
        index = open_index(tmp_path, items)
        assert index.positions("dup") == set(range(20))
        assert index.positions("other") == {99}

    def test_empty_index(self, tmp_path):
        index = open_index(tmp_path, [])
        assert index.buckets >= 1
        assert index.positions("anything") == set()

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.hash"
        pager = Pager(str(path), PAGE, create=True)
        pager.allocate()
        pager.close()
        pool = BufferPool(4)
        pool.register("junk.hash", Pager(str(path), PAGE))
        with pytest.raises(StorageError, match="magic"):
            HashFile(pool, "junk.hash")

    def test_hash_key_is_stable(self):
        assert hash_key("abc") == hash_key("abc")
        assert hash_key("abc") != hash_key("abd")
