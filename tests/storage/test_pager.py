"""Pager page I/O and the LRU buffer pool: counters, eviction, write-back."""

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, Pager
from repro.storage.pager import MIN_PAGE_SIZE


def make_pager(tmp_path, name="data.pg", page_size=64, pages=0):
    pager = Pager(str(tmp_path / name), page_size, create=True)
    for _ in range(pages):
        pager.allocate()
    return pager


class TestPager:
    def test_allocate_and_roundtrip(self, tmp_path):
        pager = make_pager(tmp_path)
        assert pager.page_count == 0
        assert pager.allocate() == 0
        assert pager.allocate() == 1
        payload = bytes(range(64))
        pager.write_page(1, payload)
        assert bytes(pager.read_page(1)) == payload
        assert bytes(pager.read_page(0)) == bytes(64)
        pager.close()

    def test_reopen_existing_file(self, tmp_path):
        pager = make_pager(tmp_path, pages=3)
        pager.write_page(2, b"x" * 64)
        pager.sync()
        pager.close()
        reopened = Pager(str(tmp_path / "data.pg"), 64)
        assert reopened.page_count == 3
        assert bytes(reopened.read_page(2)) == b"x" * 64
        reopened.close()

    def test_torn_file_is_rejected(self, tmp_path):
        pager = make_pager(tmp_path, pages=2)
        pager.close()
        path = tmp_path / "data.pg"
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(StorageError, match="torn write"):
            Pager(str(path), 64)

    def test_page_size_floor(self, tmp_path):
        with pytest.raises(StorageError, match="below minimum"):
            Pager(str(tmp_path / "tiny.pg"), MIN_PAGE_SIZE - 1, create=True)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="cannot open"):
            Pager(str(tmp_path / "absent.pg"), 64)

    def test_out_of_range_read(self, tmp_path):
        pager = make_pager(tmp_path, pages=1)
        with pytest.raises(StorageError, match="out of range"):
            pager.read_page(1)
        pager.close()

    def test_write_wrong_size(self, tmp_path):
        pager = make_pager(tmp_path, pages=1)
        with pytest.raises(StorageError, match="page write"):
            pager.write_page(0, b"short")
        pager.close()

    def test_write_cannot_leave_a_hole(self, tmp_path):
        pager = make_pager(tmp_path, pages=1)
        with pytest.raises(StorageError, match="hole"):
            pager.write_page(5, bytes(64))
        pager.close()


class TestBufferPool:
    def test_hits_and_misses(self, tmp_path):
        pager = make_pager(tmp_path, pages=2)
        pool = BufferPool(4)
        pool.register("f", pager)
        frame = pool.pin("f", 0)
        pool.unpin(frame)
        frame = pool.pin("f", 0)
        pool.unpin(frame)
        frame = pool.pin("f", 1)
        pool.unpin(frame)
        assert pool.stats["hits"] == 1
        assert pool.stats["misses"] == 2
        assert pool.hit_rate() == pytest.approx(1 / 3)
        pager.close()

    def test_lru_eviction_order(self, tmp_path):
        pager = make_pager(tmp_path, pages=3)
        pool = BufferPool(2)
        pool.register("f", pager)
        for page_no in (0, 1):
            pool.unpin(pool.pin("f", page_no))
        pool.unpin(pool.pin("f", 0))  # touch 0: page 1 is now LRU
        pool.unpin(pool.pin("f", 2))  # faults in, evicting page 1
        assert pool.stats["evictions"] == 1
        assert pool.resident == 2
        pool.unpin(pool.pin("f", 0))  # still resident
        assert pool.stats["hits"] == 2
        pool.unpin(pool.pin("f", 1))  # was evicted: a miss
        assert pool.stats["misses"] == 4
        pager.close()

    def test_capacity_is_a_hard_ceiling(self, tmp_path):
        pager = make_pager(tmp_path, pages=10)
        pool = BufferPool(3)
        pool.register("f", pager)
        for page_no in range(10):
            pool.unpin(pool.pin("f", page_no))
        assert pool.resident <= 3
        assert pool.stats["max_resident"] <= 3
        assert pool.stats["evictions"] == 7
        pager.close()

    def test_pinned_frames_survive_eviction(self, tmp_path):
        pager = make_pager(tmp_path, pages=4)
        pool = BufferPool(2)
        pool.register("f", pager)
        held = pool.pin("f", 0)
        for page_no in (1, 2, 3):
            pool.unpin(pool.pin("f", page_no))
        assert ("f", 0) in pool._frames
        pool.unpin(held)
        pager.close()

    def test_all_pinned_raises(self, tmp_path):
        pager = make_pager(tmp_path, pages=3)
        pool = BufferPool(2)
        pool.register("f", pager)
        a = pool.pin("f", 0)
        b = pool.pin("f", 1)
        with pytest.raises(StorageError, match="all 2 frames pinned"):
            pool.pin("f", 2)
        pool.unpin(a)
        pool.unpin(b)
        pager.close()

    def test_dirty_frames_written_back_on_eviction(self, tmp_path):
        pager = make_pager(tmp_path, pages=3)
        pool = BufferPool(1)
        pool.register("f", pager)
        frame = pool.pin("f", 0)
        frame.data[:4] = b"MARK"
        pool.unpin(frame, dirty=True)
        pool.unpin(pool.pin("f", 1))  # evicts page 0, forcing write-back
        assert pool.stats["writebacks"] == 1
        assert bytes(pager.read_page(0)[:4]) == b"MARK"
        pager.close()

    def test_flush_writes_dirty_frames_in_place(self, tmp_path):
        pager = make_pager(tmp_path, pages=1)
        pool = BufferPool(2)
        pool.register("f", pager)
        frame = pool.pin("f", 0)
        frame.data[:2] = b"OK"
        pool.unpin(frame, dirty=True)
        pool.flush()
        assert bytes(pager.read_page(0)[:2]) == b"OK"
        assert pool.resident == 1  # flush does not evict
        pager.close()

    def test_unpin_of_unpinned_raises(self, tmp_path):
        pager = make_pager(tmp_path, pages=1)
        pool = BufferPool(2)
        pool.register("f", pager)
        frame = pool.pin("f", 0)
        pool.unpin(frame)
        with pytest.raises(StorageError, match="unpin"):
            pool.unpin(frame)
        pager.close()

    def test_unregistered_file_raises(self):
        pool = BufferPool(2)
        with pytest.raises(StorageError, match="no pager registered"):
            pool.pin("ghost", 0)

    def test_counters_snapshot(self, tmp_path):
        pager = make_pager(tmp_path, pages=2)
        pool = BufferPool(2)
        pool.register("f", pager)
        assert pool.hit_rate() is None
        pool.unpin(pool.pin("f", 0))
        counters = pool.counters()
        assert counters["capacity"] == 2
        assert counters["resident"] == 1
        assert counters["pinned"] == 0
        assert counters["pins"] == counters["unpins"] == 1
        pager.close()

    def test_capacity_floor(self):
        with pytest.raises(StorageError, match="capacity"):
            BufferPool(0)
