"""B+-tree vs a sorted-dict oracle, at page sizes tiny enough to force
multi-level splits, with first-class duplicate keys."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import BufferPool, Pager
from repro.storage.bptree import BPlusTree

#: 64-byte pages: leaf capacity (64-7)//12 = 4, internal capacity
#: (64-11)//12 = 4 — a few dozen keys already build three levels.
TINY_PAGE = 64

#: A small key pool so random runs hit duplicates constantly.
keys = st.integers(min_value=0, max_value=12).map(float)


def fresh_tree(tmp_path, name="ix.bpt", page_size=TINY_PAGE, capacity=8):
    pool = BufferPool(capacity)
    pager = Pager(str(tmp_path / name), page_size, create=True)
    pool.register(name, pager)
    return BPlusTree.create(pool, name), pager


class Oracle:
    """The spec: a dict of key -> multiset of values."""

    def __init__(self):
        self.data = {}

    def insert(self, key, value):
        self.data.setdefault(key, []).append(value)

    def search_eq(self, key):
        return sorted(self.data.get(key, []))

    def search_range(self, low, high):
        return sorted(
            value
            for key, values in self.data.items()
            if low <= key <= high
            for value in values
        )

    def items(self):
        return [
            (key, value)
            for key in sorted(self.data)
            for value in self.data[key]
        ]


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(keys, max_size=120))
    def test_insert_matches_sorted_dict(self, tmp_path_factory, inserted):
        tmp_path = tmp_path_factory.mktemp("bpt")
        tree, pager = fresh_tree(tmp_path)
        oracle = Oracle()
        for value, key in enumerate(inserted):
            tree.insert(key, value)
            oracle.insert(key, value)
        try:
            for key in set(inserted) | {-1.0, 99.0}:
                assert sorted(tree.search_eq(key)) == oracle.search_eq(key)
            assert sorted(tree.items()) == sorted(oracle.items())
            keys_seen = [key for key, _ in tree.items()]
            assert keys_seen == sorted(keys_seen)
        finally:
            pager.close()

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(keys, max_size=80),
        st.tuples(keys, keys).map(sorted),
    )
    def test_range_matches_sorted_dict(self, tmp_path_factory, inserted, bounds):
        tmp_path = tmp_path_factory.mktemp("bpt")
        low, high = bounds
        tree, pager = fresh_tree(tmp_path)
        oracle = Oracle()
        for value, key in enumerate(inserted):
            tree.insert(key, value)
            oracle.insert(key, value)
        try:
            assert sorted(tree.search_range(low, high)) == oracle.search_range(
                low, high
            )
        finally:
            pager.close()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(keys, st.integers(0, 1000)), max_size=120))
    def test_bulk_build_equals_incremental(self, tmp_path_factory, pairs):
        tmp_path = tmp_path_factory.mktemp("bpt")
        pairs = sorted(pairs, key=lambda pair: pair[0])
        pool = BufferPool(8)
        pager = Pager(str(tmp_path / "bulk.bpt"), TINY_PAGE, create=True)
        pool.register("bulk.bpt", pager)
        tree = BPlusTree.bulk_build(pool, "bulk.bpt", pairs)
        try:
            assert list(tree.items()) == pairs
            for key in {key for key, _ in pairs}:
                expected = sorted(v for k, v in pairs if k == key)
                assert sorted(tree.search_eq(key)) == expected
        finally:
            pager.close()


class TestEdges:
    def test_empty_tree(self, tmp_path):
        tree, pager = fresh_tree(tmp_path)
        assert tree.search_eq(1.0) == []
        assert tree.search_range() == []
        assert len(tree) == 0
        pager.close()

    def test_open_bounds_and_exclusive_ends(self, tmp_path):
        tree, pager = fresh_tree(tmp_path)
        for value, key in enumerate([1.0, 2.0, 2.0, 3.0, 4.0]):
            tree.insert(key, value)
        assert sorted(tree.search_range(low=3.0)) == [3, 4]
        assert sorted(tree.search_range(high=2.0)) == [0, 1, 2]
        assert sorted(tree.search_range(2.0, 4.0, include_low=False)) == [3, 4]
        assert sorted(tree.search_range(1.0, 3.0, include_high=False)) == [0, 1, 2]
        pager.close()

    def test_bulk_build_rejects_unsorted(self, tmp_path):
        pool = BufferPool(8)
        pager = Pager(str(tmp_path / "bad.bpt"), TINY_PAGE, create=True)
        pool.register("bad.bpt", pager)
        with pytest.raises(StorageError, match="sorted"):
            BPlusTree.bulk_build(pool, "bad.bpt", [(2.0, 0), (1.0, 1)])
        pager.close()

    def test_page_too_small(self, tmp_path):
        pool = BufferPool(8)
        pager = Pager(str(tmp_path / "small.bpt"), 64, create=True)
        pool.register("small.bpt", pager)
        # 64 bytes is the floor; the constructor itself guards below it
        tree = BPlusTree.create(pool, "small.bpt")
        assert tree.leaf_capacity >= 2
        pager.close()

    def test_reopen_after_flush(self, tmp_path):
        tree, pager = fresh_tree(tmp_path)
        for value, key in enumerate([5.0, 1.0, 3.0, 3.0, 2.0]):
            tree.insert(key, value)
        tree.pool.flush()
        pager.sync()
        pager.close()
        pool = BufferPool(4)
        reopened_pager = Pager(str(tmp_path / "ix.bpt"), TINY_PAGE)
        pool.register("ix.bpt", reopened_pager)
        reopened = BPlusTree(pool, "ix.bpt")
        assert sorted(reopened.search_eq(3.0)) == [2, 3]
        assert [key for key, _ in reopened.items()] == [1.0, 2.0, 3.0, 3.0, 5.0]
        reopened_pager.close()

    def test_bad_magic(self, tmp_path):
        pool = BufferPool(4)
        pager = Pager(str(tmp_path / "junk.bpt"), TINY_PAGE, create=True)
        pager.allocate()
        pool.register("junk.bpt", pager)
        with pytest.raises(StorageError, match="magic"):
            BPlusTree(pool, "junk.bpt")
        pager.close()
