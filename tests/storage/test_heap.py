"""Heap files: build, positional access, sequential scans."""

import pytest

from repro.errors import StorageError
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.storage import BufferPool, HeapFile, Pager
from repro.storage.heap import build_heap


def make_schema():
    schema = DatabaseSchema("heapdb")
    schema.add_relation(
        "T",
        [("id", DataType.INT), ("name", DataType.TEXT)],
        ["id"],
    )
    return schema.relation("T")


SCHEMA = make_schema()
ROWS = [(i, f"name-{i:03d}") for i in range(50)]


def open_heap(tmp_path, rows=ROWS, page_size=128, pool_capacity=4):
    path = str(tmp_path / "T.heap")
    page_counts = build_heap(path, SCHEMA, rows, page_size)
    pool = BufferPool(pool_capacity)
    pool.register("T.heap", Pager(path, page_size))
    return HeapFile(pool, "T.heap", SCHEMA, page_counts), page_counts, pool


class TestHeapFile:
    def test_build_spans_many_pages(self, tmp_path):
        heap, page_counts, _ = open_heap(tmp_path)
        assert heap.page_count > 1
        assert sum(page_counts) == len(ROWS)
        assert len(heap) == len(ROWS)

    def test_positional_access(self, tmp_path):
        heap, _, _ = open_heap(tmp_path)
        for position in (0, 1, 25, len(ROWS) - 1):
            assert heap.row(position) == ROWS[position]

    def test_scan_preserves_order(self, tmp_path):
        heap, _, _ = open_heap(tmp_path)
        assert list(heap.scan()) == ROWS

    def test_position_out_of_range(self, tmp_path):
        heap, _, _ = open_heap(tmp_path)
        with pytest.raises(StorageError):
            heap.row(len(ROWS))

    def test_scan_respects_small_pool(self, tmp_path):
        heap, _, pool = open_heap(tmp_path, pool_capacity=2)
        assert list(heap.scan()) == ROWS
        assert pool.stats["max_resident"] <= 2
        assert pool.stats["evictions"] > 0

    def test_empty_table(self, tmp_path):
        heap, page_counts, _ = open_heap(tmp_path, rows=[])
        assert len(heap) == 0
        assert list(heap.scan()) == []
        assert sum(page_counts) == 0


class TestHeapRows:
    def test_sequence_protocol(self, tmp_path):
        heap, _, _ = open_heap(tmp_path)
        rows = heap.rows
        assert len(rows) == len(ROWS)
        assert rows[0] == ROWS[0]
        assert rows[-1] == ROWS[-1]
        assert rows[10:13] == ROWS[10:13]
        assert list(rows) == ROWS

    def test_index_errors_mirror_lists(self, tmp_path):
        heap, _, _ = open_heap(tmp_path)
        with pytest.raises((IndexError, StorageError)):
            heap.rows[len(ROWS)]
