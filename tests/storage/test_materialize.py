"""Materialization: manifest discipline, crash shapes, the storage engine."""

import json
import os

import pytest

from repro.errors import StorageError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType
from repro.storage import (
    MANIFEST_FILE,
    StorageEngine,
    load_manifest,
    materialization_is_fresh,
    materialize,
)

PAGE = 256


def small_db(name="mini"):
    schema = DatabaseSchema(name)
    schema.add_relation(
        "T",
        [
            ("id", DataType.INT),
            ("name", DataType.TEXT),
            ("score", DataType.FLOAT),
        ],
        ["id"],
    )
    db = Database(schema)
    db.load(
        "T",
        [
            (1, "alpha", 1.5),
            (2, "beta", 2.5),
            (3, "alpha", 3.5),
            (4, None, None),
        ],
    )
    return db


class TestManifest:
    def test_materialize_roundtrip(self, tmp_path):
        db = small_db()
        manifest = materialize(db, str(tmp_path), page_size=PAGE)
        assert manifest["database"] == "mini"
        assert manifest["totals"]["rows"] == 4
        assert manifest["tables"]["T"]["rows"] == 4
        assert load_manifest(str(tmp_path)) == manifest
        assert materialization_is_fresh(str(tmp_path), db, page_size=PAGE)

    def test_every_listed_file_exists_with_recorded_size(self, tmp_path):
        db = small_db()
        manifest = materialize(db, str(tmp_path), page_size=PAGE)
        for file_name, size in manifest["files"].items():
            assert os.path.getsize(tmp_path / file_name) == size

    def test_missing_manifest_is_stale(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        (tmp_path / MANIFEST_FILE).unlink()
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE)
        with pytest.raises(StorageError, match="no materialization manifest"):
            load_manifest(str(tmp_path))

    def test_corrupt_manifest_is_stale(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        (tmp_path / MANIFEST_FILE).write_text("{not json", encoding="utf-8")
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE)
        with pytest.raises(StorageError, match="corrupt manifest"):
            load_manifest(str(tmp_path))

    def test_unsupported_format_is_rejected(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        path = tmp_path / MANIFEST_FILE
        document = json.loads(path.read_text(encoding="utf-8"))
        document["format"] = 999
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(StorageError, match="unsupported manifest format"):
            load_manifest(str(tmp_path))

    def test_truncated_data_file_is_stale(self, tmp_path):
        """The half-written shape a crash during rebuild leaves."""
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        heap = tmp_path / "T.heap"
        heap.write_bytes(heap.read_bytes()[:-10])
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE)

    def test_missing_data_file_is_stale(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        (tmp_path / "T.score.bpt").unlink()
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE)

    def test_other_page_size_is_stale(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE * 2)

    def test_data_version_bump_is_stale(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        db.load("T", [(5, "gamma", 9.0)])
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE)
        materialize(db, str(tmp_path), page_size=PAGE)
        assert materialization_is_fresh(str(tmp_path), db, page_size=PAGE)

    def test_foreign_database_is_stale(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        assert not materialization_is_fresh(
            str(tmp_path), small_db("other"), page_size=PAGE
        )

    def test_rebuild_invalidates_manifest_first(self, tmp_path, monkeypatch):
        """A crash mid-rebuild must leave no manifest, not a stale one."""
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)

        # The package re-exports the materialize *function*, which
        # shadows the submodule on attribute access — go via sys.modules.
        import importlib

        module = importlib.import_module("repro.storage.materialize")

        def boom(*args, **kwargs):
            raise RuntimeError("simulated crash during rebuild")

        monkeypatch.setattr(module, "build_heap", boom)
        with pytest.raises(RuntimeError):
            materialize(db, str(tmp_path), page_size=PAGE)
        assert not (tmp_path / MANIFEST_FILE).exists()
        assert not materialization_is_fresh(str(tmp_path), db, page_size=PAGE)


class TestStorageEngine:
    def test_serves_rows_and_indexes(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        engine = StorageEngine(str(tmp_path), db.schema, pool_capacity=8)
        try:
            disk_db = engine.database
            assert list(disk_db.table("T").rows) == list(db.table("T").rows)
            tree = engine.bptree("T", "score")
            assert tree is not None and tree.search_eq(2.5) == [1]
            hash_file = engine.hash_file("T", "name")
            assert hash_file is not None and hash_file.positions("alpha") == {0, 2}
            # numeric column has no hash index, text column no B+-tree
            assert engine.hash_file("T", "score") is None
            assert engine.bptree("T", "name") is None
            counters = engine.counters()
            assert counters["max_resident"] <= 8
        finally:
            engine.close()

    def test_rejects_foreign_manifest(self, tmp_path):
        db = small_db()
        materialize(db, str(tmp_path), page_size=PAGE)
        with pytest.raises(StorageError, match="mini"):
            StorageEngine(str(tmp_path), small_db("other").schema, pool_capacity=8)

    def test_missing_directory_raises(self, tmp_path):
        db = small_db()
        with pytest.raises(StorageError, match="manifest"):
            StorageEngine(str(tmp_path / "absent"), db.schema, pool_capacity=8)
