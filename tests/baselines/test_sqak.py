"""Unit tests for the SQAK baseline: its SQL shapes, its wrong answers and
its N.A. cases — all asserted against the paper's descriptions."""

import pytest

from repro.baselines import SqakEngine
from repro.errors import NoMatchError, UnsupportedQueryError


class TestMatching:
    def test_relation_name_preferred(self, university_sqak):
        from repro.keywords.query import KeywordQuery

        term = KeywordQuery("student x").basic_terms[0]
        match = university_sqak.match_term(term)
        assert match.kind == "relation" and match.relation == "Student"

    def test_attribute_fallback(self, university_sqak):
        from repro.keywords.query import KeywordQuery

        term = KeywordQuery("credit x").basic_terms[0]
        match = university_sqak.match_term(term)
        assert match.kind == "attribute" and match.attribute == "Credit"

    def test_value_fallback(self, university_sqak):
        from repro.keywords.query import KeywordQuery

        term = KeywordQuery("Green x").basic_terms[0]
        match = university_sqak.match_term(term)
        assert match.kind == "value" and match.attribute == "Sname"

    def test_no_match_raises(self, university_sqak):
        from repro.keywords.query import KeywordQuery

        term = KeywordQuery("zzznothing x").basic_terms[0]
        with pytest.raises(NoMatchError):
            university_sqak.match_term(term)


class TestPaperQ1Q2Q3:
    def test_q1_mixes_students_named_green(self, university_sqak):
        result = university_sqak.execute("Green SUM Credit")
        assert result.rows == [("Green", 13.0)]

    def test_q2_counts_duplicate_textbooks(self, university_sqak):
        result = university_sqak.execute("Java SUM Price")
        assert result.rows == [("Java", 35.0)]

    def test_q3_correct_on_normalized_schema(self, university_sqak):
        result = university_sqak.execute("Engineering COUNT Department")
        assert result.rows == [("Engineering", 1)]

    def test_q3_wrong_on_unnormalized_schema(self, fig2_db):
        sqak = SqakEngine(fig2_db)
        result = sqak.execute("Engineering COUNT Department")
        assert result.rows == [("Engineering", 2)]  # duplicated Did/Fid

    def test_q5_overcounts_lecturers(self, university_sqak):
        result = university_sqak.execute("COUNT Lecturer GROUPBY Course")
        rows = dict((code, n) for code, n in result.rows)
        assert rows["c1"] == 3  # l1 counted twice for two textbooks


class TestSqlShape:
    def test_q1_sql_groups_by_value_attribute(self, university_sqak):
        sql = university_sqak.compile("Green SUM Credit").sql_compact
        assert "GROUP BY" in sql and "Sname" in sql
        assert "SUM" in sql

    def test_groupby_term_groups_by_key(self, university_sqak):
        sql = university_sqak.compile("COUNT Student GROUPBY Course").sql_compact
        assert "GROUP BY" in sql and "Code" in sql

    def test_nested_aggregates_wrap(self, tpch_sqak):
        statement = tpch_sqak.compile("MAX COUNT order GROUPBY nation")
        sql = statement.sql_compact
        assert sql.count("SELECT") == 2
        assert "MAX(" in sql and "COUNT(" in sql

    def test_no_distinct_projection_ever(self, university_sqak):
        sql = university_sqak.compile("COUNT Lecturer GROUPBY Course").sql_compact
        assert "DISTINCT" not in sql


class TestNotSupported:
    def test_two_aggregates_na(self, tpch_sqak):
        with pytest.raises(UnsupportedQueryError):
            tpch_sqak.compile("COUNT order SUM amount GROUPBY mktsegment")

    def test_self_join_na(self, acmdl_sqak):
        with pytest.raises(UnsupportedQueryError):
            acmdl_sqak.compile("COUNT paper author John Mary")

    def test_self_join_na_tpch(self, tpch_sqak):
        with pytest.raises(UnsupportedQueryError):
            tpch_sqak.compile('COUNT supplier "pink rose" "white rose"')

    def test_answer_returns_none_for_na(self, tpch_sqak):
        assert tpch_sqak.answer('COUNT supplier "pink rose" "white rose"') is None

    def test_answer_returns_result_when_supported(self, tpch_sqak):
        assert tpch_sqak.answer("order AVG amount") is not None

    def test_operator_on_value_term_na(self, university_sqak):
        with pytest.raises(UnsupportedQueryError):
            university_sqak.compile("SUM Green Credit")
