"""Unit tests for SQAK's plain schema graph."""

import pytest

from repro.baselines import SchemaGraph
from repro.errors import SchemaError


class TestStructure:
    def test_neighbors_follow_foreign_keys(self, university_db):
        graph = SchemaGraph(university_db.schema)
        assert graph.neighbors("Student") == ["Enrol"]
        assert graph.neighbors("Teach") == ["Course", "Lecturer", "Textbook"]
        # unlike the ORM graph, no classification exists: Department is
        # just another node
        assert graph.neighbors("Department") == ["Faculty", "Lecturer"]

    def test_foreign_keys_between(self, university_db):
        graph = SchemaGraph(university_db.schema)
        fks = graph.foreign_keys_between("Enrol", "Student")
        assert len(fks) == 1 and fks[0].columns == ("Sid",)
        assert graph.foreign_keys_between("Student", "Course") == []

    def test_child_of_edge(self, university_db):
        graph = SchemaGraph(university_db.schema)
        assert graph.child_of_edge("Enrol", "Student") == "Enrol"
        assert graph.child_of_edge("Student", "Enrol") == "Enrol"
        with pytest.raises(SchemaError):
            graph.child_of_edge("Student", "Course")

    def test_extra_joins_add_edges(self, acmdl_unnorm):
        graph = SchemaGraph(
            acmdl_unnorm.database.schema, acmdl_unnorm.sqak_extra_joins
        )
        assert "EditorProceeding" in graph.neighbors("PaperAuthor")
        fks = graph.foreign_keys_between("PaperAuthor", "EditorProceeding")
        assert fks[0].columns == ("procid",)


class TestPaths:
    def test_shortest_path(self, university_db):
        graph = SchemaGraph(university_db.schema)
        assert graph.shortest_path("Student", "Course") == [
            "Student",
            "Enrol",
            "Course",
        ]
        assert graph.shortest_path("Student", "Student") == ["Student"]

    def test_steiner_tree_minimal(self, university_db):
        graph = SchemaGraph(university_db.schema)
        edges = graph.steiner_tree(["Student", "Course"])
        assert edges == {("Course", "Enrol"), ("Enrol", "Student")}

    def test_steiner_tree_single(self, university_db):
        graph = SchemaGraph(university_db.schema)
        assert graph.steiner_tree(["Student"]) == set()

    def test_steiner_tree_disconnected_raises(self):
        from repro.relational.schema import DatabaseSchema
        from repro.relational.types import DataType

        schema = DatabaseSchema("d")
        schema.add_relation("A", [("a", DataType.INT)], ["a"])
        schema.add_relation("B", [("b", DataType.INT)], ["b"])
        graph = SchemaGraph(schema)
        with pytest.raises(SchemaError):
            graph.steiner_tree(["A", "B"])
