"""The ORM schema graph (Object-Relationship-Mixed) of [15].

Each node bundles one object/relationship/mixed relation together with its
component relations; two nodes are connected when a foreign key - key
reference links their relations.  The graph is the backbone of query-pattern
generation: tagged nodes are connected along graph paths, and the translator
consults a relationship node's graph neighbours to decide whether a
duplicate-eliminating projection is required (Section 3.1.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError
from repro.orm.classify import Classification, RelationType, classify_database
from repro.relational.schema import DatabaseSchema, ForeignKey, RelationSchema


@dataclass(frozen=True)
class OrmEdge:
    """One FK-key reference between two ORM nodes.

    ``child_relation`` holds the foreign key; ``parent_relation`` is the
    referenced relation.  ``child_node``/``parent_node`` name the ORM nodes
    the relations belong to (differs from the relations only for component
    relations, which are folded into their parent node).
    """

    child_node: str
    parent_node: str
    child_relation: str
    parent_relation: str
    foreign_key: ForeignKey


class OrmNode:
    """An ORM schema graph node: a main relation plus its components."""

    def __init__(
        self,
        name: str,
        node_type: RelationType,
        main_relation: RelationSchema,
    ) -> None:
        self.name = name
        self.type = node_type
        self.main_relation = main_relation
        self.component_relations: List[RelationSchema] = []

    @property
    def identifier(self) -> Tuple[str, ...]:
        """The object/relationship identifier: the main relation's key."""
        return self.main_relation.primary_key

    def relations(self) -> List[RelationSchema]:
        return [self.main_relation] + self.component_relations

    def owns_attribute(self, attribute: str) -> Optional[RelationSchema]:
        """The relation of this node holding *attribute* (None if none)."""
        for relation in self.relations():
            if relation.has_column(attribute):
                return relation
        return None

    @property
    def is_object_like(self) -> bool:
        return self.type in (RelationType.OBJECT, RelationType.MIXED)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrmNode({self.name!r}, {self.type})"


class OrmSchemaGraph:
    """Undirected graph over ORM nodes with FK-labelled edges."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self.classifications: Dict[str, Classification] = classify_database(schema)
        self.nodes: Dict[str, OrmNode] = {}
        self._relation_to_node: Dict[str, str] = {}
        self._adjacency: Dict[str, Dict[str, List[OrmEdge]]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        # first pass: one node per non-component relation
        for relation in self.schema:
            classification = self.classifications[relation.name]
            if classification.type is RelationType.COMPONENT:
                continue
            node = OrmNode(relation.name, classification.type, relation)
            self.nodes[node.name] = node
            self._relation_to_node[relation.name] = node.name
            self._adjacency[node.name] = {}
        # second pass: fold component relations into their parents
        for relation in self.schema:
            classification = self.classifications[relation.name]
            if classification.type is not RelationType.COMPONENT:
                continue
            parent = classification.parent
            if parent is None or parent not in self.nodes:
                raise SchemaError(
                    f"component relation {relation.name!r} has no parent node"
                )
            self.nodes[parent].component_relations.append(relation)
            self._relation_to_node[relation.name] = parent
        # third pass: edges from foreign keys between distinct nodes
        for relation in self.schema:
            child_node = self._relation_to_node[relation.name]
            for fk in relation.foreign_keys:
                parent_node = self._relation_to_node[fk.ref_table]
                if parent_node == child_node:
                    continue
                edge = OrmEdge(
                    child_node=child_node,
                    parent_node=parent_node,
                    child_relation=relation.name,
                    parent_relation=fk.ref_table,
                    foreign_key=fk,
                )
                self._adjacency[child_node].setdefault(parent_node, []).append(edge)
                self._adjacency[parent_node].setdefault(child_node, []).append(edge)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> OrmNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise SchemaError(f"no ORM node {name!r}") from None

    def node_of_relation(self, relation_name: str) -> OrmNode:
        try:
            return self.nodes[self._relation_to_node[relation_name]]
        except KeyError:
            raise SchemaError(f"relation {relation_name!r} is not in the ORM graph") from None

    def neighbors(self, name: str) -> List[str]:
        return sorted(self._adjacency.get(name, {}))

    def edges_between(self, first: str, second: str) -> List[OrmEdge]:
        return list(self._adjacency.get(first, {}).get(second, []))

    def object_like_neighbors(self, name: str) -> List[str]:
        """Object/mixed nodes adjacent to *name* — the participants of a
        relationship node (the set ``Nv`` of Section 3.1.3)."""
        return [
            neighbor
            for neighbor in self.neighbors(name)
            if self.nodes[neighbor].is_object_like
        ]

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def shortest_path(self, source: str, target: str) -> Optional[List[str]]:
        """A shortest node path from *source* to *target* (BFS, ties broken
        by node name for determinism); None when disconnected."""
        if source == target:
            return [source]
        visited = {source}
        parents: Dict[str, str] = {}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parents[neighbor] = current
                if neighbor == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(neighbor)
        return None

    def all_shortest_paths(
        self, source: str, target: str, limit: int = 16
    ) -> List[List[str]]:
        """Every shortest node path between two nodes (up to *limit*)."""
        best = self.shortest_path(source, target)
        if best is None:
            return []
        max_len = len(best)
        results: List[List[str]] = []
        queue: deque = deque([[source]])
        while queue and len(results) < limit:
            path = queue.popleft()
            if len(path) > max_len:
                continue
            last = path[-1]
            if last == target:
                results.append(path)
                continue
            for neighbor in self.neighbors(last):
                if neighbor in path:
                    continue
                queue.append(path + [neighbor])
        return results

    def distance(self, source: str, target: str) -> Optional[int]:
        path = self.shortest_path(source, target)
        if path is None:
            return None
        return len(path) - 1

    def steiner_tree(self, terminals: Sequence[str]) -> Set[Tuple[str, str]]:
        """Approximate minimal connected subgraph spanning *terminals*.

        Deterministic shortest-path heuristic: grow from the first terminal,
        repeatedly attaching the closest remaining terminal along a shortest
        path.  Returns the edge set as sorted node-name pairs.
        """
        unique = list(dict.fromkeys(terminals))
        if not unique:
            return set()
        in_tree: Set[str] = {unique[0]}
        edges: Set[Tuple[str, str]] = set()
        remaining = unique[1:]
        while remaining:
            best_path: Optional[List[str]] = None
            best_terminal: Optional[str] = None
            for terminal in remaining:
                candidate: Optional[List[str]] = None
                for anchor in sorted(in_tree):
                    path = self.shortest_path(terminal, anchor)
                    if path is None:
                        continue
                    if candidate is None or len(path) < len(candidate):
                        candidate = path
                if candidate is None:
                    raise SchemaError(
                        f"ORM graph is disconnected: cannot reach {terminal!r}"
                    )
                if best_path is None or len(candidate) < len(best_path):
                    best_path = candidate
                    best_terminal = terminal
            assert best_path is not None and best_terminal is not None
            for first, second in zip(best_path, best_path[1:]):
                edges.add(tuple(sorted((first, second))))  # type: ignore[arg-type]
                in_tree.add(first)
                in_tree.add(second)
            remaining.remove(best_terminal)
        return edges

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable dump used by examples (mirrors Figure 3)."""
        lines = ["ORM schema graph:"]
        for name in sorted(self.nodes):
            node = self.nodes[name]
            components = (
                " + components " + ", ".join(c.name for c in node.component_relations)
                if node.component_relations
                else ""
            )
            neighbors = ", ".join(self.neighbors(name)) or "-"
            lines.append(f"  [{node.type}] {name}{components} -- {neighbors}")
        return "\n".join(lines)
