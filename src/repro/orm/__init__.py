"""ORA semantics: relation classification and the ORM schema graph."""

from repro.orm.classify import (
    Classification,
    RelationType,
    classify_database,
    classify_relation,
    object_like,
)
from repro.orm.graph import OrmEdge, OrmNode, OrmSchemaGraph

__all__ = [
    "Classification",
    "OrmEdge",
    "OrmNode",
    "OrmSchemaGraph",
    "RelationType",
    "classify_database",
    "classify_relation",
    "object_like",
]
