"""Relation classification into the ORA taxonomy of [16].

* **object relation** — stores the single-valued attributes of an object
  class (``Student``, ``Course``, ``Part``).  Its key is its own identifier,
  and it has no foreign keys.
* **relationship relation** — stores a relationship type; its key is
  composed of (two or more) foreign keys to the participating object/mixed
  relations (``Enrol``, ``Teach``, ``Lineitem``, ``Write``).
* **mixed relation** — an object relation that also embeds a many-to-one
  relationship via a foreign key outside its key (``Lecturer`` references
  ``Department``; ``Order`` references ``Customer``).
* **component relation** — stores a multivalued attribute of an object or
  relationship; its key contains exactly one foreign key (to the parent)
  plus the attribute itself.

The classification is purely structural: it reads primary keys and foreign
keys from the schema catalog, which is why the paper requires the schema (or
the normalized view of an unnormalized schema) to be in 3NF.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.relational.schema import DatabaseSchema, RelationSchema


class RelationType(enum.Enum):
    OBJECT = "object"
    RELATIONSHIP = "relationship"
    MIXED = "mixed"
    COMPONENT = "component"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Classification:
    """Classification of one relation, with the parent for components."""

    relation: str
    type: RelationType
    parent: Optional[str] = None  # for COMPONENT: the relation it augments

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.parent:
            return f"{self.relation}: {self.type} of {self.parent}"
        return f"{self.relation}: {self.type}"


def classify_relation(schema: RelationSchema) -> Classification:
    """Classify one relation from its key/foreign-key structure."""
    fks_in_key = schema.fks_within_key()
    key = set(schema.primary_key)
    fk_key_columns = set()
    for fk in fks_in_key:
        fk_key_columns |= set(fk.columns)

    if len(fks_in_key) >= 2 and key <= fk_key_columns:
        # key is made of >= 2 foreign keys -> n-ary relationship
        return Classification(schema.name, RelationType.RELATIONSHIP)
    if len(fks_in_key) == 1:
        # key contains one FK (to the parent); remaining key columns are the
        # multivalued attribute -> component relation
        return Classification(
            schema.name, RelationType.COMPONENT, parent=fks_in_key[0].ref_table
        )
    if schema.fks_outside_key():
        # own identifier plus embedded many-to-one relationship(s)
        return Classification(schema.name, RelationType.MIXED)
    return Classification(schema.name, RelationType.OBJECT)


def classify_database(schema: DatabaseSchema) -> Dict[str, Classification]:
    """Classify every relation of a database schema."""
    return {rel.name: classify_relation(rel) for rel in schema}


def object_like(classification: Classification) -> bool:
    """Object or mixed relations represent objects with their own identity."""
    return classification.type in (RelationType.OBJECT, RelationType.MIXED)
