"""One-call reproduction report: every table and figure of the paper.

Shared by ``examples/reproduce_paper.py`` and ``python -m repro
--reproduce``.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from repro.baselines import SqakEngine
from repro.datasets import (
    denormalize_acmdl,
    denormalize_tpch,
    generate_acmdl,
    generate_tpch,
)
from repro.engine import KeywordSearchEngine
from repro.experiments.queries import ACMDL_QUERIES, TPCH_QUERIES
from repro.experiments.reporting import format_answer_table, format_timing_series
from repro.experiments.runner import run_suite
from repro.observability import stage_breakdown


def full_report(out: Optional[TextIO] = None) -> None:
    """Print Tables 5, 6, 8, 9, both Figure-11 series and stage breakdowns."""
    out = out or sys.stdout
    tpch = generate_tpch()
    acmdl = generate_acmdl()

    tpch_engine = KeywordSearchEngine(tpch)
    tpch_outcomes = run_suite(tpch_engine, SqakEngine(tpch), TPCH_QUERIES)
    print(
        format_answer_table(
            "Table 5 - answers of queries for normalized TPCH", tpch_outcomes
        ),
        file=out,
    )
    print(file=out)

    acmdl_engine = KeywordSearchEngine(acmdl)
    acmdl_outcomes = run_suite(acmdl_engine, SqakEngine(acmdl), ACMDL_QUERIES)
    print(
        format_answer_table(
            "Table 6 - answers of queries for normalized ACMDL", acmdl_outcomes
        ),
        file=out,
    )
    print(file=out)

    tpch_unnorm = denormalize_tpch(tpch)
    outcomes_8 = run_suite(
        KeywordSearchEngine(
            tpch_unnorm.database,
            fds=tpch_unnorm.fds,
            name_hints=tpch_unnorm.name_hints,
        ),
        SqakEngine(tpch_unnorm.database, extra_joins=tpch_unnorm.sqak_extra_joins),
        TPCH_QUERIES,
    )
    print(
        format_answer_table(
            "Table 8 - query answers on unnormalized TPCH (TPCH')", outcomes_8
        ),
        file=out,
    )
    print(file=out)

    acmdl_unnorm = denormalize_acmdl(acmdl)
    outcomes_9 = run_suite(
        KeywordSearchEngine(
            acmdl_unnorm.database,
            fds=acmdl_unnorm.fds,
            name_hints=acmdl_unnorm.name_hints,
        ),
        SqakEngine(
            acmdl_unnorm.database, extra_joins=acmdl_unnorm.sqak_extra_joins
        ),
        ACMDL_QUERIES,
    )
    print(
        format_answer_table(
            "Table 9 - query answers on unnormalized ACMDL (ACMDL')", outcomes_9
        ),
        file=out,
    )
    print(file=out)

    print(
        format_timing_series(
            "Figure 11(a) - SQL generation time, TPCH queries", tpch_outcomes
        ),
        file=out,
    )
    print(file=out)
    print(
        format_timing_series(
            "Figure 11(b) - SQL generation time, ACMDL queries", acmdl_outcomes
        ),
        file=out,
    )
    print(file=out)

    print(
        stage_breakdown(
            tpch_engine,
            [spec.text for spec in TPCH_QUERIES],
            "Per-stage pipeline breakdown (traced) - TPCH query set",
        ),
        file=out,
    )
    print(file=out)
    print(
        stage_breakdown(
            acmdl_engine,
            [spec.text for spec in ACMDL_QUERIES],
            "Per-stage pipeline breakdown (traced) - ACMDL query set",
        ),
        file=out,
    )
