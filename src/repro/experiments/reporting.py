"""Formatting of experiment outcomes into the paper's table/figure shapes."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.runner import QueryOutcome


def format_answer_table(
    title: str, outcomes: Sequence[QueryOutcome], max_values: int = 6
) -> str:
    """Render a Table-5/6/8/9-style comparison of SQAK vs our approach."""
    rows = [("#", "SQAK", "Our Proposed Approach")]
    for outcome in outcomes:
        rows.append(
            (
                outcome.spec.qid,
                outcome.summarize("sqak", max_values),
                outcome.summarize("semantic", max_values),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = [title, "=" * len(title)]
    header, *body = rows
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_timing_series(
    title: str, outcomes: Sequence[QueryOutcome]
) -> str:
    """Render a Figure-11-style SQL-generation-time comparison."""
    lines = [title, "=" * len(title)]
    lines.append(f"{'#':<4}{'Proposed (ms)':>16}{'SQAK (ms)':>12}")
    for outcome in outcomes:
        sqak_ms = (
            f"{outcome.sqak_compile_ms:.3f}"
            if outcome.sqak_compile_ms is not None
            else "N.A."
        )
        lines.append(
            f"{outcome.spec.qid:<4}{outcome.semantic_compile_ms:>16.3f}{sqak_ms:>12}"
        )
    return "\n".join(lines)


def format_comparison_row(outcome: QueryOutcome) -> str:
    """One-line per-query summary used by the example scripts."""
    return (
        f"{outcome.spec.qid}: ours={outcome.summarize('semantic', 4)} | "
        f"SQAK={outcome.summarize('sqak', 4)}"
    )
