"""Extension experiment: ranking quality of the interpretation list.

The paper translates "the top-k ranked annotated query patterns" and its
experiments pick "the SQL that best matches the query description"
(Section 6.1.1), but never reports *where* in the ranking that
interpretation sits.  This module measures it: for every evaluation query,
the 1-based rank of the first interpretation satisfying the query's
description constraints, plus hit@k and the mean reciprocal rank — the
standard way to quantify whether top-k translation is enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine import KeywordSearchEngine
from repro.experiments.queries import QuerySpec
from repro.experiments.runner import _pattern_satisfies


@dataclass(frozen=True)
class RankingOutcome:
    """Rank of the intended interpretation for one query (None = miss)."""

    spec: QuerySpec
    intended_rank: Optional[int]
    interpretations: int


def intended_rank(
    engine: KeywordSearchEngine, spec: QuerySpec, k: int = 10
) -> RankingOutcome:
    """Rank (1-based) of the first interpretation matching the query's
    description constraints within the engine's top-k."""
    interpretations = engine.compile(spec.text, k=k)
    for interpretation in interpretations:
        if _pattern_satisfies(interpretation.pattern, spec):
            return RankingOutcome(
                spec, interpretation.rank, len(interpretations)
            )
    return RankingOutcome(spec, None, len(interpretations))


@dataclass(frozen=True)
class RankingReport:
    """Aggregate ranking quality over a query suite."""

    outcomes: tuple
    hits_at_1: int
    hits_at_3: int
    hits_at_k: int
    mean_reciprocal_rank: float

    def format_table(self) -> str:
        lines = [
            f"{'#':<4}{'intended rank':>14}{'interpretations':>17}",
        ]
        for outcome in self.outcomes:
            rank = outcome.intended_rank
            lines.append(
                f"{outcome.spec.qid:<4}"
                f"{(str(rank) if rank else 'miss'):>14}"
                f"{outcome.interpretations:>17}"
            )
        total = len(self.outcomes)
        lines.append(
            f"hit@1 {self.hits_at_1}/{total}  hit@3 {self.hits_at_3}/{total}  "
            f"hit@k {self.hits_at_k}/{total}  MRR {self.mean_reciprocal_rank:.3f}"
        )
        return "\n".join(lines)


def ranking_report(
    engine: KeywordSearchEngine, specs: Sequence[QuerySpec], k: int = 10
) -> RankingReport:
    outcomes: List[RankingOutcome] = [
        intended_rank(engine, spec, k=k) for spec in specs
    ]
    ranks = [outcome.intended_rank for outcome in outcomes]
    reciprocal = [1.0 / rank for rank in ranks if rank is not None]
    return RankingReport(
        outcomes=tuple(outcomes),
        hits_at_1=sum(1 for rank in ranks if rank == 1),
        hits_at_3=sum(1 for rank in ranks if rank is not None and rank <= 3),
        hits_at_k=sum(1 for rank in ranks if rank is not None),
        mean_reciprocal_rank=(
            sum(reciprocal) / len(outcomes) if outcomes else 0.0
        ),
    )
