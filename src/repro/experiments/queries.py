"""The paper's evaluation queries (Tables 3 and 4) as executable specs.

Each :class:`QuerySpec` carries the keyword query, the paper's description
(search intention) and *selection constraints* identifying which generated
interpretation matches that description — the paper likewise uses "the
generated SQL statements that best match the query descriptions" (§6.1.1).

``distinguish`` selects the interpretation whose multi-object value
conditions are disambiguated with GROUPBY(identifier); ``require_aggs``
pins aggregate annotations to specific ORM nodes (``"MAX(date)@Paper"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class QuerySpec:
    """One evaluation query with its interpretation-selection constraints."""

    qid: str
    text: str
    description: str
    distinguish: bool = False
    require_aggs: Tuple[str, ...] = ()
    sqak_na: bool = False  # SQAK cannot handle it (even on normalized data)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.qid}: {self.text}"


TPCH_QUERIES: Tuple[QuerySpec, ...] = (
    QuerySpec(
        "T1",
        "order AVG amount",
        "Find the average amount of orders",
        require_aggs=("AVG(amount)@Order",),
    ),
    QuerySpec(
        "T2",
        "MAX COUNT order GROUPBY nation",
        "Find the maximum number of orders among nations",
        require_aggs=("COUNT@Order",),
    ),
    QuerySpec(
        "T3",
        'COUNT order "royal olive"',
        'Find the number of orders that contains the "royal olive"',
        distinguish=True,
        require_aggs=("COUNT@Order",),
    ),
    QuerySpec(
        "T4",
        'supplier MAX acctbal "yellow tomato"',
        'Find the maximum balance of suppliers that supply the "yellow tomato"',
        distinguish=True,
        require_aggs=("MAX(acctbal)@Supplier",),
    ),
    QuerySpec(
        "T5",
        'COUNT supplier "Indian black chocolate"',
        'Find the number of suppliers for "Indian black chocolate"',
        require_aggs=("COUNT@Supplier",),
    ),
    QuerySpec(
        "T6",
        "COUNT part GROUPBY supplier",
        "Find the number of parts supplied by each supplier",
        require_aggs=("COUNT@Part",),
    ),
    QuerySpec(
        "T7",
        "COUNT order SUM amount GROUPBY mktsegment",
        "Find the number of orders and their total amount for each market segment",
        require_aggs=("COUNT@Order", "SUM(amount)@Order"),
        sqak_na=True,  # more than one aggregate in the SELECT clause
    ),
    QuerySpec(
        "T8",
        'COUNT supplier "pink rose" "white rose"',
        'Find the number of suppliers for "pink rose" and "white rose"',
        distinguish=True,
        require_aggs=("COUNT@Supplier",),
        sqak_na=True,  # requires a self join of the Part relation
    ),
)


ACMDL_QUERIES: Tuple[QuerySpec, ...] = (
    QuerySpec(
        "A1",
        "proceeding AVG pages",
        "Find the average pages of proceedings",
        require_aggs=("AVG(pages)@Proceeding",),
    ),
    QuerySpec(
        "A2",
        "COUNT paper GROUPBY proceeding SIGMOD",
        "Find the number of papers in each 'SIGMOD' proceeding",
        require_aggs=("COUNT@Paper",),
    ),
    QuerySpec(
        "A3",
        "COUNT proceeding editor Smith",
        "Find the number of proceedings edited by 'Smith'",
        distinguish=True,
        require_aggs=("COUNT@Proceeding",),
    ),
    QuerySpec(
        "A4",
        "paper MAX date Gill",
        "Find the date of the latest papers written by 'Gill'",
        distinguish=True,
        require_aggs=("MAX(date)@Paper",),
    ),
    QuerySpec(
        "A5",
        'COUNT author "database tuning"',
        'Find the number of authors for each "database tuning" paper',
        distinguish=True,
        require_aggs=("COUNT@Author",),
    ),
    QuerySpec(
        "A6",
        "COUNT paper MAX date IEEE",
        "Find the number of papers published by 'IEEE' and most recent date",
        distinguish=True,
        require_aggs=("COUNT@Paper", "MAX(date)@Paper"),
        sqak_na=True,  # more than one aggregate in the SELECT clause
    ),
    QuerySpec(
        "A7",
        "COUNT paper author John Mary",
        "Find the number of papers co-authored by 'John' and 'Mary'",
        distinguish=True,
        require_aggs=("COUNT@Paper",),
        sqak_na=True,  # requires a self join of the Author relation
    ),
    QuerySpec(
        "A8",
        "COUNT editor SIGIR CIKM",
        "Find the number of editors that edit proceedings 'SIGIR' and 'CIKM'",
        distinguish=True,
        require_aggs=("COUNT@Editor",),
        sqak_na=True,  # requires a self join of the Proceeding relation
    ),
)


def spec_by_id(qid: str) -> QuerySpec:
    """Look up a query spec by its id (T1-T8, A1-A8)."""
    for spec in TPCH_QUERIES + ACMDL_QUERIES:
        if spec.qid == qid:
            return spec
    raise KeyError(qid)
