"""Experiment runner: semantic engine vs SQAK on one database.

For every :class:`~repro.experiments.queries.QuerySpec` the runner compiles
both systems' SQL, selects the semantic interpretation matching the query
description (the paper's §6.1.1 protocol), executes the statements against
the in-memory database, and records answers plus SQL-generation times (the
quantity Figure 11 plots).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.baselines.sqak import SqakEngine
from repro.engine import Interpretation, KeywordSearchEngine
from repro.errors import UnsupportedQueryError
from repro.experiments.queries import QuerySpec
from repro.patterns.pattern import QueryPattern
from repro.relational.executor import QueryResult

_AGG_SPEC_RE = re.compile(r"^([A-Z]+)(?:\(([^)]*)\))?@(\w+)$")


def _pattern_satisfies(pattern: QueryPattern, spec: QuerySpec) -> bool:
    """Does this pattern match the query description constraints?"""
    if spec.distinguish:
        # every multi-object value condition must be distinguished
        for node in pattern.nodes:
            if not node.is_object_like:
                continue
            has_multi = any(c.distinct_objects > 1 for c in node.conditions)
            distinguished = any(g.from_disambiguation for g in node.groupbys)
            if has_multi and not distinguished:
                return False
    else:
        if pattern.distinguishes:
            return False
    for requirement in spec.require_aggs:
        match = _AGG_SPEC_RE.match(requirement)
        if not match:
            raise ValueError(f"bad aggregate requirement {requirement!r}")
        func, attr, node_name = match.groups()
        found = False
        for node in pattern.nodes:
            if not node.orm_node.startswith(node_name):
                continue
            for aggregate in node.aggregates:
                if aggregate.func != func:
                    continue
                if attr and aggregate.attribute != attr:
                    continue
                found = True
        if not found:
            return False
    return True


def pick_interpretation(
    interpretations: Sequence[Interpretation], spec: QuerySpec
) -> Interpretation:
    """The ranked interpretation that best matches the query description."""
    for interpretation in interpretations:
        if _pattern_satisfies(interpretation.pattern, spec):
            return interpretation
    return interpretations[0]


@dataclass
class QueryOutcome:
    """Both systems' results for one evaluation query."""

    spec: QuerySpec
    semantic_sql: str
    semantic_result: QueryResult
    semantic_compile_ms: float
    sqak_sql: Optional[str]
    sqak_result: Optional[QueryResult]
    sqak_compile_ms: Optional[float]
    sqak_error: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def sqak_is_na(self) -> bool:
        return self.sqak_result is None

    def semantic_answers(self) -> List[Tuple]:
        return self.semantic_result.sorted_rows()

    def sqak_answers(self) -> Optional[List[Tuple]]:
        if self.sqak_result is None:
            return None
        return self.sqak_result.sorted_rows()

    def summarize(self, side: str, max_values: int = 6) -> str:
        """Paper-style answer summary: '8 answers: 23, 22, ...'."""
        result = self.semantic_result if side == "semantic" else self.sqak_result
        if result is None:
            return "N.A."
        rows = result.sorted_rows()
        if not rows:
            return "0 answers"

        def fmt(row: Tuple) -> str:
            values = [_fmt_value(v) for v in row[-max(1, len(row)) :]]
            # show only the aggregate columns (skip leading group keys when
            # the row has several columns)
            if len(row) > 1:
                values = [_fmt_value(v) for v in row[1:]] or values
            if len(values) == 1:
                return values[0]
            return "(" + ", ".join(values) + ")"

        shown = ", ".join(fmt(row) for row in rows[:max_values])
        suffix = ", ..." if len(rows) > max_values else ""
        if len(rows) == 1:
            return f"1 answer: {shown}"
        return f"{len(rows)} answers: {shown}{suffix}"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1e5:
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def run_query(
    engine: KeywordSearchEngine,
    sqak: SqakEngine,
    spec: QuerySpec,
    k: int = 10,
) -> QueryOutcome:
    """Run one query on both systems."""
    start = time.perf_counter()
    interpretations = engine.compile(spec.text, k=k)
    semantic_ms = (time.perf_counter() - start) * 1000.0
    chosen = pick_interpretation(interpretations, spec)
    semantic_result = chosen.execute()

    sqak_sql: Optional[str] = None
    sqak_result: Optional[QueryResult] = None
    sqak_ms: Optional[float] = None
    sqak_error: Optional[str] = None
    try:
        start = time.perf_counter()
        statement = sqak.compile(spec.text)
        sqak_ms = (time.perf_counter() - start) * 1000.0
        sqak_sql = statement.sql_compact
        sqak_result = sqak.executor.execute(statement.select)
    except UnsupportedQueryError as exc:
        sqak_error = str(exc)

    return QueryOutcome(
        spec=spec,
        semantic_sql=chosen.sql_compact,
        semantic_result=semantic_result,
        semantic_compile_ms=semantic_ms,
        sqak_sql=sqak_sql,
        sqak_result=sqak_result,
        sqak_compile_ms=sqak_ms,
        sqak_error=sqak_error,
    )


def run_suite(
    engine: KeywordSearchEngine,
    sqak: SqakEngine,
    specs: Sequence[QuerySpec],
    k: int = 10,
) -> List[QueryOutcome]:
    """Run a whole query suite (one of the paper's tables)."""
    return [run_query(engine, sqak, spec, k=k) for spec in specs]
