"""The paper's evaluation harness: query specs, runner, reporting."""

from repro.experiments.queries import ACMDL_QUERIES, TPCH_QUERIES, QuerySpec, spec_by_id
from repro.experiments.reporting import (
    format_answer_table,
    format_comparison_row,
    format_timing_series,
)
from repro.experiments.ranking_quality import (
    RankingOutcome,
    RankingReport,
    intended_rank,
    ranking_report,
)
from repro.experiments.runner import (
    QueryOutcome,
    pick_interpretation,
    run_query,
    run_suite,
)

__all__ = [
    "ACMDL_QUERIES",
    "QueryOutcome",
    "QuerySpec",
    "RankingOutcome",
    "RankingReport",
    "TPCH_QUERIES",
    "intended_rank",
    "ranking_report",
    "format_answer_table",
    "format_comparison_row",
    "format_timing_series",
    "pick_interpretation",
    "run_query",
    "run_suite",
    "spec_by_id",
]
