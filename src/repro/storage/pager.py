"""Page-granular file I/O and the LRU buffer pool.

Two layers:

* :class:`Pager` — a file of fixed-size pages.  Knows nothing about page
  contents; reads and writes whole pages at page-aligned offsets.
* :class:`BufferPool` — a fixed budget of in-memory page frames shared
  by every file of one storage engine.  Callers :meth:`~BufferPool.pin`
  a page (faulting it in on miss, evicting the least recently used
  unpinned frame when the pool is full) and :meth:`~BufferPool.unpin` it
  when done, marking it dirty if they wrote.  Dirty frames are written
  back on eviction and on :meth:`~BufferPool.flush`.

The pool never holds more than ``capacity`` frames — that is the whole
point of the subsystem, and :class:`~repro.backends.disk.DiskBackend`
asserts it after every statement.  Counters (``hits``, ``misses``,
``evictions``, ``writebacks``, ``pins``) feed the observability layer's
metrics registry via ``tracer.count`` at the backend boundary.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.errors import StorageError

__all__ = ["DEFAULT_PAGE_SIZE", "MIN_PAGE_SIZE", "BufferPool", "Frame", "Pager"]

DEFAULT_PAGE_SIZE = 4096
#: Small enough that unit tests can force many pages (and B+-tree splits)
#: from tiny datasets; large enough for the slotted-page header plus one
#: modest record.
MIN_PAGE_SIZE = 64


class Pager:
    """Fixed-size page I/O over one binary file.

    ``create=True`` truncates/creates the file; otherwise it must exist.
    Page numbers are dense, starting at 0; :meth:`allocate` appends a
    zeroed page.
    """

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE, create: bool = False) -> None:
        if page_size < MIN_PAGE_SIZE:
            raise StorageError(
                f"page size {page_size} below minimum {MIN_PAGE_SIZE}"
            )
        self.path = str(path)
        self.page_size = page_size
        mode = "w+b" if create else "r+b"
        try:
            self._handle = open(self.path, mode)
        except OSError as exc:
            raise StorageError(f"cannot open page file {self.path}: {exc}") from exc
        if not create:
            size = os.fstat(self._handle.fileno()).st_size
            if size % page_size:
                raise StorageError(
                    f"{self.path}: size {size} is not a multiple of page "
                    f"size {page_size} (torn write?)"
                )
            self._page_count = size // page_size
        else:
            self._page_count = 0

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate(self) -> int:
        """Append a zeroed page; returns its page number."""
        page_no = self._page_count
        self.write_page(page_no, bytes(self.page_size))
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        if not (0 <= page_no < self._page_count):
            raise StorageError(
                f"{self.path}: page {page_no} out of range "
                f"(0..{self._page_count - 1})"
            )
        self._handle.seek(page_no * self.page_size)
        data = self._handle.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.path}: short read of page {page_no} "
                f"({len(data)}/{self.page_size} bytes)"
            )
        return bytearray(data)

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.path}: page write of {len(data)} bytes "
                f"(page size {self.page_size})"
            )
        if page_no > self._page_count:
            raise StorageError(
                f"{self.path}: write to page {page_no} would leave a hole "
                f"(page count {self._page_count})"
            )
        self._handle.seek(page_no * self.page_size)
        self._handle.write(data)
        if page_no == self._page_count:
            self._page_count += 1

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.flush()
        finally:
            self._handle.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pager({self.path!r}, pages={self._page_count})"


class Frame:
    """One resident page: its bytes, pin count and dirty flag."""

    __slots__ = ("file_id", "page_no", "data", "pins", "dirty")

    def __init__(self, file_id: str, page_no: int, data: bytearray) -> None:
        self.file_id = file_id
        self.page_no = page_no
        self.data = data
        self.pins = 0
        self.dirty = False


class BufferPool:
    """A fixed budget of page frames shared across page files.

    Frames are keyed by ``(file_id, page_no)``; the owning
    :class:`Pager` for each ``file_id`` is registered up front so the
    pool can fault pages in and write dirty ones back.  Replacement is
    LRU over *unpinned* frames; pinning a page with the pool full of
    pinned frames raises :class:`StorageError` (the page budget is a
    hard promise, not advice).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self.capacity = capacity
        self._pagers: Dict[str, Pager] = {}
        # insertion/access order == recency; least recently used first
        self._frames: "OrderedDict[Tuple[str, int], Frame]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "writebacks": 0,
            "pins": 0,
            "unpins": 0,
            "max_resident": 0,
            "max_pinned": 0,
        }

    # ------------------------------------------------------------------
    # File registration
    # ------------------------------------------------------------------
    def register(self, file_id: str, pager: Pager) -> None:
        self._pagers[file_id] = pager

    def pager(self, file_id: str) -> Pager:
        try:
            return self._pagers[file_id]
        except KeyError:
            raise StorageError(f"no pager registered for {file_id!r}") from None

    # ------------------------------------------------------------------
    # Pin / unpin
    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        """Number of frames currently held (always <= capacity)."""
        return len(self._frames)

    @property
    def pinned(self) -> int:
        return sum(1 for frame in self._frames.values() if frame.pins)

    def pin(self, file_id: str, page_no: int) -> Frame:
        """Return the frame for a page, faulting it in if absent.

        The caller must :meth:`unpin` it exactly once.
        """
        key = (file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats["hits"] += 1
            self._frames.move_to_end(key)
        else:
            self.stats["misses"] += 1
            self._make_room()
            frame = Frame(file_id, page_no, self.pager(file_id).read_page(page_no))
            self._frames[key] = frame
            self.stats["max_resident"] = max(
                self.stats["max_resident"], len(self._frames)
            )
        frame.pins += 1
        self.stats["pins"] += 1
        self.stats["max_pinned"] = max(self.stats["max_pinned"], self.pinned)
        return frame

    def new_page(self, file_id: str) -> Frame:
        """Allocate a fresh page in *file_id* and pin its (dirty) frame."""
        pager = self.pager(file_id)
        page_no = pager.allocate()
        self._make_room()
        frame = Frame(file_id, page_no, bytearray(pager.page_size))
        frame.pins = 1
        frame.dirty = True
        self._frames[(file_id, page_no)] = frame
        self.stats["pins"] += 1
        self.stats["max_resident"] = max(
            self.stats["max_resident"], len(self._frames)
        )
        self.stats["max_pinned"] = max(self.stats["max_pinned"], self.pinned)
        return frame

    def unpin(self, frame: Frame, dirty: bool = False) -> None:
        if frame.pins <= 0:
            raise StorageError(
                f"unpin of unpinned page {frame.file_id}:{frame.page_no}"
            )
        frame.pins -= 1
        frame.dirty = frame.dirty or dirty
        self.stats["unpins"] += 1

    def _make_room(self) -> None:
        """Evict the LRU unpinned frame if the pool is at capacity."""
        if len(self._frames) < self.capacity:
            return
        for key, frame in self._frames.items():
            if frame.pins == 0:
                self._writeback(frame)
                del self._frames[key]
                self.stats["evictions"] += 1
                return
        raise StorageError(
            f"buffer pool exhausted: all {self.capacity} frames pinned"
        )

    def _writeback(self, frame: Frame) -> None:
        if frame.dirty:
            self.pager(frame.file_id).write_page(frame.page_no, bytes(frame.data))
            frame.dirty = False
            self.stats["writebacks"] += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write every dirty frame back (frames stay resident)."""
        for frame in self._frames.values():
            self._writeback(frame)

    def drop_file(self, file_id: str) -> None:
        """Forget every frame of one file (without write-back) and its
        pager registration — used when a file is being rebuilt."""
        self._frames = OrderedDict(
            (key, frame)
            for key, frame in self._frames.items()
            if frame.file_id != file_id
        )
        self._pagers.pop(file_id, None)

    def clear(self) -> None:
        """Flush and drop every frame and registration."""
        self.flush()
        self._frames.clear()
        self._pagers.clear()

    def counters(self) -> Dict[str, int]:
        """A snapshot of the pool statistics plus residency."""
        snapshot = dict(self.stats)
        snapshot["resident"] = self.resident
        snapshot["pinned"] = self.pinned
        snapshot["capacity"] = self.capacity
        return snapshot

    def hit_rate(self) -> Optional[float]:
        accesses = self.stats["hits"] + self.stats["misses"]
        if not accesses:
            return None
        return self.stats["hits"] / accesses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(resident={self.resident}/{self.capacity}, "
            f"hits={self.stats['hits']}, misses={self.stats['misses']})"
        )
