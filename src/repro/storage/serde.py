"""Row serialization for heap pages.

A row is encoded column by column, in schema order.  Each column starts
with a one-byte tag:

* ``0`` — NULL (nothing follows);
* ``1`` — value follows, encoded by the column's declared
  :class:`~repro.relational.types.DataType`:
  INT as a signed 64-bit little-endian integer, FLOAT as an IEEE-754
  double, BOOL as one byte, TEXT/DATE as a ``u32`` byte length plus
  UTF-8 bytes;
* ``2`` — an INT too wide for 64 bits, stored as its decimal string
  (``coerce`` accepts arbitrary-precision integers, so the row format
  must too).

Decoding is the exact inverse; round-tripping any coerced row returns an
equal tuple with identical Python types, which the differential harness
depends on (``bool`` stays ``bool``, ``int`` never becomes ``float``).
"""

from __future__ import annotations

import struct
from typing import Any, Sequence, Tuple

from repro.errors import StorageError
from repro.relational.schema import RelationSchema
from repro.relational.types import DataType

__all__ = ["decode_row", "encode_row"]

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def encode_row(row: Sequence[Any], schema: RelationSchema) -> bytes:
    """Encode one coerced row (see :func:`repro.relational.types.coerce`)."""
    if len(row) != len(schema.columns):
        raise StorageError(
            f"{schema.name}: cannot encode {len(row)} values into "
            f"{len(schema.columns)} columns"
        )
    parts = bytearray()
    for value, column in zip(row, schema.columns):
        if value is None:
            parts.append(0)
            continue
        dtype = column.dtype
        if dtype is DataType.INT:
            if _I64_MIN <= value <= _I64_MAX:
                parts.append(1)
                parts += _I64.pack(value)
            else:
                text = str(value).encode("ascii")
                parts.append(2)
                parts += _U32.pack(len(text))
                parts += text
        elif dtype is DataType.FLOAT:
            parts.append(1)
            parts += _F64.pack(value)
        elif dtype is DataType.BOOL:
            parts.append(1)
            parts.append(1 if value else 0)
        else:  # TEXT / DATE
            raw = value.encode("utf-8")
            parts.append(1)
            parts += _U32.pack(len(raw))
            parts += raw
    return bytes(parts)


def decode_row(buffer: bytes, schema: RelationSchema) -> Tuple[Any, ...]:
    """Decode one record produced by :func:`encode_row`."""
    values = []
    offset = 0
    try:
        for column in schema.columns:
            tag = buffer[offset]
            offset += 1
            if tag == 0:
                values.append(None)
                continue
            dtype = column.dtype
            if dtype is DataType.INT:
                if tag == 2:
                    (length,) = _U32.unpack_from(buffer, offset)
                    offset += 4
                    values.append(int(buffer[offset:offset + length]))
                    offset += length
                else:
                    values.append(_I64.unpack_from(buffer, offset)[0])
                    offset += 8
            elif dtype is DataType.FLOAT:
                values.append(_F64.unpack_from(buffer, offset)[0])
                offset += 8
            elif dtype is DataType.BOOL:
                values.append(bool(buffer[offset]))
                offset += 1
            else:  # TEXT / DATE
                (length,) = _U32.unpack_from(buffer, offset)
                offset += 4
                values.append(buffer[offset:offset + length].decode("utf-8"))
                offset += length
    except (IndexError, struct.error, UnicodeDecodeError) as exc:
        raise StorageError(
            f"{schema.name}: corrupt record ({exc})"
        ) from exc
    if offset != len(buffer):
        raise StorageError(
            f"{schema.name}: {len(buffer) - offset} trailing bytes in record"
        )
    return tuple(values)
