"""SPIMI-style on-disk inverted index for keyword ``contains`` probes.

Build side (:class:`SpimiBuilder`) is Single-Pass In-Memory Indexing:
postings accumulate in a dictionary until an entry budget is hit, then
the block is sorted and spilled to a temporary file; :meth:`finalize`
k-way-merges the sorted blocks (``heapq.merge``) into one postings file
plus a JSON term dictionary mapping each token to its byte extent.  The
peak memory of a build is therefore the block budget, not the corpus.

Read side (:class:`SpimiIndex`) keeps only the term dictionary in
memory and fetches posting payloads on demand.  Its query surface
mirrors the candidate-generation half of
:meth:`repro.relational.index.InvertedIndex.positions_for_contains`:
for a phrase's first token it unions the postings of every vocabulary
token containing it as a substring.  The result is a *superset* of the
matching rows (no substring verification here — the compiled plan
re-verifies every candidate row against the actual predicate closure),
and it is complete for substring semantics because a phrase occurring in
a value always places its first token inside a single token of that
value.

Postings file format, per token (byte extent recorded in the dict)::

    [n_slots: u32]
    n_slots * ( [len: u16][relation utf-8]
                [len: u16][attribute utf-8]
                [n: u32][position u32 ...] )
"""

from __future__ import annotations

import json
import os
import struct
from collections import OrderedDict
from heapq import merge
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import StorageError

__all__ = ["DEFAULT_BLOCK_BUDGET", "SpimiBuilder", "SpimiIndex"]

DEFAULT_BLOCK_BUDGET = 50_000
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
#: tokens are ``[a-z0-9]+`` and relation/attribute names are identifiers,
#: so a tab-separated text line per posting entry is unambiguous
_SEP = "\t"
_CACHE_SIZE = 256

Slot = Tuple[str, str]


class SpimiBuilder:
    """Accumulates postings, spilling sorted blocks when over budget."""

    def __init__(self, block_dir: str, block_budget: int = DEFAULT_BLOCK_BUDGET) -> None:
        if block_budget < 1:
            raise StorageError("SPIMI block budget must be >= 1")
        self.block_dir = str(block_dir)
        self.block_budget = block_budget
        self.block_paths: List[str] = []
        self._entries: List[Tuple[str, str, str, int]] = []
        self._finalized = False

    @property
    def blocks_spilled(self) -> int:
        return len(self.block_paths)

    def add(self, token: str, relation: str, attribute: str, position: int) -> None:
        """Record one (token, slot, position) occurrence."""
        self._entries.append((token, relation, attribute, position))
        if len(self._entries) >= self.block_budget:
            self._spill()

    def _spill(self) -> None:
        if not self._entries:
            return
        self._entries.sort()
        path = os.path.join(
            self.block_dir, f"spimi_block_{len(self.block_paths):05d}.tmp"
        )
        with open(path, "w", encoding="utf-8") as handle:
            for token, relation, attribute, position in self._entries:
                handle.write(
                    f"{token}{_SEP}{relation}{_SEP}{attribute}{_SEP}{position}\n"
                )
        self.block_paths.append(path)
        self._entries = []

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def finalize(self, postings_path: str, dict_path: str) -> Dict[str, int]:
        """K-way merge every spilled block into the final index files.

        Returns build statistics (tokens, postings, blocks merged)."""
        if self._finalized:
            raise StorageError("SpimiBuilder.finalize called twice")
        self._finalized = True
        self._spill()
        streams = [self._read_block(path) for path in self.block_paths]
        vocabulary: Dict[str, Tuple[int, int]] = {}
        stats = {"tokens": 0, "postings": 0, "blocks": len(self.block_paths)}
        with open(postings_path, "wb") as out:
            offset = 0
            for token, slots in self._grouped(merge(*streams)):
                payload = self._encode_postings(slots)
                out.write(payload)
                vocabulary[token] = (offset, len(payload))
                offset += len(payload)
                stats["tokens"] += 1
                stats["postings"] += sum(len(v) for v in slots.values())
        tmp = dict_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(
                {token: list(extent) for token, extent in vocabulary.items()},
                handle,
                sort_keys=True,
            )
        os.replace(tmp, dict_path)
        for path in self.block_paths:
            os.unlink(path)
        self.block_paths = []
        return stats

    @staticmethod
    def _read_block(path: str) -> Iterator[Tuple[str, str, str, int]]:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                token, relation, attribute, position = line.rstrip("\n").split(_SEP)
                yield token, relation, attribute, int(position)

    @staticmethod
    def _grouped(
        entries: Iterator[Tuple[str, str, str, int]],
    ) -> Iterator[Tuple[str, Dict[Slot, List[int]]]]:
        """Group the merged sorted stream by token, deduplicating
        positions (the same token can occur twice in one value)."""
        current: Optional[str] = None
        slots: Dict[Slot, List[int]] = {}
        for token, relation, attribute, position in entries:
            if token != current:
                if current is not None:
                    yield current, slots
                current, slots = token, {}
            bucket = slots.setdefault((relation, attribute), [])
            if not bucket or bucket[-1] != position:
                bucket.append(position)
        if current is not None:
            yield current, slots

    @staticmethod
    def _encode_postings(slots: Dict[Slot, List[int]]) -> bytes:
        parts = bytearray(_U32.pack(len(slots)))
        for (relation, attribute), positions in sorted(slots.items()):
            for name in (relation, attribute):
                raw = name.encode("utf-8")
                parts += _U16.pack(len(raw))
                parts += raw
            parts += _U32.pack(len(positions))
            for position in positions:
                parts += _U32.pack(position)
        return bytes(parts)


class SpimiIndex:
    """Read-only view over a finalized SPIMI index."""

    def __init__(self, postings_path: str, dict_path: str) -> None:
        self.postings_path = str(postings_path)
        try:
            with open(dict_path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            self._vocabulary: Dict[str, Tuple[int, int]] = {
                token: (int(extent[0]), int(extent[1]))
                for token, extent in raw.items()
            }
        except (OSError, ValueError, KeyError, IndexError, TypeError) as exc:
            raise StorageError(f"cannot load SPIMI dictionary {dict_path}: {exc}") from exc
        try:
            self._handle = open(self.postings_path, "rb")
        except OSError as exc:
            raise StorageError(f"cannot open postings {postings_path}: {exc}") from exc
        self._cache: "OrderedDict[str, Dict[Slot, List[int]]]" = OrderedDict()

    def close(self) -> None:
        self._handle.close()

    def __len__(self) -> int:
        return len(self._vocabulary)

    def vocabulary(self) -> Iterator[str]:
        return iter(self._vocabulary)

    def postings(self, token: str) -> Dict[Slot, List[int]]:
        """The slot -> positions map for one exact token ({} if absent)."""
        extent = self._vocabulary.get(token)
        if extent is None:
            return {}
        cached = self._cache.get(token)
        if cached is not None:
            self._cache.move_to_end(token)
            return cached
        offset, length = extent
        self._handle.seek(offset)
        payload = self._handle.read(length)
        if len(payload) != length:
            raise StorageError(
                f"{self.postings_path}: short read for token {token!r}"
            )
        decoded = self._decode_postings(token, payload)
        self._cache[token] = decoded
        if len(self._cache) > _CACHE_SIZE:
            self._cache.popitem(last=False)
        return decoded

    def _decode_postings(self, token: str, payload: bytes) -> Dict[Slot, List[int]]:
        try:
            (n_slots,) = _U32.unpack_from(payload, 0)
            offset = _U32.size
            slots: Dict[Slot, List[int]] = {}
            for _ in range(n_slots):
                names = []
                for _ in range(2):
                    (length,) = _U16.unpack_from(payload, offset)
                    offset += _U16.size
                    names.append(payload[offset:offset + length].decode("utf-8"))
                    offset += length
                (count,) = _U32.unpack_from(payload, offset)
                offset += _U32.size
                positions = [
                    _U32.unpack_from(payload, offset + i * _U32.size)[0]
                    for i in range(count)
                ]
                offset += count * _U32.size
                slots[(names[0], names[1])] = positions
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"{self.postings_path}: corrupt postings for {token!r} ({exc})"
            ) from exc
        if offset != len(payload):
            raise StorageError(
                f"{self.postings_path}: trailing bytes in postings for {token!r}"
            )
        return slots

    def candidate_positions(self, first_token: str, relation: str, attribute: str) -> Set[int]:
        """Union of postings of every vocabulary token containing
        *first_token* as a substring, restricted to one slot.

        This is the sound-and-complete candidate set for substring
        (``contains``) matching; callers verify candidates against the
        actual values."""
        slot = (relation, attribute)
        found: Set[int] = set()
        for token in self._vocabulary:
            if first_token in token:
                hit = self.postings(token).get(slot)
                if hit:
                    found.update(hit)
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpimiIndex({self.postings_path!r}, tokens={len(self)})"
