"""A static hash index over one text column: value -> row positions.

Disk counterpart of the ``hash-eq`` seam of
:class:`~repro.relational.plan.IndexLookup` (which always probes a
single TEXT/DATE column with a string literal).  The index is built once
per materialization over the column's non-NULL values and is read-only
afterwards, so a *static* hash table suffices — no directories, no
splits.

Layout (one page file)::

    page 0                meta: magic, bucket count B
    pages 1..B            primary bucket pages
    pages B+1..           overflow pages, chained from their bucket

    bucket page: [n: u16][next_overflow: u32]  then n entries of
                 [hash: u64][position: u32]

Entries store the full 64-bit ``blake2b`` hash of the value, not the
value itself: a probe returns every position whose stored hash matches,
which is a *superset* of the true matches on (vanishingly rare) hash
collisions.  That is sound because the compiled plan re-verifies every
candidate row against the actual predicate closure — exactly the
contract the in-memory ``NumericIndex`` already relies on.
"""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import StorageError
from repro.storage.pager import BufferPool, Pager

__all__ = ["HashFile", "hash_key"]

_META = struct.Struct("<4sI")
_MAGIC = b"HSH1"
_BUCKET_HEADER = struct.Struct("<HI")
_ENTRY = struct.Struct("<QI")
_NO_PAGE = 0xFFFFFFFF
#: Target fill of a primary bucket page at build time; the slack keeps
#: most chains one page long without wasting much space.
_FILL = 0.75


def hash_key(value: str) -> int:
    """Stable 64-bit hash of a text value."""
    return int.from_bytes(blake2b(value.encode("utf-8"), digest_size=8).digest(), "little")


def _entries_per_page(page_size: int) -> int:
    capacity = (page_size - _BUCKET_HEADER.size) // _ENTRY.size
    if capacity < 1:
        raise StorageError(f"page size {page_size} too small for a hash bucket")
    return capacity


class HashFile:
    """Read-side handle over a built hash-index page file."""

    def __init__(self, pool: BufferPool, file_id: str) -> None:
        self.pool = pool
        self.file_id = file_id
        frame = pool.pin(file_id, 0)
        try:
            magic, buckets = _META.unpack_from(frame.data, 0)
        finally:
            pool.unpin(frame)
        if magic != _MAGIC:
            raise StorageError(f"{file_id}: bad hash-index magic {magic!r}")
        self.buckets = buckets
        self._capacity = _entries_per_page(pool.pager(file_id).page_size)

    # ------------------------------------------------------------------
    # Build (sequential, straight through a private pager)
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        path: str,
        items: Iterable[Tuple[str, int]],
        page_size: int,
    ) -> int:
        """Write a hash file mapping each ``(value, position)`` pair;
        returns the number of primary buckets."""
        capacity = _entries_per_page(page_size)
        pairs = [(hash_key(value), position) for value, position in items]
        fill = max(1, int(capacity * _FILL))
        buckets = max(1, -(-len(pairs) // fill))  # ceil division
        chains: List[List[Tuple[int, int]]] = [[] for _ in range(buckets)]
        for hashed, position in pairs:
            chains[hashed % buckets].append((hashed, position))

        # Assign page numbers up front: primary pages are 1..buckets, each
        # bucket's overflow pages follow in bucket order.
        next_free = buckets + 1
        pages: Dict[int, bytes] = {}
        for bucket, chain in enumerate(chains):
            chunks = [
                chain[start:start + capacity]
                for start in range(0, len(chain), capacity)
            ] or [[]]
            page_nos = [bucket + 1]
            for _ in chunks[1:]:
                page_nos.append(next_free)
                next_free += 1
            for i, chunk in enumerate(chunks):
                data = bytearray(page_size)
                nxt = page_nos[i + 1] if i + 1 < len(page_nos) else _NO_PAGE
                _BUCKET_HEADER.pack_into(data, 0, len(chunk), nxt)
                offset = _BUCKET_HEADER.size
                for hashed, position in chunk:
                    _ENTRY.pack_into(data, offset, hashed, position)
                    offset += _ENTRY.size
                pages[page_nos[i]] = bytes(data)

        pager = Pager(path, page_size, create=True)
        try:
            meta = bytearray(page_size)
            _META.pack_into(meta, 0, _MAGIC, buckets)
            pager.write_page(0, bytes(meta))
            for page_no in range(1, next_free):
                pager.write_page(page_no, pages[page_no])
            pager.sync()
        finally:
            pager.close()
        return buckets

    # ------------------------------------------------------------------
    # Probe
    # ------------------------------------------------------------------
    def positions(self, value: str) -> Set[int]:
        """Candidate row positions for ``column = value`` (superset on
        hash collision; callers re-verify)."""
        needle = hash_key(value)
        found: Set[int] = set()
        page_no = (needle % self.buckets) + 1
        while page_no != _NO_PAGE:
            frame = self.pool.pin(self.file_id, page_no)
            try:
                count, page_no = _BUCKET_HEADER.unpack_from(frame.data, 0)
                offset = _BUCKET_HEADER.size
                for _ in range(count):
                    hashed, position = _ENTRY.unpack_from(frame.data, offset)
                    offset += _ENTRY.size
                    if hashed == needle:
                        found.add(position)
            finally:
                self.pool.unpin(frame)
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashFile({self.file_id!r}, buckets={self.buckets})"
