"""Heap files: a relation's rows in slotted pages, read through the pool.

A heap file is bulk-built once per materialization (tables are
append-only between data-version bumps, so there is no in-place update
path) and then served read-only.  The read path exposes the rows as
:class:`HeapRows`, a lazy sequence:

* ``rows[pos]`` — the row-position access pattern index-backed scans
  use; binary-searches the per-page record counts for the owning page,
  pins it, decodes one record, unpins;
* ``iter(rows)`` / ``list(rows)`` — a sequential scan pinning one page
  at a time;
* ``len(rows)`` — from the manifest, no I/O.

Row *positions* are the same dense 0..n-1 insertion-order positions the
in-memory indexes use, so position sets computed by the disk indexes
plug straight into :class:`~repro.relational.plan.CompiledPlan`'s
index-scan machinery.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import StorageError
from repro.relational.schema import RelationSchema
from repro.storage.page import SlottedPage
from repro.storage.pager import BufferPool, Pager
from repro.storage.serde import decode_row, encode_row

__all__ = ["HeapFile", "HeapRows", "build_heap"]

Row = Tuple[Any, ...]


def build_heap(
    path: str,
    schema: RelationSchema,
    rows: Iterable[Sequence[Any]],
    page_size: int,
) -> List[int]:
    """Write *rows* into a fresh heap file; returns records-per-page.

    The build path writes pages sequentially through a private
    :class:`Pager` (no pool: nothing is re-read during a build, caching
    would only evict pages the serving side wants).
    """
    pager = Pager(path, page_size, create=True)
    try:
        page_counts: List[int] = []
        data = bytearray(page_size)
        page = SlottedPage.initialize(data)
        for row in rows:
            record = encode_row(row, schema)
            if page.insert(record) is None:
                pager.write_page(pager.page_count, bytes(data))
                page_counts.append(page.slot_count)
                page = SlottedPage.initialize(data)
                if page.insert(record) is None:  # pragma: no cover - guarded
                    raise StorageError(
                        f"{schema.name}: record does not fit a blank page"
                    )
        if page.slot_count:
            pager.write_page(pager.page_count, bytes(data))
            page_counts.append(page.slot_count)
        pager.sync()
    finally:
        pager.close()
    return page_counts


class HeapFile:
    """Read-side handle for one materialized relation."""

    def __init__(
        self,
        pool: BufferPool,
        file_id: str,
        schema: RelationSchema,
        page_counts: Sequence[int],
    ) -> None:
        self.pool = pool
        self.file_id = file_id
        self.schema = schema
        self.page_counts = list(page_counts)
        # cumulative[i] == first row position on page i+1
        self._cumulative = list(accumulate(self.page_counts))
        self.row_count = self._cumulative[-1] if self._cumulative else 0

    @property
    def page_count(self) -> int:
        return len(self.page_counts)

    @property
    def rows(self) -> "HeapRows":
        return HeapRows(self)

    def row(self, position: int) -> Row:
        """Decode the row at dense *position* (one page pin)."""
        if not (0 <= position < self.row_count):
            raise StorageError(
                f"{self.schema.name}: row position {position} out of range "
                f"(0..{self.row_count - 1})"
            )
        page_no = bisect_right(self._cumulative, position)
        first = self._cumulative[page_no - 1] if page_no else 0
        frame = self.pool.pin(self.file_id, page_no)
        try:
            record = SlottedPage(frame.data).record(position - first)
        finally:
            self.pool.unpin(frame)
        return decode_row(record, self.schema)

    def scan(self) -> Iterator[Row]:
        """All rows in position order, one page pinned at a time."""
        for page_no, expected in enumerate(self.page_counts):
            frame = self.pool.pin(self.file_id, page_no)
            try:
                page = SlottedPage(frame.data)
                if page.slot_count != expected:
                    raise StorageError(
                        f"{self.schema.name}: page {page_no} holds "
                        f"{page.slot_count} records, manifest says {expected}"
                    )
                decoded = [decode_row(record, self.schema) for record in page.records()]
            finally:
                self.pool.unpin(frame)
            yield from decoded

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeapFile({self.schema.name!r}, rows={self.row_count}, "
            f"pages={self.page_count})"
        )


class HeapRows(Sequence[Row]):
    """Lazy sequence view over a heap file's rows.

    Satisfies the access patterns of the executor and
    :class:`~repro.relational.plan.CompiledPlan` (``len``, integer
    indexing, iteration) without ever materializing the relation."""

    __slots__ = ("_heap",)

    def __init__(self, heap: HeapFile) -> None:
        self._heap = heap

    def __len__(self) -> int:
        return self._heap.row_count

    def __getitem__(self, position):  # type: ignore[override]
        if isinstance(position, slice):
            return [
                self._heap.row(pos)
                for pos in range(*position.indices(self._heap.row_count))
            ]
        if position < 0:
            position += self._heap.row_count
        return self._heap.row(position)

    def __iter__(self) -> Iterator[Row]:
        return self._heap.scan()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeapRows({self._heap.schema.name!r}, n={len(self)})"
