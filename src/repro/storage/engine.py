"""The storage engine: serving a materialized directory for execution.

:class:`StorageEngine` opens a directory written by
:func:`~repro.storage.materialize.materialize` — one buffer pool shared
by every heap and index file — and exposes it as a
:class:`DiskDatabase`, a duck-typed stand-in for
:class:`~repro.relational.database.Database` implementing exactly the
surface :class:`~repro.relational.executor.Executor` and
:class:`~repro.relational.plan.CompiledPlan` consume:

* ``schema`` / ``table(name)`` → :class:`DiskTable`, whose ``rows`` is a
  lazy page-at-a-time sequence (:class:`~repro.storage.heap.HeapRows`);
* ``data_version`` — the version the materialization was taken at, so
  the executor's plan cache and ``IndexLookup`` memos stay valid for the
  lifetime of a materialization;
* ``text_index`` / ``numeric_index`` / ``hash_index(...)`` — adapters
  answering index probes from the on-disk SPIMI, B+-tree and hash
  structures.  Each may return a *superset* of the matching positions
  (float-keyed trees, hash collisions, unverified ``contains``
  candidates): sound, because the compiled plan re-verifies every
  candidate row against its predicate closures.

The engine is read-only; rebuilding after a data change is the
responsibility of :class:`~repro.backends.disk.DiskBackend`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import StorageError, UnknownTableError
from repro.relational.index import HashIndex, tokenize_text
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType
from repro.storage.bptree import BPlusTree
from repro.storage.hashindex import HashFile
from repro.storage.heap import HeapFile, HeapRows
from repro.storage.materialize import load_manifest
from repro.storage.pager import BufferPool, Pager
from repro.storage.spimi import SpimiIndex

__all__ = ["DEFAULT_POOL_CAPACITY", "DiskDatabase", "DiskTable", "StorageEngine"]

DEFAULT_POOL_CAPACITY = 64
_TEXT_TYPES = (DataType.TEXT, DataType.DATE)


class StorageEngine:
    """Read-side handle over one materialized directory."""

    def __init__(
        self,
        directory: str,
        schema: DatabaseSchema,
        pool_capacity: int = DEFAULT_POOL_CAPACITY,
    ) -> None:
        self.directory = str(directory)
        self.schema = schema
        self.manifest = load_manifest(directory)
        if self.manifest["database"] != schema.name:
            raise StorageError(
                f"{directory}: materialization of "
                f"{self.manifest['database']!r}, not {schema.name!r}"
            )
        self.page_size = int(self.manifest["page_size"])
        self.pool = BufferPool(pool_capacity)
        self._pagers: List[Pager] = []
        self._heaps: Dict[str, HeapFile] = {}
        self._bpt_files: Dict[Tuple[str, str], str] = {}
        self._bptrees: Dict[Tuple[str, str], BPlusTree] = {}
        self._hash_files: Dict[Tuple[str, str], str] = {}
        self._hashes: Dict[Tuple[str, str], HashFile] = {}
        try:
            self._open_files()
            spimi = self.manifest["spimi"]
            self.spimi = SpimiIndex(
                os.path.join(self.directory, spimi["postings"]),
                os.path.join(self.directory, spimi["dict"]),
            )
        except Exception:
            self.close()
            raise
        self.database = DiskDatabase(self)

    def _register(self, file_name: str) -> str:
        pager = Pager(os.path.join(self.directory, file_name), self.page_size)
        self._pagers.append(pager)
        self.pool.register(file_name, pager)
        return file_name

    def _open_files(self) -> None:
        for table_name, entry in self.manifest["tables"].items():
            relation = self.schema.find_relation(table_name)
            if relation is None:
                raise StorageError(
                    f"{self.directory}: manifest table {table_name!r} "
                    "is not in the schema"
                )
            self._heaps[table_name] = HeapFile(
                self.pool,
                self._register(entry["heap"]),
                relation,
                entry["page_counts"],
            )
            if self._heaps[table_name].row_count != entry["rows"]:
                raise StorageError(
                    f"{table_name}: manifest rows {entry['rows']} != "
                    f"page counts total {self._heaps[table_name].row_count}"
                )
            for column, file_name in entry["numeric"].items():
                self._bpt_files[(table_name, column)] = self._register(file_name)
            for column, file_name in entry["hash"].items():
                self._hash_files[(table_name, column)] = self._register(file_name)

    # ------------------------------------------------------------------
    # Handles (index objects constructed on first probe)
    # ------------------------------------------------------------------
    def heap(self, table_name: str) -> HeapFile:
        try:
            return self._heaps[table_name]
        except KeyError:
            raise StorageError(f"no heap file for table {table_name!r}") from None

    def bptree(self, table_name: str, column: str) -> Optional[BPlusTree]:
        key = (table_name, column)
        tree = self._bptrees.get(key)
        if tree is None:
            file_id = self._bpt_files.get(key)
            if file_id is None:
                return None
            tree = self._bptrees.setdefault(key, BPlusTree(self.pool, file_id))
        return tree

    def hash_file(self, table_name: str, column: str) -> Optional[HashFile]:
        key = (table_name, column)
        index = self._hashes.get(key)
        if index is None:
            file_id = self._hash_files.get(key)
            if file_id is None:
                return None
            index = self._hashes.setdefault(key, HashFile(self.pool, file_id))
        return index

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return self.pool.counters()

    def close(self) -> None:
        spimi = getattr(self, "spimi", None)
        if spimi is not None:
            spimi.close()
        # read-only engine: no frame is ever dirty, so clear() drops
        # everything without actual write-back I/O
        self.pool.clear()
        for pager in self._pagers:
            pager.close()
        self._pagers = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageEngine({self.directory!r}, tables={len(self._heaps)}, "
            f"pool={self.pool.resident}/{self.pool.capacity})"
        )


class DiskTable:
    """Duck-typed ``Table``: schema plus a lazy on-disk row sequence."""

    __slots__ = ("schema", "_heap")

    def __init__(self, schema: RelationSchema, heap: HeapFile) -> None:
        self.schema = schema
        self._heap = heap

    @property
    def rows(self) -> HeapRows:
        return self._heap.rows

    def __len__(self) -> int:
        return self._heap.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskTable({self.schema.name!r}, rows={len(self)})"


class _DiskTextIndex:
    """``contains`` probes from the SPIMI index (candidate supersets)."""

    def __init__(self, engine: StorageEngine) -> None:
        self._engine = engine

    def positions_for_contains(
        self, relation: str, attribute: str, phrase: str
    ) -> Optional[Set[int]]:
        schema = self._engine.schema.find_relation(relation)
        if schema is None:
            return None
        if schema.column(attribute).dtype not in _TEXT_TYPES:
            return None  # only text columns are indexed; scan instead
        tokens = tokenize_text(phrase)
        if not tokens:
            return None
        return self._engine.spimi.candidate_positions(tokens[0], relation, attribute)


class _DiskNumericIndex:
    """``numeric-eq`` probes from the per-column B+-trees."""

    def __init__(self, engine: StorageEngine) -> None:
        self._engine = engine

    def positions_for_value(
        self, relation: str, attribute: str, value: Any
    ) -> Optional[Set[int]]:
        try:
            needle = float(value)
        except (TypeError, ValueError):
            return None
        tree = self._engine.bptree(relation, attribute)
        if tree is None:
            return None  # not a materialized numeric column; scan instead
        return set(tree.search_eq(needle))


class _DiskHashAdapter:
    """Single-text-column ``hash-eq`` probes from a :class:`HashFile`."""

    __slots__ = ("_index",)

    def __init__(self, index: HashFile) -> None:
        self._index = index

    def positions(self, key: Tuple[Any, ...]) -> Set[int]:
        (value,) = tuple(key)
        if not isinstance(value, str):
            return set()  # text columns hold only str/None; no match
        return self._index.positions(value)


class DiskDatabase:
    """Duck-typed ``Database`` over a :class:`StorageEngine` (read-only)."""

    def __init__(self, engine: StorageEngine) -> None:
        self._engine = engine
        self.schema = engine.schema
        self._tables: Dict[str, DiskTable] = {}
        self._text_index = _DiskTextIndex(engine)
        self._numeric_index = _DiskNumericIndex(engine)
        self._fallback_hash: Dict[Tuple[str, Tuple[str, ...]], HashIndex] = {}

    @property
    def data_version(self) -> Tuple[int, int]:
        """The source database's version at materialization time —
        constant for the lifetime of this object, so compiled plans and
        index memos built over it never go stale."""
        version = self._engine.manifest["data_version"]
        return (version[0], version[1])

    def table(self, name: str) -> DiskTable:
        table = self._tables.get(name)
        if table is None:
            relation = self.schema.find_relation(name)
            if relation is None:
                raise UnknownTableError(
                    f"no table {name!r} in database {self.schema.name!r}"
                )
            table = self._tables.setdefault(
                name, DiskTable(relation, self._engine.heap(name))
            )
        return table

    def tables(self) -> List[DiskTable]:
        return [self.table(relation.name) for relation in self.schema]

    def __contains__(self, name: str) -> bool:
        return name in self.schema

    # ------------------------------------------------------------------
    # Index seams consumed by IndexLookup.positions
    # ------------------------------------------------------------------
    @property
    def text_index(self) -> _DiskTextIndex:
        return self._text_index

    @property
    def numeric_index(self) -> _DiskNumericIndex:
        return self._numeric_index

    def hash_index(self, table_name: str, columns: Sequence[str]):
        """On-disk hash file when one exists for ``table(column)``;
        otherwise an in-memory :class:`HashIndex` built over the disk
        table (correct for any column combination, just not paged)."""
        cols = tuple(columns)
        if len(cols) == 1:
            index = self._engine.hash_file(table_name, cols[0])
            if index is not None:
                return _DiskHashAdapter(index)
        key = (table_name, cols)
        fallback = self._fallback_hash.get(key)
        if fallback is None:
            fallback = self._fallback_hash.setdefault(
                key, HashIndex(self.table(table_name), cols)
            )
        return fallback

    def row_counts(self) -> Dict[str, int]:
        return {relation.name: len(self.table(relation.name)) for relation in self.schema}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskDatabase({self.schema.name!r}, dir={self._engine.directory!r})"
