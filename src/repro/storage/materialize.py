"""Materializing a :class:`~repro.relational.database.Database` to disk.

:func:`materialize` lays the whole database out as one directory:

* ``<table>.heap`` — slotted-page heap file per table;
* ``<table>.<column>.bpt`` — B+-tree per numeric (INT/FLOAT) column,
  keyed by ``float(value)`` exactly like the in-memory ``NumericIndex``;
* ``<table>.<column>.hash`` — hash index per text (TEXT/DATE) column,
  serving the ``hash-eq`` lookups;
* ``postings.bin`` + ``postings.dict.json`` — one SPIMI inverted index
  over every text column of every table, serving ``contains`` lookups;
* ``MANIFEST.json`` — written **last**, atomically (tmp + ``os.replace``).

Crash consistency is manifest-ordering, not journaling: a rebuild first
*deletes* the manifest, then rewrites the data files, then writes the
new manifest.  A crash at any point leaves a directory whose manifest is
either absent or inconsistent with the files (sizes are recorded and
re-checked), which :func:`materialization_is_fresh` reports as stale —
the backend then rebuilds instead of serving torn data.  The manifest
also records the source :attr:`Database.data_version`, so ordinary
staleness (new rows loaded since materialization) is detected the same
way.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from repro.errors import StorageError
from repro.relational.database import Database
from repro.relational.index import tokenize_text
from repro.relational.types import DataType
from repro.storage.bptree import BPlusTree
from repro.storage.hashindex import HashFile
from repro.storage.heap import build_heap
from repro.storage.pager import DEFAULT_PAGE_SIZE, BufferPool, Pager
from repro.storage.spimi import DEFAULT_BLOCK_BUDGET, SpimiBuilder

__all__ = [
    "MANIFEST_FILE",
    "MANIFEST_FORMAT",
    "load_manifest",
    "materialization_is_fresh",
    "materialize",
]

MANIFEST_FILE = "MANIFEST.json"
MANIFEST_FORMAT = 1
POSTINGS_FILE = "postings.bin"
DICT_FILE = "postings.dict.json"
_NUMERIC = (DataType.INT, DataType.FLOAT)
_TEXTUAL = (DataType.TEXT, DataType.DATE)
#: pool used only while bulk-building B+-trees; independent of (and
#: irrelevant to) the serving pool's capacity promise
_BUILD_POOL_CAPACITY = 64


def materialize(
    database: Database,
    directory: str,
    page_size: int = DEFAULT_PAGE_SIZE,
    block_budget: int = DEFAULT_BLOCK_BUDGET,
) -> Dict[str, Any]:
    """Write *database* into *directory*; returns the manifest."""
    os.makedirs(directory, exist_ok=True)
    manifest_path = os.path.join(directory, MANIFEST_FILE)
    # Invalidate before touching data files: a crash mid-rebuild must not
    # leave an old manifest pointing at half-rewritten files.
    if os.path.exists(manifest_path):
        os.unlink(manifest_path)

    data_version = database.data_version
    build_pool = BufferPool(_BUILD_POOL_CAPACITY)
    spimi = SpimiBuilder(directory, block_budget)
    tables: Dict[str, Any] = {}
    files: Dict[str, int] = {}
    totals = {"rows": 0, "pages": 0}

    for relation in database.schema:
        rows = list(database.table(relation.name).rows)
        heap_file = f"{relation.name}.heap"
        page_counts = build_heap(
            os.path.join(directory, heap_file), relation, rows, page_size
        )
        entry: Dict[str, Any] = {
            "rows": len(rows),
            "heap": heap_file,
            "page_counts": page_counts,
            "numeric": {},
            "hash": {},
        }
        totals["rows"] += len(rows)
        totals["pages"] += len(page_counts)

        for col_idx, column in enumerate(relation.columns):
            if column.dtype in _NUMERIC:
                file_name = f"{relation.name}.{column.name}.bpt"
                items = sorted(
                    (float(row[col_idx]), pos)
                    for pos, row in enumerate(rows)
                    if row[col_idx] is not None
                )
                _build_bptree(
                    build_pool, os.path.join(directory, file_name),
                    file_name, items, page_size,
                )
                entry["numeric"][column.name] = file_name
            elif column.dtype in _TEXTUAL:
                file_name = f"{relation.name}.{column.name}.hash"
                HashFile.build(
                    os.path.join(directory, file_name),
                    (
                        (str(row[col_idx]), pos)
                        for pos, row in enumerate(rows)
                        if row[col_idx] is not None
                    ),
                    page_size,
                )
                entry["hash"][column.name] = file_name
                for pos, row in enumerate(rows):
                    value = row[col_idx]
                    if value is None:
                        continue
                    for token in set(tokenize_text(str(value))):
                        spimi.add(token, relation.name, column.name, pos)
        tables[relation.name] = entry

    spimi_stats = spimi.finalize(
        os.path.join(directory, POSTINGS_FILE),
        os.path.join(directory, DICT_FILE),
    )

    for entry in tables.values():
        for file_name in (
            [entry["heap"]]
            + list(entry["numeric"].values())
            + list(entry["hash"].values())
        ):
            files[file_name] = os.path.getsize(os.path.join(directory, file_name))
    for file_name in (POSTINGS_FILE, DICT_FILE):
        files[file_name] = os.path.getsize(os.path.join(directory, file_name))

    manifest = {
        "format": MANIFEST_FORMAT,
        "database": database.schema.name,
        "page_size": page_size,
        "data_version": list(data_version),
        "tables": tables,
        "spimi": {
            "postings": POSTINGS_FILE,
            "dict": DICT_FILE,
            "stats": spimi_stats,
        },
        "totals": totals,
        "files": files,
    }
    tmp = manifest_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    os.replace(tmp, manifest_path)
    return manifest


def _build_bptree(
    pool: BufferPool,
    path: str,
    file_id: str,
    items: List[Tuple[float, int]],
    page_size: int,
) -> None:
    pager = Pager(path, page_size, create=True)
    try:
        pool.register(file_id, pager)
        BPlusTree.bulk_build(pool, file_id, items)
        pool.flush()
        pager.sync()
    finally:
        pool.drop_file(file_id)
        pager.close()


def load_manifest(directory: str) -> Dict[str, Any]:
    """The parsed manifest of *directory*; raises :class:`StorageError`
    when absent or unreadable."""
    path = os.path.join(directory, MANIFEST_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise StorageError(f"no materialization manifest at {path}: {exc}") from exc
    except ValueError as exc:
        raise StorageError(f"corrupt manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise StorageError(
            f"{path}: unsupported manifest format "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
        )
    return manifest


def materialization_is_fresh(
    directory: str,
    database: Database,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> bool:
    """Whether *directory* holds a complete, current materialization of
    *database* (at *page_size*).

    False for a missing/corrupt/foreign manifest, a stale data version,
    or any data file that is missing or has an unexpected size (the
    half-written shapes a crash during :func:`materialize` leaves)."""
    try:
        manifest = load_manifest(directory)
    except StorageError:
        return False
    if manifest.get("database") != database.schema.name:
        return False
    if manifest.get("page_size") != page_size:
        return False
    if tuple(manifest.get("data_version", ())) != database.data_version:
        return False
    files = manifest.get("files")
    if not isinstance(files, dict):
        return False
    for file_name, size in files.items():
        path = os.path.join(directory, file_name)
        try:
            if os.path.getsize(path) != size:
                return False
        except OSError:
            return False
    return True
