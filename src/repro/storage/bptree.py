"""A paged B+-tree mapping float keys to row positions.

This is the disk counterpart of
:class:`~repro.relational.index.NumericIndex`: keys are the
``float(value)`` of INT/FLOAT column values, values are dense row
positions.  Duplicate keys are first-class (a selective column still has
many rows per value), so probes return *lists* of positions.

Layout (one page file, accessed through the buffer pool):

* page 0 — meta: magic, root page number;
* every other page — a node::

      [type: u8][n: u16][next: u32]   header, 7 bytes
      leaf:     n * key f64, then n * position u32
      internal: n * key f64, then (n + 1) * child u32

  Leaves are chained through ``next`` (``NO_PAGE`` terminates), so
  duplicates and ranges that span leaves are a forward walk.

Search descends with ``bisect_left`` (landing on the leftmost leaf that
can hold a key); insert descends with ``bisect_right`` (equal keys go to
the right), splitting full nodes bottom-up and growing a new root when
the old one splits.  :meth:`BPlusTree.bulk_build` packs sorted pairs
into full leaves and builds the internal levels in one bottom-up pass —
that is the materializer's path; :meth:`BPlusTree.insert` is the
incremental path the property tests exercise at tiny page sizes.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.pager import BufferPool

__all__ = ["BPlusTree", "NO_PAGE"]

NO_PAGE = 0xFFFFFFFF

_META = struct.Struct("<4sI")
_MAGIC = b"BPT1"
_NODE_HEADER = struct.Struct("<BHI")
_KEY = struct.Struct("<d")
_PTR = struct.Struct("<I")
_LEAF, _INTERNAL = 0, 1


class _Node:
    """A node decoded into Python lists (re-encoded on write)."""

    __slots__ = ("is_leaf", "keys", "values", "children", "next")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[float] = []
        self.values: List[int] = []      # leaf only
        self.children: List[int] = []    # internal only
        self.next: int = NO_PAGE         # leaf only


class BPlusTree:
    """B+-tree over ``(pool, file_id)``; see module docstring."""

    def __init__(self, pool: BufferPool, file_id: str) -> None:
        self.pool = pool
        self.file_id = file_id
        page_size = pool.pager(file_id).page_size
        self.leaf_capacity = (page_size - _NODE_HEADER.size) // (
            _KEY.size + _PTR.size
        )
        self.internal_capacity = (
            page_size - _NODE_HEADER.size - _PTR.size
        ) // (_KEY.size + _PTR.size)
        if min(self.leaf_capacity, self.internal_capacity) < 2:
            raise StorageError(
                f"page size {page_size} too small for a B+-tree node"
            )
        self._root = self._read_meta()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, pool: BufferPool, file_id: str) -> "BPlusTree":
        """Initialize an empty tree in a freshly created page file."""
        meta = pool.new_page(file_id)
        _META.pack_into(meta.data, 0, _MAGIC, 1)
        pool.unpin(meta, dirty=True)
        tree = object.__new__(cls)
        tree.pool = pool
        tree.file_id = file_id
        page_size = pool.pager(file_id).page_size
        tree.leaf_capacity = (page_size - _NODE_HEADER.size) // (
            _KEY.size + _PTR.size
        )
        tree.internal_capacity = (
            page_size - _NODE_HEADER.size - _PTR.size
        ) // (_KEY.size + _PTR.size)
        if min(tree.leaf_capacity, tree.internal_capacity) < 2:
            raise StorageError(
                f"page size {page_size} too small for a B+-tree node"
            )
        root = _Node(is_leaf=True)
        if tree._write_new(root) != 1:  # pragma: no cover - fresh file
            raise StorageError(f"{file_id}: root page is not page 1")
        tree._root = 1
        return tree

    @classmethod
    def bulk_build(
        cls,
        pool: BufferPool,
        file_id: str,
        items: Iterable[Tuple[float, int]],
    ) -> "BPlusTree":
        """Build from *items* sorted by key (ties in any order)."""
        tree = cls.create(pool, file_id)
        fill = tree.leaf_capacity
        # Fill the (already written, empty) root leaf first, then chain.
        leaves: List[Tuple[int, float]] = []  # (page_no, first_key)
        node = _Node(is_leaf=True)
        page_no = tree._root
        last_key: Optional[float] = None
        for key, value in items:
            if last_key is not None and key < last_key:
                raise StorageError("bulk_build requires keys in sorted order")
            last_key = key
            if len(node.keys) == fill:
                fresh = _Node(is_leaf=True)
                node.next = tree._reserve()
                tree._write_at(page_no, node)
                leaves.append((page_no, node.keys[0]))
                page_no, node = node.next, fresh
            node.keys.append(key)
            node.values.append(value)
        tree._write_at(page_no, node)
        if node.keys or not leaves:
            leaves.append((page_no, node.keys[0] if node.keys else 0.0))
        tree._build_internal_levels(leaves)
        return tree

    def _build_internal_levels(self, level: List[Tuple[int, float]]) -> None:
        """Bottom-up parent construction; updates the meta root pointer."""
        fan_out = self.internal_capacity + 1
        while len(level) > 1:
            parents: List[Tuple[int, float]] = []
            for start in range(0, len(level), fan_out):
                group = level[start:start + fan_out]
                if len(group) == 1 and parents:
                    # Avoid a one-child parent: fold into the previous
                    # group by stealing its last child (the previous
                    # parent stays in the level, one child lighter).
                    prev_no = parents[-1][0]
                    prev = self._read_node(prev_no)
                    group = [
                        (prev.children.pop(), prev.keys.pop())
                    ] + group
                    self._write_at(prev_no, prev)
                node = _Node(is_leaf=False)
                node.children = [page_no for page_no, _ in group]
                node.keys = [first_key for _, first_key in group[1:]]
                parents.append((self._write_new(node), group[0][1]))
            level = parents
        self._set_root(level[0][0])

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def search_eq(self, key: float) -> List[int]:
        """All positions stored under exactly *key*."""
        return list(self._walk(key, key))

    def search_range(
        self,
        low: Optional[float] = None,
        high: Optional[float] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[int]:
        """Positions with ``low <= key <= high`` (bounds optional, open
        with ``include_* = False``)."""
        return list(self._walk(low, high, include_low, include_high))

    def items(self) -> Iterator[Tuple[float, int]]:
        """Every (key, position) pair in key order — the leaf chain."""
        page_no = self._leftmost_leaf()
        while page_no != NO_PAGE:
            node = self._read_node(page_no)
            yield from zip(node.keys, node.values)
            page_no = node.next

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def _walk(
        self,
        low: Optional[float],
        high: Optional[float],
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        if low is None:
            page_no = self._leftmost_leaf()
        else:
            page_no = self._descend_left(low)
        while page_no != NO_PAGE:
            node = self._read_node(page_no)
            for key, value in zip(node.keys, node.values):
                if low is not None:
                    if key < low or (not include_low and key == low):
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                yield value
            page_no = node.next

    def _leftmost_leaf(self) -> int:
        page_no = self._root
        node = self._read_node(page_no)
        while not node.is_leaf:
            page_no = node.children[0]
            node = self._read_node(page_no)
        return page_no

    def _descend_left(self, key: float) -> int:
        """Leaf page that could contain the first occurrence of *key*."""
        page_no = self._root
        node = self._read_node(page_no)
        while not node.is_leaf:
            page_no = node.children[bisect_left(node.keys, key)]
            node = self._read_node(page_no)
        return page_no

    # ------------------------------------------------------------------
    # Incremental insert
    # ------------------------------------------------------------------
    def insert(self, key: float, value: int) -> None:
        """Insert one pair, splitting full nodes bottom-up."""
        path: List[Tuple[int, int]] = []  # (page_no, child index taken)
        page_no = self._root
        node = self._read_node(page_no)
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            path.append((page_no, index))
            page_no = node.children[index]
            node = self._read_node(page_no)

        at = bisect_right(node.keys, key)
        node.keys.insert(at, key)
        node.values.insert(at, value)
        if len(node.keys) <= self.leaf_capacity:
            self._write_at(page_no, node)
            return

        # Split the leaf; then propagate while parents overflow.
        promoted, right_no = self._split_leaf(page_no, node)
        while path:
            parent_no, index = path.pop()
            parent = self._read_node(parent_no)
            parent.keys.insert(index, promoted)
            parent.children.insert(index + 1, right_no)
            if len(parent.keys) <= self.internal_capacity:
                self._write_at(parent_no, parent)
                return
            promoted, right_no = self._split_internal(parent_no, parent)

        # Whatever just split with an empty path was the old root.
        root = _Node(is_leaf=False)
        root.keys = [promoted]
        root.children = [self._root, right_no]
        self._set_root(self._write_new(root))

    def _split_leaf(self, page_no: int, node: _Node) -> Tuple[float, int]:
        half = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys, node.keys = node.keys[half:], node.keys[:half]
        right.values, node.values = node.values[half:], node.values[:half]
        right.next, node.next = node.next, self._reserve()
        right_no = node.next
        self._write_at(right_no, right)
        self._write_at(page_no, node)
        return right.keys[0], right_no

    def _split_internal(self, page_no: int, node: _Node) -> Tuple[float, int]:
        half = len(node.keys) // 2
        promoted = node.keys[half]
        right = _Node(is_leaf=False)
        right.keys = node.keys[half + 1:]
        right.children = node.children[half + 1:]
        node.keys = node.keys[:half]
        node.children = node.children[:half + 1]
        right_no = self._write_new(right)
        self._write_at(page_no, node)
        return promoted, right_no

    # ------------------------------------------------------------------
    # Node / meta I/O (all page access funnels through the pool)
    # ------------------------------------------------------------------
    def _read_meta(self) -> int:
        frame = self.pool.pin(self.file_id, 0)
        try:
            magic, root = _META.unpack_from(frame.data, 0)
        finally:
            self.pool.unpin(frame)
        if magic != _MAGIC:
            raise StorageError(
                f"{self.file_id}: bad B+-tree magic {magic!r}"
            )
        return root

    def _set_root(self, page_no: int) -> None:
        self._root = page_no
        frame = self.pool.pin(self.file_id, 0)
        try:
            _META.pack_into(frame.data, 0, _MAGIC, page_no)
        finally:
            self.pool.unpin(frame, dirty=True)

    def _reserve(self) -> int:
        """Allocate a page now, to be filled by a later :meth:`_write_at`."""
        frame = self.pool.new_page(self.file_id)
        page_no = frame.page_no
        self.pool.unpin(frame, dirty=True)
        return page_no

    def _read_node(self, page_no: int) -> _Node:
        frame = self.pool.pin(self.file_id, page_no)
        try:
            data = frame.data
            kind, count, nxt = _NODE_HEADER.unpack_from(data, 0)
            node = _Node(is_leaf=(kind == _LEAF))
            offset = _NODE_HEADER.size
            node.keys = [
                _KEY.unpack_from(data, offset + i * _KEY.size)[0]
                for i in range(count)
            ]
            offset += count * _KEY.size
            if node.is_leaf:
                node.next = nxt
                node.values = [
                    _PTR.unpack_from(data, offset + i * _PTR.size)[0]
                    for i in range(count)
                ]
            else:
                node.children = [
                    _PTR.unpack_from(data, offset + i * _PTR.size)[0]
                    for i in range(count + 1)
                ]
        finally:
            self.pool.unpin(frame)
        return node

    def _encode(self, node: _Node, data: bytearray) -> None:
        data[:] = bytes(len(data))
        kind = _LEAF if node.is_leaf else _INTERNAL
        _NODE_HEADER.pack_into(data, 0, kind, len(node.keys), node.next)
        offset = _NODE_HEADER.size
        for key in node.keys:
            _KEY.pack_into(data, offset, key)
            offset += _KEY.size
        pointers = node.values if node.is_leaf else node.children
        for pointer in pointers:
            _PTR.pack_into(data, offset, pointer)
            offset += _PTR.size

    def _write_at(self, page_no: int, node: _Node) -> None:
        frame = self.pool.pin(self.file_id, page_no)
        try:
            self._encode(node, frame.data)
        finally:
            self.pool.unpin(frame, dirty=True)

    def _write_new(self, node: _Node) -> int:
        frame = self.pool.new_page(self.file_id)
        try:
            self._encode(node, frame.data)
        finally:
            page_no = frame.page_no
            self.pool.unpin(frame, dirty=True)
        return page_no

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BPlusTree({self.file_id!r}, root={self._root})"
