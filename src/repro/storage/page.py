"""The slotted-page record layout.

Every heap page is::

    [n_slots: u16][free_end: u16]  [slot 0][slot 1]...        ...records
    header (4 bytes)               slot array grows ->   <- records grow

Each slot is ``[offset: u16][length: u16]``.  Records are stored from the
end of the page backwards; the slot array grows forwards from the
header; the gap between them is the free space.  Records are immutable
once inserted (the engine's tables are append-only), so there is no
compaction or tombstone logic — a page is full when the next record plus
its slot no longer fits.

:class:`SlottedPage` is a view over a ``bytearray`` (typically a buffer
pool frame's data): mutations write straight into the underlying buffer.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.errors import StorageError

__all__ = ["PAGE_HEADER_SIZE", "SLOT_SIZE", "SlottedPage"]

PAGE_HEADER_SIZE = 4
SLOT_SIZE = 4
_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")


class SlottedPage:
    """A slotted-page view over one page-sized ``bytearray``."""

    __slots__ = ("data",)

    def __init__(self, data: bytearray) -> None:
        self.data = data

    @classmethod
    def initialize(cls, data: bytearray) -> "SlottedPage":
        """Format a blank page in place (0 slots, all space free)."""
        page = cls(data)
        _HEADER.pack_into(data, 0, 0, len(data))
        return page

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_end(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    @property
    def free_space(self) -> int:
        return self.free_end - PAGE_HEADER_SIZE - self.slot_count * SLOT_SIZE

    @staticmethod
    def capacity_for(record_size: int, page_size: int) -> int:
        """How many records of *record_size* fit on one blank page."""
        return max(
            0, (page_size - PAGE_HEADER_SIZE) // (record_size + SLOT_SIZE)
        )

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> Optional[int]:
        """Append a record; returns its slot index, or None if it does
        not fit on this page."""
        if len(record) > len(self.data) - PAGE_HEADER_SIZE - SLOT_SIZE:
            raise StorageError(
                f"record of {len(record)} bytes cannot fit any "
                f"{len(self.data)}-byte page"
            )
        if len(record) + SLOT_SIZE > self.free_space:
            return None
        n_slots, free_end = _HEADER.unpack_from(self.data, 0)
        offset = free_end - len(record)
        self.data[offset:free_end] = record
        _SLOT.pack_into(
            self.data, PAGE_HEADER_SIZE + n_slots * SLOT_SIZE, offset, len(record)
        )
        _HEADER.pack_into(self.data, 0, n_slots + 1, offset)
        return n_slots

    def record(self, slot: int) -> bytes:
        if not (0 <= slot < self.slot_count):
            raise StorageError(
                f"slot {slot} out of range (page has {self.slot_count})"
            )
        offset, length = _SLOT.unpack_from(
            self.data, PAGE_HEADER_SIZE + slot * SLOT_SIZE
        )
        return bytes(self.data[offset:offset + length])

    def records(self) -> Iterator[bytes]:
        for slot in range(self.slot_count):
            yield self.record(slot)

    def __len__(self) -> int:
        return self.slot_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlottedPage(slots={self.slot_count}, free={self.free_space})"
