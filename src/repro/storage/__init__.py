"""Disk-based storage engine (see ``docs/STORAGE.md``).

The paper's evaluation datasets fit in RAM; the ROADMAP's north star does
not.  This package is the storage tier that closes the gap: tables live
in slotted-page **heap files**, every page access goes through a
fixed-capacity **LRU buffer pool** (pin/unpin, dirty write-back,
hit/miss/eviction counters), and three secondary index families answer
the access paths :class:`~repro.relational.plan.CompiledPlan` pushes
down:

* :class:`~repro.storage.bptree.BPlusTree` — numeric point and range
  probes (the ``NumericIndex`` seam);
* :class:`~repro.storage.hashindex.HashFile` — text equality (the
  ``HashIndex`` seam);
* :class:`~repro.storage.spimi.SpimiIndex` — keyword ``contains``
  matching via block-sorted postings spilled and k-way merged, SPIMI
  style (the ``InvertedIndex`` seam).

:func:`~repro.storage.materialize.materialize` lays a whole
:class:`~repro.relational.database.Database` out as a directory of these
files (manifest written last, atomically, so half-written directories
are detected and rebuilt), and :class:`~repro.storage.engine.StorageEngine`
opens one for execution.  The registered ``disk`` backend
(:class:`~repro.backends.disk.DiskBackend`) is the public face.

This package is the only place in the repo allowed to touch file-I/O
primitives — binary ``open``, ``mmap``, the ``os.pwrite`` family (lint
rule LR008).
"""

from repro.storage.bptree import BPlusTree
from repro.storage.engine import StorageEngine
from repro.storage.hashindex import HashFile
from repro.storage.heap import HeapFile
from repro.storage.materialize import (
    MANIFEST_FILE,
    load_manifest,
    materialize,
    materialization_is_fresh,
)
from repro.storage.page import SlottedPage
from repro.storage.pager import DEFAULT_PAGE_SIZE, BufferPool, Pager
from repro.storage.spimi import SpimiBuilder, SpimiIndex

__all__ = [
    "BPlusTree",
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "HashFile",
    "HeapFile",
    "MANIFEST_FILE",
    "Pager",
    "SlottedPage",
    "SpimiBuilder",
    "SpimiIndex",
    "StorageEngine",
    "load_manifest",
    "materialization_is_fresh",
    "materialize",
]
