"""The semantic keyword-search engine (Algorithm 2).

:class:`KeywordSearchEngine` ties everything together: it classifies the
database as normalized or unnormalized (via the declared functional
dependencies), builds the ORM schema graph — over the stored schema or over
the normalized 3NF view — matches query terms, generates, disambiguates and
ranks annotated query patterns, translates the top-k into SQL (rewriting
fragment joins for unnormalized databases), and can execute the SQL against
the in-memory database.

Typical use::

    engine = KeywordSearchEngine(db)
    result = engine.search("COUNT Lecturer GROUPBY Course")
    best = result.best
    print(best.sql)          # the generated SQL text
    print(best.rows())       # executed answer rows
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.backends.base import Backend, create_backend
from repro.backends.memory import MemoryBackend
from repro.cancellation import current_token
from repro.analysis.pattern_analyzers import analyze_interpretation_set
from repro.analysis.pipeline import TranslationParts, analyze_compilation
from repro.analysis.plan_analyzers import analyze_plan
from repro.analysis.sql_analyzers import analyze_dialect
from repro.errors import KeywordQueryError, StaticAnalysisError
from repro.keywords.matcher import Catalog, NormalizedCatalog, TermMatcher
from repro.keywords.query import KeywordQuery
from repro.observability import NULL_TRACER, MetricsRegistry, Trace, Tracer
from repro.patterns.disambiguator import disambiguate_all
from repro.patterns.generator import PatternGenerator
from repro.patterns.pattern import QueryPattern
from repro.patterns.ranker import rank_patterns
from repro.patterns.translator import (
    NormalizedSourceProvider,
    PatternTranslator,
)
from repro.relational.database import Database
from repro.relational.executor import Executor, QueryResult
from repro.sql.ast import Select
from repro.sql.render import render, render_pretty
from repro.unnormalized.provider import UnnormalizedSourceProvider
from repro.unnormalized.rewriter import rewrite
from repro.unnormalized.view import (
    FdSpec,
    NameHints,
    NormalizedView,
    ViewCatalog,
    database_is_normalized,
)


@dataclass
class Interpretation:
    """One interpretation of a keyword query: an annotated pattern, its SQL
    and a human-readable description."""

    rank: int
    pattern: QueryPattern
    select: Select
    description: str
    # Executor or Backend — both expose execute(select, tracer=...)
    _executor: Executor = field(repr=False, compare=False, default=None)  # type: ignore[assignment]
    _result: Optional[QueryResult] = field(default=None, repr=False, compare=False)
    _tracer: object = field(default=None, repr=False, compare=False)
    # static-analysis artifacts: populated by analyze()/strict searches
    diagnostics: List[Diagnostic] = field(
        default_factory=list, repr=False, compare=False
    )
    _parts: Optional[TranslationParts] = field(
        default=None, repr=False, compare=False
    )
    # serving-layer concurrency: single-flight deduplication hands the same
    # Interpretation to several waiting requests, so first execution is
    # serialized (double-checked) instead of racing
    _execute_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def sql(self) -> str:
        return render_pretty(self.select)

    @property
    def sql_compact(self) -> str:
        return render(self.select)

    @property
    def distinguishes(self) -> bool:
        return self.pattern.distinguishes

    def execute(self) -> QueryResult:
        """Run the SQL (cached).  When the interpretation came from a
        traced ``search()``, execution spans attach to the same trace."""
        if self._result is None:
            with self._execute_lock:
                if self._result is None:
                    self._result = self._executor.execute(
                        self.select, tracer=self._tracer or NULL_TRACER
                    )
        return self._result

    def rows(self) -> List[Tuple]:
        return self.execute().rows


@dataclass
class SearchResult:
    """Ranked interpretations of one keyword query.

    ``trace`` is populated by ``search(..., trace=True)``: the span tree
    of the pipeline run (see ``docs/OBSERVABILITY.md``).  Executing an
    interpretation afterwards appends ``execute`` spans to it.
    """

    query: KeywordQuery
    interpretations: List[Interpretation]
    trace: Optional[Trace] = None

    @property
    def best(self) -> Interpretation:
        return self.interpretations[0]

    def __len__(self) -> int:
        return len(self.interpretations)

    def __iter__(self):
        return iter(self.interpretations)

    def find(self, distinguishes: Optional[bool] = None) -> Optional[Interpretation]:
        """First interpretation matching the filter (rank order)."""
        for interpretation in self.interpretations:
            if distinguishes is not None and interpretation.distinguishes != distinguishes:
                continue
            return interpretation
        return None


class KeywordSearchEngine:
    """Semantic keyword search with aggregates and GROUPBY."""

    def __init__(
        self,
        database: Database,
        fds: Optional[FdSpec] = None,
        name_hints: Optional[NameHints] = None,
        top_k: int = 10,
        max_patterns: int = 32,
        dedup_relationships: bool = True,
        disambiguate: bool = True,
        rewrite_sql: bool = True,
        check_fds: bool = False,
        compile_plans: bool = True,
        use_hash_joins: bool = True,
        optimizer: str = "cost",
        strict: bool = False,
        backend: str = "memory",
        backend_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.database = database
        self.top_k = top_k
        # strict mode: statically analyze every compiled interpretation and
        # refuse to return one with error-severity diagnostics
        self.strict = strict
        self.compile_plans = compile_plans
        # cross-query metrics sink; traced searches report into it too
        self.metrics = MetricsRegistry()
        # ablation knobs (see DESIGN.md section 5)
        self.dedup_relationships = dedup_relationships
        self.disambiguate = disambiguate
        self.rewrite_sql = rewrite_sql
        # plan-choice policy: "cost" = statistics-driven join reordering
        # and access-path selection (repro.planner); "off" = the greedy
        # pre-planner heuristics, kept as the ablation baseline
        self.optimizer_mode = optimizer
        self.executor = Executor(
            database,
            use_hash_joins=use_hash_joins,
            compile_plans=compile_plans,
            optimizer=optimizer,
        )
        # execution backends, keyed by name.  The memory backend wraps the
        # engine's own executor (sharing its plan cache); others — e.g.
        # "sqlite" — materialize the database on first use and are cached
        # for the engine's lifetime.  ``backend`` picks the default used
        # by search()/compile(); per-call overrides go through
        # search(..., backend=...).
        self._backends: Dict[str, Backend] = {
            "memory": MemoryBackend(executor=self.executor)
        }
        self._backend_lock = threading.Lock()
        self._backend_options = dict(backend_options or {})
        self.backend = self.get_backend(backend)
        self.is_normalized = database_is_normalized(database, fds)
        self.view: Optional[NormalizedView] = None
        if self.is_normalized:
            self.catalog: Catalog = NormalizedCatalog(database)
        else:
            self.view = NormalizedView.build(
                database, fds, name_hints, check_fds=check_fds
            )
            self.catalog = ViewCatalog(self.view)
        self.graph = self.catalog.graph
        self.generator = PatternGenerator(self.catalog, max_patterns=max_patterns)
        # compile cache: query text -> ranked patterns, true LRU (a hit
        # refreshes the entry; eviction drops the least recently used).
        # Patterns are immutable after ranking, and translation copies
        # nothing the caller may mutate, so caching per query text is safe.
        # The lock makes cache bookkeeping safe under search_many().
        self._pattern_cache: "OrderedDict[str, List[QueryPattern]]" = OrderedDict()
        self._pattern_cache_lock = threading.Lock()
        self.cache_size = 128
        # caches registered against this engine (the serving layer's TTL
        # result cache): clear_cache() resets them too, so a
        # Database.data_version bump can never serve stale responses
        self._invalidation_hooks: List[Callable[[], None]] = []

    def register_invalidation_hook(self, hook: Callable[[], None]) -> None:
        """Call *hook* whenever :meth:`clear_cache` runs.

        The serving layer registers its result-cache invalidation here so
        dropping the engine caches (after mutating the underlying data)
        also drops any cached service responses derived from them.
        """
        self._invalidation_hooks.append(hook)

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def get_backend(self, name: Optional[str] = None, tracer=NULL_TRACER) -> Backend:
        """The execution backend registered as *name* (default: the
        engine's configured backend), created and loaded on first use.

        *tracer* observes first-use setup (the backend's ``materialize``
        span), so ``--explain`` attributes backend setup time."""
        if name is None:
            configured: Optional[Backend] = getattr(self, "backend", None)
            if configured is not None:
                return configured
            name = "memory"
        with self._backend_lock:
            backend = self._backends.get(name)
            if backend is None:
                options = dict(self._backend_options)
                if name == "disk":
                    # the disk executor costs plans with disk-calibrated
                    # coefficients; the ablation flag flows through too
                    options.setdefault("optimizer", self.optimizer_mode)
                elif name == "sqlite" and self.optimizer_mode != "off":
                    # statistics-driven secondary indexes on top of the
                    # foreign-key ones the backend always creates
                    options.setdefault("index_hints", "auto")
                backend = create_backend(
                    name, self.database, tracer=tracer, **options
                )
                self._backends[name] = backend
            return backend

    def available_backends(self) -> List[str]:
        from repro.backends.base import available_backends

        return available_backends()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def parse(self, query_text: str) -> KeywordQuery:
        return KeywordQuery(query_text)

    def patterns(self, query_text: str, tracer=NULL_TRACER) -> List[QueryPattern]:
        """Ranked, disambiguated query patterns for a query (cached).

        A traced run bypasses the cache read (the spans must reflect a
        real pipeline run, not a dictionary lookup) but still refreshes
        the cached entry.
        """
        with self._pattern_cache_lock:
            cached = self._pattern_cache.get(query_text)
            if cached is not None and not tracer.enabled:
                self._pattern_cache.move_to_end(query_text)
                self.metrics.increment("pattern_cache_hits")
                return cached
        if cached is not None:
            tracer.count("pattern_cache_bypassed")
        else:
            self.metrics.increment("pattern_cache_misses")
        # deadline checkpoint before the generate/disambiguate/rank stages
        # (the executor has its own; see repro.cancellation)
        current_token().check()
        query = self.parse(query_text)
        with tracer.span("match"):
            matcher = TermMatcher(self.catalog)
            tags = matcher.match_query(query, tracer=tracer)
        with tracer.span("generate"):
            generated = self.generator.generate(query, tags, tracer=tracer)
        if self.disambiguate:
            with tracer.span("disambiguate"):
                generated = disambiguate_all(generated, self.catalog, tracer=tracer)
        with tracer.span("rank"):
            ranked = rank_patterns(generated, tracer=tracer)
        with self._pattern_cache_lock:
            self._pattern_cache[query_text] = ranked
            self._pattern_cache.move_to_end(query_text)
            while len(self._pattern_cache) > self.cache_size:
                self._pattern_cache.popitem(last=False)
        return ranked

    def clear_cache(self) -> None:
        """Drop cached patterns, compiled plans and registered downstream
        caches (after mutating the underlying data)."""
        with self._pattern_cache_lock:
            self._pattern_cache.clear()
        self.executor.clear_plan_cache()
        for hook in self._invalidation_hooks:
            hook()

    def compile(
        self,
        query_text: str,
        k: Optional[int] = None,
        tracer=NULL_TRACER,
        backend: Optional[str] = None,
    ) -> List[Interpretation]:
        """Generate SQL for the top-k interpretations of a query.

        *backend* selects the execution backend the interpretations will
        run on (default: the engine's configured backend; the plan cache
        is shared either way for analysis/EXPLAIN purposes).
        """
        executor = self.get_backend(backend, tracer=tracer)
        ranked = self.patterns(query_text, tracer=tracer)[: (k or self.top_k)]
        interpretations: List[Interpretation] = []
        token = current_token()
        with tracer.span("translate"):
            for rank, pattern in enumerate(ranked, start=1):
                token.check()
                parts = self.translate_parts(pattern, tracer=tracer)
                interpretations.append(
                    Interpretation(
                        rank=rank,
                        pattern=pattern,
                        select=parts.final,
                        description=describe_pattern(pattern),
                        _executor=executor,
                        _tracer=tracer if tracer.enabled else None,
                        _parts=parts,
                    )
                )
        return interpretations

    def translate(self, pattern: QueryPattern, tracer=NULL_TRACER) -> Select:
        """Translate one pattern to SQL (with rewriting when unnormalized)."""
        return self.translate_parts(pattern, tracer=tracer).final

    def translate_parts(
        self, pattern: QueryPattern, tracer=NULL_TRACER
    ) -> TranslationParts:
        """Translate one pattern, keeping the pre-rewrite statement and the
        fragment-use metadata the static analyzers need."""
        if self.is_normalized:
            translator = PatternTranslator(
                self.graph,
                NormalizedSourceProvider(),
                dedup_relationships=self.dedup_relationships,
            )
            select = translator.translate(pattern, tracer=tracer)
            return TranslationParts(raw=select, final=select)
        assert self.view is not None
        provider = UnnormalizedSourceProvider(self.view)
        translator = PatternTranslator(
            self.graph, provider, dedup_relationships=self.dedup_relationships
        )
        select = translator.translate(pattern, tracer=tracer)
        if not self.rewrite_sql:
            return TranslationParts(
                raw=select, final=select, fragment_uses=dict(provider.fragment_uses)
            )
        with tracer.span("rewrite"):
            rewritten = rewrite(
                select, provider.fragment_uses, self.database.schema, tracer=tracer
            )
        return TranslationParts(
            raw=select,
            final=rewritten,
            fragment_uses=dict(provider.fragment_uses),
        )

    def search(
        self,
        query_text: str,
        k: Optional[int] = None,
        trace: bool = False,
        strict: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> SearchResult:
        """Compile a query and return its ranked interpretations.

        With ``trace=True`` the run is instrumented: the returned
        :class:`SearchResult` carries a :class:`~repro.observability.Trace`
        span tree (parse/match/generate/disambiguate/rank/translate, plus
        execute spans as interpretations are executed), and all counters
        also flow into ``engine.metrics``.

        ``strict`` (default: the engine's ``strict`` setting) runs every
        static analyzer over the compiled interpretations and raises
        :class:`~repro.errors.StaticAnalysisError` when any error-severity
        diagnostic is found; warnings/infos are attached to each
        interpretation's ``diagnostics``.
        """
        effective_strict = self.strict if strict is None else strict
        tracer = Tracer(registry=self.metrics) if trace else NULL_TRACER
        with tracer.span("search", query=query_text):
            with tracer.span("parse"):
                query = self.parse(query_text)
            interpretations = self.compile(
                query_text, k, tracer=tracer, backend=backend
            )
            tracer.count("interpretations", len(interpretations))
            if effective_strict:
                report = self._analyze_compiled(
                    query_text, interpretations, tracer=tracer
                )
                if report.has_errors:
                    raise StaticAnalysisError(
                        f"strict search rejected {query_text!r}: "
                        + "; ".join(str(d) for d in report.errors),
                        diagnostics=report.errors,
                    )
        return SearchResult(
            query=query,
            interpretations=interpretations,
            trace=tracer.trace,
        )

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def analyze(
        self, query_text: str, k: Optional[int] = None, tracer=NULL_TRACER
    ) -> AnalysisReport:
        """Statically analyze the top-k interpretations of a query.

        Compiles (without executing) and runs all analyzer families —
        pattern, translation, SQL/type, rewrite postconditions and, when
        plan compilation is on, physical-plan soundness.  The per-
        interpretation findings are also attached to each interpretation's
        ``diagnostics`` list.
        """
        interpretations = self.compile(query_text, k, tracer=tracer)
        return self._analyze_compiled(query_text, interpretations, tracer=tracer)

    def analyze_stats(self, tracer=NULL_TRACER) -> Dict[str, Any]:
        """Collect (or serve cached) planner statistics for every table.

        Returns ``{relation: TableProfile}`` — sampled NDV, null
        fractions, min/max, equi-height histograms and MCV lists (see
        ``docs/PLANNER.md``).  Profiles live in the executor's optimizer
        catalog, so collecting them here warms the cost-based planner;
        they are invalidated by :attr:`Database.data_version` and by
        :meth:`clear_cache`.  CLI entry point: ``python -m repro stats``.
        """
        return self.executor.statistics(tracer)

    def _analyze_compiled(
        self,
        query_text: str,
        interpretations: List[Interpretation],
        tracer=NULL_TRACER,
    ) -> AnalysisReport:
        report = AnalysisReport()
        with tracer.span("analyze"):
            # set-level: the disambiguation check needs the full ranked set,
            # not the top-k truncation (cache makes this a lookup)
            ranked = self.patterns(query_text, tracer=NULL_TRACER)
            report.extend(
                analyze_interpretation_set(ranked)
                if self.disambiguate
                else []
            )
            for interpretation in interpretations:
                parts = interpretation._parts
                if parts is None:
                    parts = self.translate_parts(interpretation.pattern)
                location = f"interpretation #{interpretation.rank}"
                findings = analyze_compilation(
                    interpretation.pattern,
                    parts,
                    self.graph,
                    self.database.schema,
                    dedup_enabled=self.dedup_relationships,
                    location=location,
                )
                findings.extend(
                    analyze_dialect(parts.final, self.backend.dialect, location)
                )
                if self.compile_plans:
                    plan = self.executor.plan_for(parts.final, tracer)
                    findings.extend(analyze_plan(plan, location))
                interpretation.diagnostics = findings
                report.extend(findings)
            tracer.count("diagnostics", len(report))
            tracer.count(
                "diagnostics_errors",
                sum(1 for d in report if d.severity is Severity.ERROR),
            )
        return report

    def search_many(
        self,
        query_texts: Sequence[str],
        k: Optional[int] = None,
        parallel: int = 4,
        trace: bool = False,
    ) -> List[SearchResult]:
        """Batch :meth:`search`, one :class:`SearchResult` per input query.

        Duplicate query texts are compiled once and share the same result
        object; distinct queries run on a thread pool of *parallel* workers
        (the pattern and plan caches are lock-protected, so workers warm
        them for each other).  Results come back in input order.
        """
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        unique = list(dict.fromkeys(query_texts))
        self.metrics.increment("batch_searches")
        self.metrics.increment("batch_queries", len(query_texts))
        self.metrics.increment("batch_deduped", len(query_texts) - len(unique))
        if parallel == 1 or len(unique) <= 1:
            by_text = {text: self.search(text, k, trace=trace) for text in unique}
        else:
            with ThreadPoolExecutor(max_workers=parallel) as pool:
                results = pool.map(lambda text: self.search(text, k, trace=trace), unique)
                by_text = dict(zip(unique, results))
        return [by_text[text] for text in query_texts]

    def execute(self, query_text: str, backend: Optional[str] = None) -> QueryResult:
        """Execute the top-ranked interpretation."""
        return self.search(query_text, k=1, backend=backend).best.execute()


def describe_pattern(pattern: QueryPattern) -> str:
    """Human-readable summary of a query pattern's interpretation."""
    parts: List[str] = []
    for node in pattern.nodes:
        fragments: List[str] = []
        for aggregate in node.aggregates:
            text = f"{aggregate.func}({node.orm_node}.{aggregate.attribute})"
            for func in reversed(aggregate.outer_chain):
                text = f"{func}({text})"
            fragments.append(f"find {text}")
        for condition in node.conditions:
            fragments.append(
                f"where {node.orm_node}.{condition.attribute} contains "
                f"'{condition.phrase}'"
            )
        for groupby in node.groupbys:
            if groupby.from_disambiguation:
                fragments.append(
                    f"for each distinct {node.orm_node} "
                    f"(by {', '.join(groupby.attributes)})"
                )
            else:
                fragments.append(
                    f"grouped by {node.orm_node}.{', '.join(groupby.attributes)}"
                )
        if fragments:
            parts.append("; ".join(fragments))
    joined = " / ".join(parts) if parts else "retrieve matching objects"
    route = " - ".join(
        dict.fromkeys(node.orm_node for node in pattern.nodes)
    )
    return f"{joined} [via {route}]"
