"""TTL result cache with single-flight deduplication.

The service caches finished response payloads by
``(dataset, engine, mode, query, k)``.  Two properties matter under
concurrency:

* **TTL + LRU** — an entry is served only while fresh
  (``ttl_s`` seconds) and the cache holds at most ``size`` entries,
  evicting the least recently used.
* **Single-flight** — when several identical requests arrive while the
  answer is being computed, exactly one (the *leader*) computes; the
  rest (*followers*) block on the leader's flight and share its result,
  so a thundering herd of the same query costs one engine run.  A
  follower whose deadline expires while waiting gives up with
  :class:`~repro.errors.DeadlineExceededError` without disturbing the
  leader.

Every lookup reports one of three outcomes — ``"hit"``, ``"miss"``
(leader) or ``"coalesced"`` (follower) — which the service turns into
the ``result_cache_hits`` / ``result_cache_misses`` /
``singleflight_coalesced`` counters; the three add up to the number of
admitted requests that reached the cache, which is what makes the
``/metrics`` reconciliation in ``docs/SERVING.md`` possible.

The clock is injectable (monotonic by default) so tests can expire
entries deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.errors import DeadlineExceededError

__all__ = ["PlanArtifactCache", "ResultCache"]


class _Flight:
    """One in-progress computation other requests may wait on."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class ResultCache:
    """Bounded TTL cache with single-flight deduplication."""

    def __init__(
        self,
        size: int = 256,
        ttl_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if ttl_s < 0:
            raise ValueError(f"ttl_s must be >= 0, got {ttl_s}")
        self.size = size
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (expires_at, value), LRU order (most recent last)
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()  # guarded-by: _lock
        self._flights: Dict[Hashable, _Flight] = {}  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        timeout: Optional[float] = None,
        observe: Optional[Callable[[str], None]] = None,
    ) -> Tuple[Any, str]:
        """The cached value for *key*, computing on miss.

        Returns ``(value, outcome)`` with outcome ``"hit"``, ``"miss"``
        or ``"coalesced"``.  *timeout* bounds how long a follower waits
        for the leader (seconds; None waits indefinitely) — on expiry it
        raises :class:`DeadlineExceededError`.  A leader's exception
        propagates to the leader and every follower of that flight, and
        is never cached.

        *observe*, when given, is called with the outcome as soon as the
        request's role is decided — **before** the compute or the wait,
        so the outcome is reported even when they fail.  That ordering
        is what makes the service's ``admitted = hits + misses +
        coalesced`` reconciliation exact.
        """
        epoch = 0
        with self._lock:
            cached = self._fresh_entry(key)
            if cached is not None:
                outcome = "hit"
            else:
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    outcome = "miss"
                    # epoch guard: a value computed before an invalidation
                    # must not be stored after it (it may reflect
                    # pre-mutation data)
                    epoch = self._invalidations
                else:
                    flight.followers += 1
                    outcome = "coalesced"
        if observe is not None:
            observe(outcome)
        if outcome == "hit":
            return cached[1], "hit"
        if outcome == "coalesced":
            return self._wait(key, flight, timeout), "coalesced"
        try:
            value = compute()
        except BaseException as exc:
            with self._lock:
                self._flights.pop(key, None)
            flight.error = exc
            flight.done.set()
            raise
        with self._lock:
            self._flights.pop(key, None)
            if self.ttl_s > 0 and self._invalidations == epoch:
                self._store(key, value)
        flight.value = value
        flight.done.set()
        return value, "miss"

    def _wait(self, key: Hashable, flight: _Flight, timeout: Optional[float]) -> Any:
        if not flight.done.wait(timeout):
            raise DeadlineExceededError(
                f"timed out waiting for in-flight computation of {key!r}"
            )
        if flight.error is not None:
            raise flight.error
        return flight.value

    # ------------------------------------------------------------------
    # Bookkeeping (callers hold the lock)
    # ------------------------------------------------------------------
    def _fresh_entry(self, key: Hashable) -> Optional[Tuple[float, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._clock() >= entry[0]:
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry

    def _store(self, key: Hashable, value: Any) -> None:
        self._entries[key] = (self._clock() + self.ttl_s, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate(self, predicate: Optional[Callable[[Hashable], bool]] = None) -> int:
        """Drop every entry (or those whose key matches *predicate*).

        Returns the number of entries dropped.  In-flight computations
        still deliver their value to waiting followers, but the epoch
        guard in :meth:`get_or_compute` prevents a value computed before
        the invalidation from being *stored* after it.
        """
        with self._lock:
            if predicate is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [key for key in self._entries if predicate(key)]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self._invalidations += 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def invalidations(self) -> int:
        with self._lock:
            return self._invalidations


class PlanArtifactCache:
    """Shared compile-tier cache: rendered interpretation fragments.

    In multi-process serving (``repro/service/pool.py``) the compile tier
    — keyword → ranked patterns → translated SQL — produces a small,
    JSON-shaped *artifact* (the ``interpretations`` fragment of a response).
    The front end keeps those artifacts here, keyed like the result cache
    (``(dataset, engine, mode, query, k, backend)``), and ships them with
    dispatches so **any** worker can reuse a compilation performed by any
    other worker — the cross-process plan sharing the two-tier split is
    for.  Unlike :class:`ResultCache` there is no TTL: a fragment is pure
    function of (schema, query, k) and only invalidation epochs — bumped
    by ``engine.clear_cache()`` — can stale it.

    ``put`` is epoch-guarded the same way ``ResultCache`` stores are: a
    fragment compiled before an invalidation must not be stored after it.
    """

    def __init__(self, size: int = 256) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._invalidations = 0

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            fragment = self._entries.get(key)
            if fragment is not None:
                self._entries.move_to_end(key)
            return fragment

    def put(self, key: Hashable, fragment: Any, epoch: int) -> bool:
        """Store *fragment* unless an invalidation happened after *epoch*
        (the epoch observed when its compilation began)."""
        with self._lock:
            if epoch != self._invalidations:
                return False
            self._entries[key] = fragment
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)
            return True

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._invalidations

    def invalidate(self, predicate: Optional[Callable[[Hashable], bool]] = None) -> int:
        with self._lock:
            if predicate is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [key for key in self._entries if predicate(key)]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self._invalidations += 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
