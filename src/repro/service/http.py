"""Stdlib-only HTTP front end for the query service.

A thin translation layer: URLs and query strings in,
:class:`~repro.service.service.ServiceRequest` through the service,
canonical JSON out with the status code the response's lifecycle outcome
dictates (200 ok, 400 invalid, 404 unknown dataset/route, 429 shed,
503 breaker open, 504 deadline exceeded).

Endpoints (all ``GET``, parameters as query strings):

``/search?q=...&dataset=...&engine=semantic|sqak&k=3&deadline_ms=500&backend=memory|sqlite``
    Run a keyword query; returns interpretations plus the executed rows
    of the best one (``backend`` picks the execution backend; default
    ``memory``).
``/analyze?q=...&dataset=...&k=3``
    Static-analysis diagnostics for the top-k interpretations.
``/healthz``
    Liveness plus queue depth and per-dataset breaker states.
``/metrics``
    The full counter/timing snapshot (service, engines, breakers, cache;
    in pool mode also the per-worker breakdown under ``workers``).
``/workers``
    Just the worker-pool breakdown (404 when ``worker_processes=0``).

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, all of them funnelling into the service's bounded queue, so
overload protection lives in one place (the service), not in the HTTP
layer.  No third-party dependencies.

Shutdown is graceful: request threads are daemons (an exiting
interpreter never hangs on a stuck client), but they are *tracked*, and
:meth:`ServiceHTTPServer.stop` drains them — stop accepting, give
in-flight requests a bounded grace to finish writing their responses,
then close the listener.  ``python -m repro serve`` runs ``stop`` before
``QueryService.stop`` so a Ctrl-C during a burst answers the accepted
requests instead of severing their sockets mid-body.
"""

from __future__ import annotations

import itertools
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.service import QueryService, ServiceRequest, canonical_json

__all__ = ["ServiceHTTPServer", "make_server"]

_MAX_WAIT_SLACK_S = 30.0


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the owning server's service."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        params = parse_qs(parsed.query)
        if route == "/healthz":
            self._send(200, self.server.service.health())
        elif route == "/metrics":
            self._send(200, self.server.service.metrics_snapshot())
        elif route == "/workers":
            workers = self.server.service.metrics_snapshot().get("workers")
            if workers is None:
                self._send(404, {"error": "no worker pool configured"})
            else:
                self._send(200, workers)
        elif route in ("/search", "/analyze"):
            self._serve_query(route, params)
        else:
            self._send(404, {"error": f"unknown route {route!r}"})

    def _serve_query(self, route: str, params: dict) -> None:
        request, error = self._build_request(route, params)
        if request is None:
            self._send(400, {"error": error})
            return
        # wait a little past the request's own deadline: the service
        # resolves timeouts itself, the slack only guards a stuck worker
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.server.service.config.default_deadline_s
        )
        wait = (
            deadline_s + _MAX_WAIT_SLACK_S
            if deadline_s is not None
            else None
        )
        try:
            response = self.server.service.serve(request, timeout=wait)
        except TimeoutError:
            self._send_bytes(
                504, canonical_json({"error": "request still in flight"})
            )
            return
        self._send_bytes(response.http_status, response.body())

    def _build_request(
        self, route: str, params: dict
    ) -> Tuple[Optional[ServiceRequest], str]:
        query = (params.get("q") or params.get("query") or [""])[0]
        if not query.strip():
            return None, "missing required parameter 'q'"
        dataset = (params.get("dataset") or [None])[0]
        engine = (params.get("engine") or ["semantic"])[0]
        backend = (params.get("backend") or ["memory"])[0]
        k_raw = (params.get("k") or [None])[0]
        deadline_raw = (params.get("deadline_ms") or [None])[0]
        try:
            k = int(k_raw) if k_raw is not None else None
        except ValueError:
            return None, f"parameter 'k' must be an integer, got {k_raw!r}"
        deadline_s: Optional[float] = None
        if deadline_raw is not None:
            try:
                deadline_s = float(deadline_raw) / 1000.0
            except ValueError:
                return None, (
                    "parameter 'deadline_ms' must be a number, got "
                    f"{deadline_raw!r}"
                )
        return (
            ServiceRequest(
                query=query,
                dataset=dataset,
                engine=engine,
                mode="analyze" if route == "/analyze" else "search",
                k=k,
                deadline_s=deadline_s,
                backend=backend,
            ),
            "",
        )

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    def _send(self, status: int, payload: dict) -> None:
        self._send_bytes(status, canonical_json(payload))

    def _send_bytes(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # route HTTP access logs through the service's counters instead
        # of stderr chatter
        self.server.service.metrics.increment("http_requests")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`QueryService`.

    Request threads are daemons, so a crashed client can never hang
    interpreter shutdown — but unlike stock ``ThreadingMixIn`` daemon
    mode they are tracked, which is what makes :meth:`stop` able to
    drain them within a grace budget instead of abandoning sockets with
    half-written responses.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: QueryService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self._serve_thread: Optional[threading.Thread] = None
        self._requests_lock = threading.Lock()
        self._request_threads: List[threading.Thread] = []  # guarded-by: _requests_lock
        self._request_ids = itertools.count(1)

    def process_request(self, request, client_address) -> None:
        """One named, tracked daemon thread per connection."""
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            name=f"repro-http-request-{next(self._request_ids)}",
            daemon=True,
        )
        with self._requests_lock:
            self._request_threads = [
                tracked
                for tracked in self._request_threads
                if tracked.is_alive()
            ]
            self._request_threads.append(thread)
        thread.start()

    def serve_background(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a named daemon thread."""
        thread = threading.Thread(
            target=self.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        thread.start()
        self._serve_thread = thread
        return thread

    def stop(self, grace_s: float = 5.0) -> List[str]:
        """Graceful shutdown: drain in-flight requests, close the listener.

        Stops the accept loop first (no new connections), then joins
        every tracked request thread within *grace_s*, then closes the
        listening socket.  Returns the names of any threads still alive
        after the grace budget — stragglers are abandoned (they are
        daemons), never killed mid-write while the budget lasts.
        """
        deadline = time.monotonic() + max(0.0, grace_s)
        self.shutdown()  # blocks until serve_forever() exits its loop
        serve_thread = self._serve_thread
        if serve_thread is not None and serve_thread.is_alive():
            serve_thread.join(max(0.05, deadline - time.monotonic()))
        with self._requests_lock:
            in_flight = list(self._request_threads)
        for thread in in_flight:
            if thread.is_alive():
                thread.join(max(0.0, deadline - time.monotonic()))
        self.server_close()
        return [thread.name for thread in in_flight if thread.is_alive()]


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind an HTTP server for *service* (``port=0`` picks a free port)."""
    return ServiceHTTPServer((host, port), service)
