"""``python -m repro serve`` — run the query service over HTTP.

Builds the requested built-in datasets (semantic engine plus SQAK
baseline each), wraps them in a :class:`~repro.service.service.QueryService`
and serves them with the stdlib HTTP front end::

    python -m repro serve --port 8080
    python -m repro serve --port 8080 --datasets university,tpch
    python -m repro serve --port 0 --workers 8 --queue-limit 32

``--port 0`` binds a free port (printed on startup), which is what the
smoke script and the CI job use.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.service.config import ServiceConfig
from repro.service.http import make_server
from repro.service.service import QueryService

__all__ = ["build_service", "build_worker_factory", "run_serve"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve keyword search over HTTP (stdlib only)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 binds a free port"
    )
    parser.add_argument(
        "--datasets",
        default="university",
        help="comma-separated built-in datasets to serve (default: university)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=0,
        help="engine-owning worker processes (0: serve in-process)",
    )
    parser.add_argument(
        "--route-by",
        choices=["query", "dataset"],
        default="query",
        help="consistent-hash routing key for the worker pool",
    )
    parser.add_argument(
        "--worker-context",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: fork where available)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=5000.0,
        help="default per-request deadline; 0 disables",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=30.0,
        help="result-cache TTL in seconds; 0 disables caching",
    )
    parser.add_argument(
        "--k", type=int, default=3, help="default interpretations per query"
    )
    return parser


def _build_runtimes(dataset_names: Tuple[str, ...]) -> Dict[str, Tuple[Any, Any]]:
    """Materialize the built-in *dataset_names* as ``{name: (engine, sqak)}``.

    Module-level so :func:`build_worker_factory` can wrap it in a
    picklable ``functools.partial`` — the shape spawn-mode worker pools
    need (a spawned child re-runs this, building its own engines)."""
    from repro.baselines import SqakEngine
    from repro.cli import load_dataset
    from repro.engine import KeywordSearchEngine

    runtimes: Dict[str, Tuple[Any, Any]] = {}
    for name in dataset_names:
        database, fds, name_hints, extra_joins = load_dataset(name)
        engine = KeywordSearchEngine(
            database, fds=fds or None, name_hints=name_hints or None
        )
        sqak = SqakEngine(database, extra_joins=extra_joins)
        runtimes[name] = (engine, sqak)
    return runtimes


def build_worker_factory(
    dataset_names: List[str],
) -> Callable[[], Mapping[str, Tuple[Any, Any]]]:
    """A picklable worker factory over the built-in *dataset_names*.

    Pass this as ``QueryService(..., worker_factory=...)`` when running a
    worker pool under the ``spawn`` start method (fork-less platforms):
    engines cannot be pickled, so each spawned worker rebuilds them."""
    return functools.partial(_build_runtimes, tuple(dataset_names))


def build_service(
    dataset_names: List[str],
    config: ServiceConfig,
) -> QueryService:
    """A service with one semantic engine + SQAK baseline per dataset."""
    worker_factory = None
    if config.worker_processes > 0:
        from repro.service.pool import default_start_method

        # fork-mode pools inherit the parent's engines copy-on-write (no
        # factory needed); spawn-mode pools rebuild from this picklable one
        if (config.worker_context or default_start_method()) != "fork":
            worker_factory = build_worker_factory(dataset_names)
    service = QueryService(config, worker_factory=worker_factory)
    for name, runtime in _build_runtimes(tuple(dataset_names)).items():
        service.register_dataset(name, runtime[0], sqak=runtime[1])
    return service


def run_serve(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_serve_parser().parse_args(argv)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]
    if not names:
        print("error: no datasets requested", file=out)
        return 2
    config = ServiceConfig(
        max_workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
        ),
        default_k=args.k,
        cache_ttl_s=args.cache_ttl,
        worker_processes=args.worker_processes,
        worker_context=args.worker_context,
        route_by=args.route_by,
    )
    print(f"loading datasets: {', '.join(names)}", file=out)
    service = build_service(names, config)
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    with service:
        pool_note = (
            f", {config.worker_processes} worker processes"
            if config.worker_processes > 0
            else ""
        )
        print(
            f"serving on http://{host}:{port} "
            f"({config.max_workers} workers, queue {config.queue_limit}"
            f"{pool_note})",
            file=out,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=out)
        finally:
            # drain in-flight requests before the service (and its pool)
            # stops: accepted requests get their responses, new
            # connections are refused
            stragglers = server.stop(grace_s=config.shutdown_grace_s)
            for name in stragglers:
                print(f"abandoning stuck request thread {name}", file=out)
    return 0
