"""``python -m repro serve`` — run the query service over HTTP.

Builds the requested built-in datasets (semantic engine plus SQAK
baseline each), wraps them in a :class:`~repro.service.service.QueryService`
and serves them with the stdlib HTTP front end::

    python -m repro serve --port 8080
    python -m repro serve --port 8080 --datasets university,tpch
    python -m repro serve --port 0 --workers 8 --queue-limit 32

``--port 0`` binds a free port (printed on startup), which is what the
smoke script and the CI job use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.service.config import ServiceConfig
from repro.service.http import make_server
from repro.service.service import QueryService

__all__ = ["build_service", "run_serve"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve keyword search over HTTP (stdlib only)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 binds a free port"
    )
    parser.add_argument(
        "--datasets",
        default="university",
        help="comma-separated built-in datasets to serve (default: university)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=16)
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=5000.0,
        help="default per-request deadline; 0 disables",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=30.0,
        help="result-cache TTL in seconds; 0 disables caching",
    )
    parser.add_argument(
        "--k", type=int, default=3, help="default interpretations per query"
    )
    return parser


def build_service(dataset_names: List[str], config: ServiceConfig) -> QueryService:
    """A service with one semantic engine + SQAK baseline per dataset."""
    from repro.baselines import SqakEngine
    from repro.cli import load_dataset
    from repro.engine import KeywordSearchEngine

    service = QueryService(config)
    for name in dataset_names:
        database, fds, name_hints, extra_joins = load_dataset(name)
        engine = KeywordSearchEngine(
            database, fds=fds or None, name_hints=name_hints or None
        )
        sqak = SqakEngine(database, extra_joins=extra_joins)
        service.register_dataset(name, engine, sqak=sqak)
    return service


def run_serve(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_serve_parser().parse_args(argv)
    names = [name.strip() for name in args.datasets.split(",") if name.strip()]
    if not names:
        print("error: no datasets requested", file=out)
        return 2
    config = ServiceConfig(
        max_workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
        ),
        default_k=args.k,
        cache_ttl_s=args.cache_ttl,
    )
    print(f"loading datasets: {', '.join(names)}", file=out)
    service = build_service(names, config)
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    with service:
        print(
            f"serving on http://{host}:{port} "
            f"({config.max_workers} workers, queue {config.queue_limit})",
            file=out,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", file=out)
        finally:
            server.server_close()
    return 0
