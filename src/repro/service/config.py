"""Serving-layer configuration.

One frozen dataclass holds every knob of the query service; defaults are
sized for the in-memory evaluation datasets (small queries, worker counts
in the single digits).  ``docs/SERVING.md`` documents each knob and the
degradation ladder they control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for :class:`~repro.service.service.QueryService`.

    Admission control
        ``max_workers`` threads drain a bounded queue of at most
        ``queue_limit`` waiting requests; a submit against a full queue
        is shed immediately (HTTP 429), never blocked.

    Deadlines
        ``default_deadline_s`` applies to requests that do not carry
        their own; ``None`` disables the default (requests may still opt
        in per call).

    Result cache
        ``cache_size`` entries, each fresh for ``cache_ttl_s`` seconds,
        keyed by ``(dataset, engine, mode, query, k)`` with single-flight
        deduplication.  ``cache_ttl_s=0`` disables caching but keeps the
        single-flight behaviour.

    Circuit breaker (per dataset)
        ``breaker_failure_threshold`` consecutive failures open the
        breaker for ``breaker_reset_s`` seconds; each failed half-open
        probe multiplies the wait by ``breaker_backoff_factor`` up to
        ``breaker_max_reset_s``.

    Graceful degradation
        once the queue depth reaches ``degrade_queue_depth`` (default:
        half the queue limit, at least 1), requests are served in top-1
        interpretation mode regardless of their requested ``k``.
    """

    max_workers: int = 4
    queue_limit: int = 16
    default_deadline_s: Optional[float] = 5.0
    default_k: int = 3
    cache_ttl_s: float = 30.0
    cache_size: int = 256
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 1.0
    breaker_backoff_factor: float = 2.0
    breaker_max_reset_s: float = 30.0
    degrade_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.default_k < 1:
            raise ValueError(f"default_k must be >= 1, got {self.default_k}")
        if self.cache_ttl_s < 0:
            raise ValueError(f"cache_ttl_s must be >= 0, got {self.cache_ttl_s}")
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ValueError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.breaker_backoff_factor < 1.0:
            raise ValueError(
                "breaker_backoff_factor must be >= 1.0, got "
                f"{self.breaker_backoff_factor}"
            )
        if (
            self.degrade_queue_depth is not None
            and self.degrade_queue_depth < 1
        ):
            raise ValueError(
                "degrade_queue_depth must be >= 1 (or None for auto), got "
                f"{self.degrade_queue_depth}"
            )

    @property
    def effective_degrade_depth(self) -> int:
        """The queue depth at which degradation kicks in."""
        if self.degrade_queue_depth is not None:
            return self.degrade_queue_depth
        return max(1, self.queue_limit // 2)
