"""Serving-layer configuration.

One frozen dataclass holds every knob of the query service; defaults are
sized for the in-memory evaluation datasets (small queries, worker counts
in the single digits).  ``docs/SERVING.md`` documents each knob and the
degradation ladder they control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for :class:`~repro.service.service.QueryService`.

    Admission control
        ``max_workers`` threads drain a bounded queue of at most
        ``queue_limit`` waiting requests; a submit against a full queue
        is shed immediately (HTTP 429), never blocked.

    Deadlines
        ``default_deadline_s`` applies to requests that do not carry
        their own; ``None`` disables the default (requests may still opt
        in per call).

    Result cache
        ``cache_size`` entries, each fresh for ``cache_ttl_s`` seconds,
        keyed by ``(dataset, engine, mode, query, k)`` with single-flight
        deduplication.  ``cache_ttl_s=0`` disables caching but keeps the
        single-flight behaviour.

    Circuit breaker (per dataset)
        ``breaker_failure_threshold`` consecutive failures open the
        breaker for ``breaker_reset_s`` seconds; each failed half-open
        probe multiplies the wait by ``breaker_backoff_factor`` up to
        ``breaker_max_reset_s``.

    Graceful degradation
        once the queue depth reaches ``degrade_queue_depth`` (default:
        half the queue limit, at least 1), requests are served in top-1
        interpretation mode regardless of their requested ``k``.

    Process worker tier (``docs/SERVING.md`` § scale-out)
        ``worker_processes`` engine-owning worker *processes* behind the
        thread tier (0 — the default — serves in-process exactly as
        before).  ``worker_context`` picks the multiprocessing start
        method (``None``: fork where available, else spawn);
        ``route_by`` is the consistent-hash routing key (``"query"``:
        ``(dataset, query)`` so queries spread across workers with sticky
        caches; ``"dataset"``: strict per-dataset worker ownership).
        ``worker_grace_s`` is the slack past a request's deadline before
        a wedged worker is killed and respawned; ``worker_memo_size``
        bounds each worker's compile-tier memo; ``plan_cache_size``
        bounds the shared cross-process compile-artifact cache; and
        ``shutdown_grace_s`` bounds how long :meth:`QueryService.stop`
        waits for threads and processes before escalating.
    """

    max_workers: int = 4
    queue_limit: int = 16
    default_deadline_s: Optional[float] = 5.0
    default_k: int = 3
    cache_ttl_s: float = 30.0
    cache_size: int = 256
    breaker_failure_threshold: int = 5
    breaker_reset_s: float = 1.0
    breaker_backoff_factor: float = 2.0
    breaker_max_reset_s: float = 30.0
    degrade_queue_depth: Optional[int] = None
    worker_processes: int = 0
    worker_context: Optional[str] = None
    route_by: str = "query"
    worker_grace_s: float = 2.0
    worker_memo_size: int = 256
    plan_cache_size: int = 256
    shutdown_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.default_k < 1:
            raise ValueError(f"default_k must be >= 1, got {self.default_k}")
        if self.cache_ttl_s < 0:
            raise ValueError(f"cache_ttl_s must be >= 0, got {self.cache_ttl_s}")
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ValueError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.breaker_backoff_factor < 1.0:
            raise ValueError(
                "breaker_backoff_factor must be >= 1.0, got "
                f"{self.breaker_backoff_factor}"
            )
        if (
            self.degrade_queue_depth is not None
            and self.degrade_queue_depth < 1
        ):
            raise ValueError(
                "degrade_queue_depth must be >= 1 (or None for auto), got "
                f"{self.degrade_queue_depth}"
            )
        if self.worker_processes < 0:
            raise ValueError(
                f"worker_processes must be >= 0, got {self.worker_processes}"
            )
        if self.worker_context not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "worker_context must be None, 'fork', 'spawn' or "
                f"'forkserver', got {self.worker_context!r}"
            )
        if self.route_by not in ("query", "dataset"):
            raise ValueError(
                f"route_by must be 'query' or 'dataset', got {self.route_by!r}"
            )
        if self.worker_grace_s <= 0:
            raise ValueError(
                f"worker_grace_s must be > 0, got {self.worker_grace_s}"
            )
        if self.worker_memo_size < 1:
            raise ValueError(
                f"worker_memo_size must be >= 1, got {self.worker_memo_size}"
            )
        if self.plan_cache_size < 1:
            raise ValueError(
                f"plan_cache_size must be >= 1, got {self.plan_cache_size}"
            )
        if self.shutdown_grace_s <= 0:
            raise ValueError(
                f"shutdown_grace_s must be > 0, got {self.shutdown_grace_s}"
            )

    @property
    def effective_degrade_depth(self) -> int:
        """The queue depth at which degradation kicks in."""
        if self.degrade_queue_depth is not None:
            return self.degrade_queue_depth
        return max(1, self.queue_limit // 2)
