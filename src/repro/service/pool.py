"""Multi-process worker tier: per-process engines behind a pipe protocol.

The GIL caps a :class:`~repro.service.service.QueryService` at one core no
matter how many worker *threads* drain its queue — the pipeline (keyword →
patterns → SQL → execution) is pure-Python CPU work.  This module breaks
that ceiling the way EdgeDB's server does: a pool of dedicated worker
**processes**, each owning a full :class:`~repro.engine.KeywordSearchEngine`
per dataset, with the front end multiplexing requests onto them over
:mod:`multiprocessing` pipes (see ``repro/service/proto.py`` for the wire
and error contract).

Division of labour — the **two-tier split**:

* the **compile tier** (keyword → ranked patterns → translated SQL) is
  pure CPU and highly cacheable.  Each worker keeps an LRU *compile memo*
  (query → compiled interpretations), and the front end keeps a shared
  cross-process artifact cache of the rendered-SQL fragments; a request
  whose fragment is already known ships the artifact along, and the
  worker compiles only the best interpretation (``k=1``) instead of all
  ``k`` — the truncation ``ranked[:k]`` makes the best interpretation
  invariant over ``k``, so the spliced payload is byte-identical.
* the **execute tier** (physical plan over the data) always runs fresh in
  the worker that owns the route key.

Routing is consistent hashing (stable MD5 ring, virtual nodes) over the
dataset — or ``(dataset, query)`` in ``route_by="query"`` mode — so each
worker owns a *hot* pattern/plan/memo cache instead of N cold copies.

Lifecycle: fork-or-spawn aware (fork inherits the parent's already-built
engines copy-on-write; spawn rebuilds from a picklable factory), crash
detection with in-place respawn and a single retry for idempotent ops,
per-dataset invalidation *epochs* carried on every request so
``engine.clear_cache()`` in the front end propagates to every worker —
including ones respawned after the invalidation — and a deterministic
:meth:`WorkerPool.stop` that never leaks processes.

This is the only module in the repository allowed to import
:mod:`multiprocessing` (lint rule LR007).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import signal
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cancellation import CancellationToken, cancellation_scope
from repro.errors import DeadlineExceededError
from repro.service import proto

__all__ = ["WorkerPool", "WorkerFactory"]

#: Builds the engines a worker serves: ``{dataset: (engine, sqak_or_None)}``.
#: Under the fork start method this may be a closure over live engines (the
#: child inherits them copy-on-write); under spawn it must be picklable
#: (e.g. ``functools.partial`` of a module-level builder).
WorkerFactory = Callable[[], Mapping[str, Tuple[Any, Any]]]

_VNODES = 64  # virtual nodes per worker on the hash ring
_BOOT_TIMEOUT_S = 60.0  # readiness ping after (re)spawn
_DISPATCH_GRACE_S = 2.0  # slack past the deadline before a worker is killed


def default_start_method() -> str:
    """The start method a pool picks when none is configured."""
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


def _stable_hash(key: Any) -> int:
    """A process-stable 64-bit hash (builtin ``hash`` is salted per run)."""
    digest = hashlib.md5(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ======================================================================
# Worker side (runs in the child process)
# ======================================================================
class _CompileMemo:
    """Per-worker LRU of compiled interpretation lists (the compile tier).

    Keyed ``(dataset, query, k, backend)``.  Entries are dropped whenever
    the owning dataset's invalidation epoch moves — compiled plans close
    over data structures that ``clear_cache()`` declares stale."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._entries: "OrderedDict[Tuple, List[Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def compile(self, engine: Any, dataset: str, query: str, k: int, backend: str):
        key = (dataset, query, k, backend)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        interpretations = engine.compile(query, k, backend=backend)
        self._entries[key] = interpretations
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)
        return interpretations

    def invalidate(self, dataset: Optional[str]) -> None:
        if dataset is None:
            self._entries.clear()
            return
        for key in [k for k in self._entries if k[0] == dataset]:
            del self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)


class _WorkerState:
    """Everything one worker process owns."""

    def __init__(self, worker_id: int, factory: WorkerFactory, memo_size: int):
        self.worker_id = worker_id
        self.runtimes = dict(factory())
        self.memo = _CompileMemo(memo_size)
        self.epochs: Dict[str, int] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "compile_memo_hits": 0,
            "compile_memo_misses": 0,
            "artifact_fast_path": 0,
            "cache_clears": 0,
        }

    # -- epoch coherence ------------------------------------------------
    def sync_epoch(self, dataset: str, epoch: int) -> None:
        """Drop stale caches when the front end's epoch has moved past ours.

        A freshly (re)spawned worker adopts the current epoch without
        clearing: its engines were just built (spawn) or inherited from
        the post-invalidation parent (fork), so they are already current.
        """
        seen = self.epochs.get(dataset)
        if seen is None:
            self.epochs[dataset] = epoch
            return
        if epoch > seen:
            self.clear(dataset, epoch)

    def clear(self, dataset: Optional[str], epoch: Optional[int]) -> None:
        self.counters["cache_clears"] += 1
        names = [dataset] if dataset is not None else list(self.runtimes)
        for name in names:
            runtime = self.runtimes.get(name)
            if runtime is not None:
                # public API; any invalidation hooks fire on this process's
                # own (forked or rebuilt) copies, which is exactly right
                runtime[0].clear_cache()
            self.memo.invalidate(name)
            if epoch is not None:
                self.epochs[name] = epoch

    # -- ops ------------------------------------------------------------
    def handle(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        op = msg["op"]
        if op == proto.OP_PING:
            return proto.ok_reply({"worker": self.worker_id})
        if op == proto.OP_SHUTDOWN:
            return proto.ok_reply({"stopping": self.worker_id})
        if op == proto.OP_CLEAR:
            self.clear(msg.get("dataset"), msg.get("epoch"))
            return proto.ok_reply({"cleared": True})
        if op == proto.OP_METRICS:
            return proto.ok_reply(self._metrics())
        try:
            if op == proto.OP_SEARCH:
                return proto.ok_reply(self._search(msg))
            if op == proto.OP_SQAK:
                return proto.ok_reply(self._sqak(msg))
            if op == proto.OP_ANALYZE:
                return proto.ok_reply(self._analyze(msg))
        except BaseException as exc:  # classified for the wire
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return proto.error_reply(exc)
        return proto.error_reply(ValueError(f"unknown op {op!r}"))

    def _scope(self, msg: Dict[str, Any]) -> CancellationToken:
        deadline_s = msg.get("deadline_s")
        if deadline_s is not None:
            return CancellationToken.with_timeout(
                deadline_s, reason="request deadline"
            )
        return CancellationToken(reason="request")

    def _runtime(self, msg: Dict[str, Any]) -> Tuple[Any, Any, str]:
        dataset = msg["dataset"]
        runtime = self.runtimes.get(dataset)
        if runtime is None:
            raise KeyError(f"worker has no dataset {dataset!r}")
        self.sync_epoch(dataset, msg.get("epoch", 0))
        return runtime[0], runtime[1], dataset

    def _search(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        from repro.service.service import (
            assemble_semantic_payload,
            interpretations_fragment,
            semantic_search_payload,
        )

        engine, _, dataset = self._runtime(msg)
        self.counters["requests"] += 1
        query, k, backend = msg["query"], msg["k"], msg["backend"]
        artifact = msg.get("artifact")
        with cancellation_scope(self._scope(msg)):
            if artifact is not None and not engine.strict:
                # compile tier already ran elsewhere: compile only the
                # best interpretation (k=1 prefix of the same ranking)
                # and splice the shared fragment in.
                self.counters["artifact_fast_path"] += 1
                interps = self.memo.compile(engine, dataset, query, 1, backend)
                executed = interps[0].execute()
                payload = assemble_semantic_payload(
                    dataset, backend or engine.backend.name, query, k,
                    artifact, executed,
                )
                fragment = artifact
            elif engine.strict:
                # strict engines run the full analysis gate inside
                # search(); no memo (diagnostics are attached per run)
                payload = semantic_search_payload(
                    engine, dataset, query, k, backend=backend
                )
                fragment = payload["interpretations"]
            else:
                interps = self.memo.compile(engine, dataset, query, k, backend)
                executed = interps[0].execute()
                fragment = interpretations_fragment(interps)
                payload = assemble_semantic_payload(
                    dataset, backend or engine.backend.name, query, k,
                    fragment, executed,
                )
        self._sync_memo_counters()
        return {"payload": payload, "fragment": fragment}

    def _sqak(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        from repro.service.service import sqak_search_payload

        _, sqak, dataset = self._runtime(msg)
        self.counters["requests"] += 1
        if sqak is None:
            raise KeyError(f"worker has no SQAK baseline for {dataset!r}")
        with cancellation_scope(self._scope(msg)):
            payload = sqak_search_payload(sqak, dataset, msg["query"])
        return {"payload": payload}

    def _analyze(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        from repro.service.service import analyze_payload

        engine, _, dataset = self._runtime(msg)
        self.counters["requests"] += 1
        with cancellation_scope(self._scope(msg)):
            payload = analyze_payload(engine, dataset, msg["query"], msg["k"])
        return {"payload": payload}

    def _sync_memo_counters(self) -> None:
        self.counters["compile_memo_hits"] = self.memo.hits
        self.counters["compile_memo_misses"] = self.memo.misses

    def _metrics(self) -> Dict[str, Any]:
        self._sync_memo_counters()
        return {
            "counters": dict(self.counters),
            "memo_entries": len(self.memo),
            "epochs": dict(self.epochs),
            "engines": {
                name: runtime[0].metrics.snapshot()
                for name, runtime in self.runtimes.items()
                if getattr(runtime[0], "metrics", None) is not None
            },
        }


def _worker_main(
    worker_id: int, conn: Any, factory: WorkerFactory, memo_size: int
) -> None:
    """The child process loop: recv → handle → send, until shutdown."""
    # a terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the parent's job (OP_SHUTDOWN / closed pipe), so the
    # workers must not die mid-protocol with a KeyboardInterrupt
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state = _WorkerState(worker_id, factory, memo_size)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break  # parent went away (or a stray SIGINT won the race)
        reply = state.handle(msg)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        if msg.get("op") == proto.OP_SHUTDOWN:
            break
    conn.close()


# ======================================================================
# Parent side
# ======================================================================
class _Handle:
    """One worker process as the parent sees it."""

    __slots__ = ("worker_id", "process", "conn", "lock", "restarts")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process: Any = None
        self.conn: Any = None
        self.lock = threading.Lock()
        self.restarts = -1  # first spawn brings it to 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """N engine-owning worker processes behind consistent-hash routing."""

    def __init__(
        self,
        factory: WorkerFactory,
        workers: int,
        context: Optional[str] = None,
        route_by: str = "query",
        grace_s: float = _DISPATCH_GRACE_S,
        memo_size: int = 256,
        boot_timeout_s: float = _BOOT_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if route_by not in ("query", "dataset"):
            raise ValueError(f"route_by must be 'query' or 'dataset', got {route_by!r}")
        methods = multiprocessing.get_all_start_methods()
        if context is None:
            context = default_start_method()
        elif context not in methods:
            raise ValueError(
                f"start method {context!r} unavailable (have: {methods})"
            )
        self.context_name = context
        self.route_by = route_by
        self.grace_s = grace_s
        self.memo_size = memo_size
        self.boot_timeout_s = boot_timeout_s
        self._factory = factory
        self._ctx = multiprocessing.get_context(context)
        self._handles = [_Handle(index) for index in range(workers)]
        self._ring = self._build_ring(workers)
        self._started = False
        self._stopping = False
        self._lifecycle_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        self.counters: Dict[str, int] = {  # guarded-by: _counters_lock
            "dispatches": 0,
            "respawns": 0,
            "crash_retries": 0,
            "deadline_kills": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._handles)

    @property
    def running(self) -> bool:
        return self._started and not self._stopping

    def start(self) -> "WorkerPool":
        with self._lifecycle_lock:
            if self._started:
                return self
            self._stopping = False
            for handle in self._handles:
                self._spawn(handle)
            self._started = True
        # readiness barrier: a worker that cannot build its engines must
        # fail start(), not the first unlucky request
        for handle in self._handles:
            self._dispatch_to(
                handle, proto.request(proto.OP_PING), timeout=self.boot_timeout_s
            )
        return self

    def stop(self, grace_s: float = 5.0) -> None:
        """Deterministic shutdown: polite, then firm, never leaky."""
        with self._lifecycle_lock:
            if not self._started:
                return
            self._stopping = True
        deadline = time.monotonic() + grace_s
        for handle in self._handles:
            # a worker stuck in a long compute won't yield its lock; take
            # it if we can within the budget, then escalate regardless
            acquired = handle.lock.acquire(
                timeout=max(0.0, deadline - time.monotonic())
            )
            try:
                if handle.alive and handle.conn is not None and acquired:
                    try:
                        # lock-ok: C003 the handle lock exists to serialize
                        # this duplex pipe; the matching poll below is
                        # bounded by the shutdown grace deadline
                        handle.conn.send(proto.request(proto.OP_SHUTDOWN))
                        handle.conn.poll(max(0.0, deadline - time.monotonic()))
                    except (BrokenPipeError, OSError, EOFError):
                        pass
            finally:
                if acquired:
                    handle.lock.release()
            if handle.process is not None:
                handle.process.join(max(0.05, deadline - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(1.0)
                if handle.process.is_alive():  # pragma: no cover - last resort
                    handle.process.kill()
                    handle.process.join(1.0)
            if handle.conn is not None:
                handle.conn.close()
                # lock-ok: C001 a wedged worker never yields its lock;
                # dispatchers re-check handle.alive/_stopping under the
                # lock before touching the pipe, so clearing is safe here
                handle.conn = None
            # lock-ok: C001 same shutdown protocol as handle.conn above
            handle.process = None
        with self._lifecycle_lock:
            self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _spawn(self, handle: _Handle) -> None:
        """(Re)create a worker in place; its ring slots are unchanged."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(handle.worker_id, child_conn, self._factory, self.memo_size),
            name=f"repro-pool-worker-{handle.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        # lock-ok: C001 callers serialize handle publication: start()
        # runs before the pool is visible (under the lifecycle lock) and
        # _dispatch_to() respawns while holding handle.lock
        handle.process = process
        # lock-ok: C001 same single-writer protocol as handle.process
        handle.conn = parent_conn
        handle.restarts += 1
        if handle.restarts > 0:
            with self._counters_lock:
                self.counters["respawns"] += 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _build_ring(self, workers: int) -> List[Tuple[int, int]]:
        points = [
            (_stable_hash((worker, vnode)), worker)
            for worker in range(workers)
            for vnode in range(_VNODES)
        ]
        points.sort()
        return points

    def route(self, dataset: str, query: Optional[str] = None) -> int:
        """The worker that owns this key's hot caches."""
        key: Any = dataset
        if self.route_by == "query" and query is not None:
            key = (dataset, query)
        point = _stable_hash(key)
        index = bisect_right(self._ring, (point, len(self._handles)))
        if index >= len(self._ring):
            index = 0
        return self._ring[index][1]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self,
        op: str,
        dataset: str,
        query: Optional[str] = None,
        deadline_s: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Route one request, await its reply, surface failures faithfully.

        A crashed worker is respawned in place; idempotent ops are retried
        exactly once on the fresh worker, so the caller always receives
        exactly one response per dispatch.  A worker that overruns the
        request deadline plus the grace window is killed and the request
        resolves as a deadline failure — exactly what the in-process
        cancellation checkpoint would have produced.
        """
        if not self.running:
            raise proto.WorkerCrashError("worker pool is not running")
        handle = self._handles[self.route(dataset, query)]
        msg = proto.request(
            op, dataset=dataset, query=query, deadline_s=deadline_s, **fields
        )
        with self._counters_lock:
            self.counters["dispatches"] += 1
        timeout = None if deadline_s is None else deadline_s + self.grace_s
        try:
            reply = self._dispatch_to(handle, msg, timeout=timeout)
        except proto.WorkerCrashError:
            if self._stopping or op not in proto.IDEMPOTENT_OPS:
                raise
            with self._counters_lock:
                self.counters["crash_retries"] += 1
            reply = self._dispatch_to(handle, msg, timeout=timeout)
        if reply["status"] == "error":
            proto.raise_remote(reply["kind"], reply["message"])
        return reply["result"]

    def _dispatch_to(
        self, handle: _Handle, msg: Dict[str, Any], timeout: Optional[float]
    ) -> Dict[str, Any]:
        with handle.lock:
            if not handle.alive:
                if self._stopping:
                    raise proto.WorkerCrashError(
                        f"worker {handle.worker_id} unavailable during shutdown"
                    )
                self._spawn(handle)
            try:
                # lock-ok: C003 serializing this duplex pipe is the
                # handle lock's whole purpose (one in-flight request per
                # worker); writes are small and the peer always drains
                handle.conn.send(msg)
                if not handle.conn.poll(timeout):
                    # deadline + grace overrun: the worker is wedged (its
                    # own cancellation token should have tripped long ago)
                    self._kill(handle)
                    with self._counters_lock:
                        self.counters["deadline_kills"] += 1
                    raise DeadlineExceededError(
                        f"worker {handle.worker_id} overran the request "
                        f"deadline and was recycled"
                    )
                # lock-ok: C003 cannot block: only reached after
                # poll(timeout) reported a complete reply is buffered
                return handle.conn.recv()
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError) as exc:
                self._kill(handle)
                raise proto.WorkerCrashError(
                    f"worker {handle.worker_id} died mid-request "
                    f"({type(exc).__name__})"
                ) from exc

    def _kill(self, handle: _Handle) -> None:
        """Tear a broken worker down (caller holds the handle lock)."""
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(1.0)
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        handle.process = None

    # ------------------------------------------------------------------
    # Broadcast / metrics
    # ------------------------------------------------------------------
    def broadcast_clear(self, dataset: Optional[str], epoch: int) -> int:
        """Best-effort cache clear on every live worker (returns how many
        acknowledged).  Workers that miss it catch up through the epoch
        carried on their next request."""
        acked = 0
        for handle in self._handles:
            try:
                self._dispatch_to(
                    handle,
                    proto.request(proto.OP_CLEAR, dataset=dataset, epoch=epoch),
                    timeout=self.grace_s,
                )
                acked += 1
            except (proto.WorkerCrashError, DeadlineExceededError):
                continue
        return acked

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Per-worker counters/engine metrics plus pool-level counters."""
        workers: Dict[str, Any] = {}
        for handle in self._handles:
            entry: Dict[str, Any] = {"restarts": max(0, handle.restarts)}
            try:
                entry.update(
                    self._dispatch_to(
                        handle,
                        proto.request(proto.OP_METRICS),
                        timeout=self.grace_s,
                    )["result"]
                )
                entry["alive"] = True
            except (proto.WorkerCrashError, DeadlineExceededError):
                entry["alive"] = False
            workers[str(handle.worker_id)] = entry
        with self._counters_lock:
            pool_counters = dict(self.counters)
        return {
            "context": self.context_name,
            "route_by": self.route_by,
            "workers": workers,
            "pool": pool_counters,
        }

    def health(self) -> Dict[str, Any]:
        with self._counters_lock:
            respawns = self.counters["respawns"]
        return {
            "workers": self.workers,
            "alive": sum(1 for handle in self._handles if handle.alive),
            "context": self.context_name,
            "route_by": self.route_by,
            "respawns": respawns,
        }
