"""Wire protocol between the service front end and pool worker processes.

Messages are plain dicts exchanged over :class:`multiprocessing.Connection`
pipes (one request, one reply — the parent serializes per worker).  This
module owns the message vocabulary and, critically, the **error contract**:
an exception raised inside a worker must surface in the parent as the same
*class* of failure it would have been in-process, so the request lifecycle
(breaker accounting, HTTP status, retry-ability) is byte-identical whether
the engine ran on a thread or in another process.

Request frames::

    {"op": <op>, ...fields}

Reply frames::

    {"status": "ok", "result": {...}}          # success
    {"status": "error", "kind": k, "message": m}  # classified failure

The kinds map onto the exception taxonomy the service's ``_serve_pending``
dispatches on:

==============  =============================================  ============
kind            raised in the parent as                        HTTP outcome
==============  =============================================  ============
``deadline``    :class:`~repro.errors.DeadlineExceededError`   504 timeout
``invalid``     :class:`~repro.errors.KeywordQueryError`       400 invalid
``analysis``    :class:`~repro.errors.StaticAnalysisError`     400 invalid
``internal``    :class:`RemoteWorkerError`                     500 error
==============  =============================================  ============

``internal`` messages arrive pre-formatted (``"TypeName: detail"``) so the
parent's generic error path renders the *original* exception type, not the
envelope — :func:`format_error` is the one place that decides.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.errors import (
    DeadlineExceededError,
    KeywordQueryError,
    ReproError,
    ServiceError,
    StaticAnalysisError,
)

__all__ = [
    "OP_ANALYZE",
    "OP_CLEAR",
    "OP_METRICS",
    "OP_PING",
    "OP_SEARCH",
    "OP_SHUTDOWN",
    "OP_SQAK",
    "RemoteWorkerError",
    "WorkerCrashError",
    "classify_exception",
    "error_reply",
    "format_error",
    "ok_reply",
    "raise_remote",
    "request",
]

# ----------------------------------------------------------------------
# Operations
# ----------------------------------------------------------------------
OP_PING = "ping"  # liveness / readiness barrier
OP_SEARCH = "search"  # semantic search -> full response payload
OP_SQAK = "sqak"  # SQAK baseline search -> full response payload
OP_ANALYZE = "analyze"  # static analysis -> diagnostics payload
OP_CLEAR = "clear"  # drop engine caches + compile memo (epoch bump)
OP_METRICS = "metrics"  # worker-side counters + engine metric snapshots
OP_SHUTDOWN = "shutdown"  # clean exit of the worker loop

#: Ops that are pure reads and therefore safe to retry once on a fresh
#: worker after a crash (exactly-once responses, at-most-twice compute).
IDEMPOTENT_OPS = frozenset(
    {OP_PING, OP_SEARCH, OP_SQAK, OP_ANALYZE, OP_METRICS, OP_CLEAR}
)

KIND_DEADLINE = "deadline"
KIND_INVALID = "invalid"
KIND_ANALYSIS = "analysis"
KIND_INTERNAL = "internal"


class RemoteWorkerError(ReproError):
    """An unclassified exception escaped an engine inside a worker.

    ``str()`` is the worker-side formatted message (``"TypeName: detail"``)
    — render it with :func:`format_error`, never with the usual
    ``f"{type(exc).__name__}: {exc}"`` (that would double-wrap)."""


class WorkerCrashError(ServiceError):
    """A worker process died mid-request and the retry budget is spent."""


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def request(op: str, **fields: Any) -> Dict[str, Any]:
    frame = {"op": op}
    frame.update(fields)
    return frame


def ok_reply(result: Dict[str, Any]) -> Dict[str, Any]:
    return {"status": "ok", "result": result}


def error_reply(exc: BaseException) -> Dict[str, Any]:
    kind, message = classify_exception(exc)
    return {"status": "error", "kind": kind, "message": message}


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
def classify_exception(exc: BaseException) -> Tuple[str, str]:
    """(kind, message) for the wire; the inverse of :func:`raise_remote`."""
    if isinstance(exc, DeadlineExceededError):
        return KIND_DEADLINE, str(exc)
    if isinstance(exc, StaticAnalysisError):
        return KIND_ANALYSIS, str(exc)
    if isinstance(exc, KeywordQueryError):
        return KIND_INVALID, str(exc)
    return KIND_INTERNAL, f"{type(exc).__name__}: {exc}"


def raise_remote(kind: str, message: str) -> None:
    """Re-raise a worker failure as its in-process equivalent."""
    if kind == KIND_DEADLINE:
        raise DeadlineExceededError(message)
    if kind == KIND_ANALYSIS:
        raise StaticAnalysisError(message)
    if kind == KIND_INVALID:
        raise KeywordQueryError(message)
    raise RemoteWorkerError(message)


def format_error(exc: BaseException) -> str:
    """The user-facing message for an unclassified serving failure.

    Remote failures arrive pre-formatted by the worker; everything else
    gets the conventional ``TypeName: detail`` rendering."""
    if isinstance(exc, RemoteWorkerError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"
