"""The concurrent query service: request lifecycle around the engines.

One :class:`QueryService` wraps any number of datasets (each a semantic
:class:`~repro.engine.KeywordSearchEngine` plus an optional SQAK
baseline) behind a production-shaped request lifecycle:

``submit`` → **admission control** (bounded queue, load shedding) →
**queue wait** (deadline still ticking) → **gates** (deadline, circuit
breaker) → **result cache** (TTL + single-flight) → **engine** (under a
:func:`~repro.cancellation.cancellation_scope`) → **response**.

Every stage is observable: the service-level
:class:`~repro.observability.MetricsRegistry` carries the counters
documented in ``docs/SERVING.md`` (``requests_admitted``,
``requests_shed``, ``requests_timed_out``, ``result_cache_hits`` …), and
a request submitted with ``trace=True`` gets a span tree
(``admit`` / ``queue_wait`` / ``serve`` / ``breaker_transition``).

The counters reconcile by construction:

* ``requests_submitted = requests_enqueued + requests_shed +
  requests_rejected_breaker(at admission)``
* ``requests_admitted = result_cache_hits + result_cache_misses +
  singleflight_coalesced`` — *admitted* means the request passed every
  gate and reached the result cache.

Degradation ladder (in order of increasing pressure): full service →
top-1 interpretation mode (queue depth ≥ watermark) → load shedding
(queue full, HTTP 429) → circuit breaker (dataset failing, HTTP 503).
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cancellation import CancellationToken, cancellation_scope
from repro.errors import (
    DeadlineExceededError,
    KeywordQueryError,
    ServiceUnavailableError,
    StaticAnalysisError,
)
from repro.observability import NULL_TRACER, MetricsRegistry, Trace, Tracer
from repro.service import proto
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.cache import PlanArtifactCache, ResultCache
from repro.service.config import ServiceConfig

__all__ = [
    "QueryService",
    "ServiceRequest",
    "ServiceResponse",
    "assemble_semantic_payload",
    "canonical_json",
    "analyze_payload",
    "interpretations_fragment",
    "semantic_search_payload",
    "sqak_search_payload",
]

_STATUS_HTTP = {
    "ok": 200,
    "invalid": 400,
    "not_found": 404,
    "shed": 429,
    "error": 500,
    "unavailable": 503,
    "timeout": 504,
}


def canonical_json(payload: Dict[str, Any]) -> bytes:
    """The canonical wire encoding of a response payload.

    Sorted keys, no whitespace, UTF-8 — so two payloads are equal iff
    their bytes are equal (the equivalence contract the concurrency
    tests assert: a served response is byte-identical to a sequential
    ``engine.search`` of the same query and ``k``).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Payload builders (shared by the service and the equivalence tests)
# ----------------------------------------------------------------------
def interpretations_fragment(interpretations) -> List[Dict[str, Any]]:
    """The compile-tier half of a semantic response: each interpretation's
    rank, description and rendered SQL.  This is the *artifact* the shared
    cross-process plan cache stores and ships between pool workers."""
    return [
        {
            "rank": interpretation.rank,
            "description": interpretation.description,
            "sql": interpretation.sql_compact,
        }
        for interpretation in interpretations
    ]


def assemble_semantic_payload(
    dataset: str,
    backend_name: str,
    query: str,
    k: int,
    fragment: List[Dict[str, Any]],
    executed: Any,
) -> Dict[str, Any]:
    """Join the compile-tier *fragment* with the execute-tier result into
    the canonical semantic response payload."""
    return {
        "dataset": dataset,
        "engine": "semantic",
        "backend": backend_name,
        "query": query,
        "k": k,
        "interpretations": fragment,
        "best": {
            "columns": list(executed.columns),
            "rows": [list(row) for row in executed.rows],
        },
    }


def semantic_search_payload(
    engine: Any, dataset: str, query: str, k: int, backend: Optional[str] = None
) -> Dict[str, Any]:
    """The response payload for one semantic search: every interpretation's
    SQL plus the executed rows of the best one.

    *backend* selects the execution backend (``None``: the engine's
    configured default, normally ``"memory"``)."""
    result = engine.search(query, k=k, backend=backend)
    best = result.best
    executed = best.execute()
    return assemble_semantic_payload(
        dataset,
        backend or engine.backend.name,
        query,
        k,
        interpretations_fragment(result.interpretations),
        executed,
    )


def sqak_search_payload(sqak: Any, dataset: str, query: str) -> Dict[str, Any]:
    """The response payload for one SQAK baseline search."""
    statement = sqak.compile(query)
    executed = sqak.executor.execute(statement.select)
    return {
        "dataset": dataset,
        "engine": "sqak",
        "query": query,
        "sql": statement.sql,
        "best": {
            "columns": list(executed.columns),
            "rows": [list(row) for row in executed.rows],
        },
    }


def analyze_payload(engine: Any, dataset: str, query: str, k: int) -> Dict[str, Any]:
    """The response payload for ``/analyze``: the static-analysis report
    over the top-k interpretations."""
    report = engine.analyze(query, k=k)
    return {
        "dataset": dataset,
        "engine": "semantic",
        "query": query,
        "k": k,
        "diagnostics": [
            {
                "code": diagnostic.code,
                "severity": str(diagnostic.severity),
                "message": diagnostic.message,
                "location": diagnostic.location,
                "hint": diagnostic.hint,
            }
            for diagnostic in report
        ],
    }


# ----------------------------------------------------------------------
# Request / response
# ----------------------------------------------------------------------
@dataclass
class ServiceRequest:
    """One query to serve.

    ``dataset=None`` targets the service's default (first registered)
    dataset; ``k=None`` uses the config default; ``deadline_s=None``
    uses the config default deadline (which may itself be None — no
    deadline).  ``mode`` is ``"search"`` or ``"analyze"``; ``engine`` is
    ``"semantic"`` or ``"sqak"``.
    """

    query: str
    dataset: Optional[str] = None
    engine: str = "semantic"
    mode: str = "search"
    k: Optional[int] = None
    deadline_s: Optional[float] = None
    trace: bool = False
    # execution backend for semantic searches ("memory" or "sqlite");
    # the SQAK baseline always executes on the in-memory engine
    backend: str = "memory"


@dataclass
class ServiceResponse:
    """The outcome of one request, whatever the path it took."""

    status: str  # ok | invalid | not_found | shed | error | unavailable | timeout
    payload: Dict[str, Any]
    cache: str = "none"  # hit | miss | coalesced | none
    degraded: bool = False
    queue_wait_ms: float = 0.0
    serve_ms: float = 0.0
    trace: Optional[Trace] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def http_status(self) -> int:
        return _STATUS_HTTP[self.status]

    def body(self) -> bytes:
        """Canonical JSON body (see :func:`canonical_json`)."""
        return canonical_json(self.payload)


class _Pending:
    """A submitted request travelling through the lifecycle."""

    __slots__ = (
        "request",
        "runtime",
        "token",
        "tracer",
        "enqueued_at",
        "_done",
        "_response",
    )

    def __init__(self, request: ServiceRequest, runtime, token, tracer) -> None:
        self.request = request
        self.runtime = runtime
        self.token = token
        self.tracer = tracer
        self.enqueued_at = time.perf_counter()
        self._done = threading.Event()
        self._response: Optional[ServiceResponse] = None

    def resolve(self, response: ServiceResponse) -> None:
        if self._done.is_set():  # pragma: no cover - defensive
            return
        if response.trace is None and self.tracer is not NULL_TRACER:
            response.trace = self.tracer.trace
        self._response = response
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> ServiceResponse:
        if not self._done.wait(timeout):
            raise TimeoutError("request still in flight")
        assert self._response is not None
        return self._response


class _InheritedRuntimes:
    """The default pool worker factory: hand the forked child the parent's
    already-built engines (copy-on-write — no rebuild, no pickling)."""

    def __init__(self, runtimes: Dict[str, Tuple[Any, Any]]) -> None:
        self._runtimes = runtimes

    def __call__(self) -> Dict[str, Tuple[Any, Any]]:
        return self._runtimes


class _Runtime:
    """One registered dataset: engines plus its circuit breaker."""

    __slots__ = ("name", "engine", "sqak", "breaker")

    def __init__(self, name: str, engine, sqak, breaker: CircuitBreaker) -> None:
        self.name = name
        self.engine = engine
        self.sqak = sqak
        self.breaker = breaker


class QueryService:
    """Concurrent, overload-protected serving of keyword queries."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        worker_factory: Optional[Callable[[], Dict[str, Tuple[Any, Any]]]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._cache = ResultCache(
            size=self.config.cache_size,
            ttl_s=self.config.cache_ttl_s,
            clock=clock,
        )
        self._runtimes: Dict[str, _Runtime] = {}
        self._default_dataset: Optional[str] = None
        self._queue: "queue.Queue[_Pending]" = queue.Queue(
            maxsize=self.config.queue_limit
        )
        self._workers: List[threading.Thread] = []
        self._running = False  # guarded-by: _lifecycle_lock
        self._lifecycle_lock = threading.Lock()
        # ---- process worker tier (config.worker_processes > 0) ----
        # the pool serves the compute; every request still flows through
        # this (front-end) process, which is what makes self._cache a
        # genuinely *shared cross-process* result cache and keeps the
        # lifecycle semantics byte-identical to in-process serving
        # guarded-by: _lifecycle_lock
        self._pool = None  # repro.service.pool.WorkerPool, started lazily
        # spawn-mode pools rebuild engines from this; the fork default is
        # a closure over the registered runtimes (copy-on-write)
        self._worker_factory = worker_factory
        self._plan_cache = PlanArtifactCache(size=self.config.plan_cache_size)
        # per-dataset invalidation epochs, carried on every dispatch so
        # clear_cache() propagates to every worker (even respawned ones)
        self._epochs: Dict[str, int] = {}  # guarded-by: _epochs_lock
        self._epochs_lock = threading.Lock()
        # in-flight requests, so stop() can cancel their tokens after the
        # join grace instead of waiting unboundedly
        self._inflight: set = set()  # guarded-by: _inflight_lock
        self._inflight_lock = threading.Lock()
        # forked pool workers inherit this object (and, via engine
        # invalidation hooks, may call invalidate_dataset on their own
        # copies); only the owning process may talk to the pool's pipes
        self._owner_pid = os.getpid()

    # ------------------------------------------------------------------
    # Registration / lifecycle
    # ------------------------------------------------------------------
    def register_dataset(self, name: str, engine, sqak=None) -> None:
        """Serve *engine* (and optionally the *sqak* baseline) as *name*.

        The engine's cache-invalidation hook is wired so
        ``engine.clear_cache()`` also drops this dataset's cached
        service responses (stale-response protection across
        ``Database.data_version`` bumps).
        """
        if name in self._runtimes:
            raise ValueError(f"dataset {name!r} already registered")
        breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_s=self.config.breaker_reset_s,
            backoff_factor=self.config.breaker_backoff_factor,
            max_reset_s=self.config.breaker_max_reset_s,
            clock=self._clock,
        )
        self._runtimes[name] = _Runtime(name, engine, sqak, breaker)
        if self._default_dataset is None:
            self._default_dataset = name
        register = getattr(engine, "register_invalidation_hook", None)
        if register is not None:
            register(lambda: self.invalidate_dataset(name))

    def invalidate_dataset(self, name: str) -> int:
        """Drop every cached response for *name* (returns entries dropped).

        In pool mode this also bumps the dataset's invalidation epoch —
        carried on every subsequent dispatch, so each worker drops its own
        engine caches and compile memo before serving anything newer —
        and best-effort broadcasts the clear to all live workers."""
        dropped = self._cache.invalidate(lambda key: key[0] == name)
        self._plan_cache.invalidate(lambda key: key[0] == name)
        self.metrics.increment("result_cache_invalidations")
        with self._epochs_lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            epoch = self._epochs[name]
        pool = self._pool
        if pool is not None and pool.running and os.getpid() == self._owner_pid:
            pool.broadcast_clear(name, epoch)
        return dropped

    @property
    def datasets(self) -> List[str]:
        return list(self._runtimes)

    def start(self) -> "QueryService":
        with self._lifecycle_lock:
            if self._running:
                return self
            if not self._runtimes:
                raise RuntimeError("no datasets registered")
            if self.config.worker_processes > 0 and self._pool is None:
                # start the process tier *before* the thread tier: forked
                # children must not inherit mid-request thread state
                self._pool = self._build_pool().start()
            self._running = True
            for index in range(self.config.max_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        return self

    def _build_pool(self):
        from repro.service.pool import WorkerPool, default_start_method

        factory = self._worker_factory
        if factory is None:
            effective = self.config.worker_context or default_start_method()
            if effective != "fork":
                raise RuntimeError(
                    "worker_processes > 0 with a non-fork start method "
                    f"({effective!r}) needs an explicit picklable "
                    "worker_factory: engines cannot be pickled into spawned "
                    "workers (see repro.service.cli.build_worker_factory)"
                )
            # fork inherits these live engines copy-on-write; no rebuild
            runtimes = {
                name: (runtime.engine, runtime.sqak)
                for name, runtime in self._runtimes.items()
            }
            factory = _InheritedRuntimes(runtimes)
        return WorkerPool(
            factory,
            workers=self.config.worker_processes,
            context=self.config.worker_context,
            route_by=self.config.route_by,
            grace_s=self.config.worker_grace_s,
            memo_size=self.config.worker_memo_size,
        )

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work and shut down deterministically.

        Drain order: (1) join worker threads for a bounded grace period,
        (2) cancel the tokens of requests still in flight — cooperative
        cancellation aborts in-process engine work at its next checkpoint
        and pool dispatches at their poll — and join again, (3) resolve
        everything still queued with a clean ``unavailable``, (4) stop the
        process pool (polite shutdown, then terminate, then kill), so
        repeated bench runs and test teardowns never leak threads or
        processes."""
        grace = timeout if timeout is not None else self.config.shutdown_grace_s
        with self._lifecycle_lock:
            if not self._running:
                return
            self._running = False
            workers, self._workers = self._workers, []
        deadline = time.monotonic() + grace
        for worker in workers:
            worker.join(max(0.05, (deadline - time.monotonic()) / 2))
        stragglers = [worker for worker in workers if worker.is_alive()]
        if stragglers:
            with self._inflight_lock:
                inflight = list(self._inflight)
            for pending in inflight:
                pending.token.cancel("service stopping")
            for worker in stragglers:
                worker.join(max(0.05, deadline - time.monotonic()))
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending.token.cancel("service stopping")
            pending.resolve(
                ServiceResponse(
                    status="unavailable",
                    payload={"error": "service stopped"},
                )
            )
        # start() writes _pool under the lifecycle lock; take it for the
        # swap too so a concurrent restart cannot interleave with drain
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.stop(grace_s=grace)
        # killing the pool unblocks any thread that was mid-dispatch; give
        # those a final bounded join so stop() returns with nothing running
        for worker in workers:
            if worker.is_alive():
                worker.join(1.0)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload."""
        payload = {
            "status": "ok" if self._running else "stopped",
            "datasets": self.datasets,
            "workers": self.config.max_workers,
            "worker_processes": self.config.worker_processes,
            "queue_depth": self.queue_depth,
            "queue_limit": self.config.queue_limit,
            "cache_entries": len(self._cache),
            "breakers": {
                name: runtime.breaker.snapshot()
                for name, runtime in self._runtimes.items()
            },
        }
        pool = self._pool
        if pool is not None:
            payload["pool"] = pool.health()
        return payload

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: ServiceRequest) -> _Pending:
        """Admit *request* or reject it immediately; never blocks.

        Returns a pending handle whose :meth:`_Pending.wait` yields the
        :class:`ServiceResponse` once a worker (or this very call, for
        rejections) resolves it.
        """
        self.metrics.increment("requests_submitted")
        # a per-request tracer has its own registry: tracer.count mirrors a
        # counter into the span tree, self.metrics carries the service total
        tracer = Tracer() if request.trace else NULL_TRACER
        runtime, problem = self._resolve_runtime(request)
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        token = (
            CancellationToken.with_timeout(deadline_s, reason="request deadline")
            if deadline_s is not None
            else CancellationToken(reason="request")
        )
        pending = _Pending(request, runtime, token, tracer)
        rejection: Optional[ServiceResponse] = None
        # the admission spans must be closed before the request reaches a
        # worker: a tracer is single-threaded, and workers open late spans
        # on it as soon as they dequeue the pending
        with tracer.span("request", query=request.query):
            with tracer.span("admit", dataset=runtime.name if runtime else "?"):
                if problem is not None:
                    status, message = problem
                    self.metrics.increment(f"requests_{status}")
                    tracer.count(f"requests_{status}")
                    rejection = ServiceResponse(
                        status=status, payload={"error": message}
                    )
                elif not self._running:
                    rejection = ServiceResponse(
                        status="unavailable",
                        payload={"error": "service not started"},
                    )
                elif runtime is not None and runtime.breaker.would_reject():
                    self.metrics.increment("requests_rejected_breaker")
                    tracer.count("requests_rejected_breaker")
                    rejection = ServiceResponse(
                        status="unavailable",
                        payload={
                            "error": "circuit breaker open for dataset "
                            + runtime.name
                        },
                    )
        if rejection is not None:
            pending.resolve(rejection)
            return pending
        pending.enqueued_at = time.perf_counter()
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self.metrics.increment("requests_shed")
            tracer.count("requests_shed")
            pending.resolve(
                ServiceResponse(
                    status="shed",
                    payload={
                        "error": "service overloaded, request shed",
                        "queue_limit": self.config.queue_limit,
                    },
                )
            )
            return pending
        self.metrics.increment("requests_enqueued")
        return pending

    def serve(
        self, request: ServiceRequest, timeout: Optional[float] = None
    ) -> ServiceResponse:
        """Blocking convenience: :meth:`submit` + wait for the response."""
        return self.submit(request).wait(timeout)

    def _resolve_runtime(
        self, request: ServiceRequest
    ) -> Tuple[Optional[_Runtime], Optional[Tuple[str, str]]]:
        """(runtime, problem): problem is a (status, message) rejection."""
        if not request.query or not request.query.strip():
            return None, ("invalid", "empty query")
        if request.mode not in ("search", "analyze"):
            return None, ("invalid", f"unknown mode {request.mode!r}")
        if request.engine not in ("semantic", "sqak"):
            return None, ("invalid", f"unknown engine {request.engine!r}")
        from repro.backends.base import available_backends

        if request.backend not in available_backends():
            return None, ("invalid", f"unknown backend {request.backend!r}")
        if request.engine == "sqak" and request.backend != "memory":
            return None, (
                "invalid",
                "the SQAK baseline only executes on the memory backend",
            )
        name = request.dataset or self._default_dataset
        if name is None:
            return None, ("not_found", "no datasets registered")
        runtime = self._runtimes.get(name)
        if runtime is None:
            return None, ("not_found", f"unknown dataset {name!r}")
        if request.engine == "sqak" and runtime.sqak is None:
            return runtime, (
                "invalid",
                f"dataset {name!r} has no SQAK baseline configured",
            )
        if request.engine == "sqak" and request.mode == "analyze":
            return runtime, ("invalid", "analyze mode requires the semantic engine")
        if request.k is not None and request.k < 1:
            return runtime, ("invalid", f"k must be >= 1, got {request.k}")
        return runtime, None

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            try:
                pending = self._queue.get(timeout=0.1)
            except queue.Empty:
                if not self._running:
                    return
                continue
            with self._inflight_lock:
                self._inflight.add(pending)
            try:
                self._serve_pending(pending)
            except BaseException as exc:  # pragma: no cover - last resort
                # a worker must never die with a request unresolved
                pending.resolve(
                    ServiceResponse(
                        status="error",
                        payload={"error": proto.format_error(exc)},
                    )
                )
            finally:
                with self._inflight_lock:
                    self._inflight.discard(pending)

    def _serve_pending(self, pending: _Pending) -> None:
        request, runtime, token, tracer = (
            pending.request,
            pending.runtime,
            pending.token,
            pending.tracer,
        )
        assert runtime is not None
        queue_wait_s = time.perf_counter() - pending.enqueued_at
        with tracer.span("queue_wait") as span:
            if span is not None:
                # the wait happened before this span opened; backdate it
                span.duration = queue_wait_s
        queue_wait_ms = queue_wait_s * 1000.0
        # gate 1: the deadline may have passed while queued
        if token.expired():
            self.metrics.increment("requests_timed_out")
            tracer.count("requests_timed_out")
            pending.resolve(
                ServiceResponse(
                    status="timeout",
                    payload={"error": "deadline exceeded while queued"},
                    queue_wait_ms=queue_wait_ms,
                )
            )
            return
        # gate 2: the circuit breaker (may admit a half-open probe)
        try:
            self._log_transitions(runtime, runtime.breaker.allow(), tracer)
        except ServiceUnavailableError as exc:
            self.metrics.increment("requests_rejected_breaker")
            tracer.count("requests_rejected_breaker")
            pending.resolve(
                ServiceResponse(
                    status="unavailable",
                    payload={"error": str(exc)},
                    queue_wait_ms=queue_wait_ms,
                )
            )
            return
        # past every gate: this request is admitted to execution
        self.metrics.increment("requests_admitted")
        tracer.count("requests_admitted")
        # graceful degradation: under backlog pressure serve top-1 only
        degraded = self.queue_depth >= self.config.effective_degrade_depth
        k = 1 if degraded else (request.k or self.config.default_k)
        if degraded:
            self.metrics.increment("requests_degraded")
            tracer.count("requests_degraded")
        started = time.perf_counter()
        try:
            with tracer.span(
                "serve", dataset=runtime.name, mode=request.mode, k=k
            ):
                payload, outcome = self._lookup_or_compute(
                    runtime, request, k, token, tracer
                )
        except DeadlineExceededError as exc:
            self.metrics.increment("requests_timed_out")
            tracer.count("requests_timed_out")
            self._log_transitions(runtime, runtime.breaker.record_failure(), tracer)
            pending.resolve(
                ServiceResponse(
                    status="timeout",
                    payload={"error": str(exc)},
                    degraded=degraded,
                    queue_wait_ms=queue_wait_ms,
                    serve_ms=(time.perf_counter() - started) * 1000.0,
                )
            )
            return
        except (KeywordQueryError, StaticAnalysisError) as exc:
            # a bad query is the client's problem, not the dataset's —
            # the breaker records it as a success
            self.metrics.increment("requests_invalid")
            tracer.count("requests_invalid")
            self._log_transitions(runtime, runtime.breaker.record_success(), tracer)
            pending.resolve(
                ServiceResponse(
                    status="invalid",
                    payload={"error": str(exc)},
                    degraded=degraded,
                    queue_wait_ms=queue_wait_ms,
                    serve_ms=(time.perf_counter() - started) * 1000.0,
                )
            )
            return
        except Exception as exc:
            self.metrics.increment("requests_failed")
            tracer.count("requests_failed")
            self._log_transitions(runtime, runtime.breaker.record_failure(), tracer)
            pending.resolve(
                ServiceResponse(
                    status="error",
                    payload={"error": proto.format_error(exc)},
                    degraded=degraded,
                    queue_wait_ms=queue_wait_ms,
                    serve_ms=(time.perf_counter() - started) * 1000.0,
                )
            )
            return
        self.metrics.increment("requests_ok")
        self._log_transitions(runtime, runtime.breaker.record_success(), tracer)
        pending.resolve(
            ServiceResponse(
                status="ok",
                payload=payload,
                cache=outcome,
                degraded=degraded,
                queue_wait_ms=queue_wait_ms,
                serve_ms=(time.perf_counter() - started) * 1000.0,
            )
        )

    def _lookup_or_compute(
        self,
        runtime: _Runtime,
        request: ServiceRequest,
        k: int,
        token: CancellationToken,
        tracer,
    ) -> Tuple[Dict[str, Any], str]:
        key = (
            runtime.name,
            request.engine,
            request.mode,
            request.query,
            k,
            request.backend,
        )

        def compute() -> Dict[str, Any]:
            if self._pool is not None:
                return self._compute_via_pool(runtime, request, k, token, key)
            with cancellation_scope(token):
                if request.mode == "analyze":
                    return analyze_payload(
                        runtime.engine, runtime.name, request.query, k
                    )
                if request.engine == "sqak":
                    return sqak_search_payload(
                        runtime.sqak, runtime.name, request.query
                    )
                return semantic_search_payload(
                    runtime.engine,
                    runtime.name,
                    request.query,
                    k,
                    backend=request.backend,
                )

        def observe(outcome: str) -> None:
            # reported before the compute runs, so the counters reconcile
            # (admitted = hits + misses + coalesced) even when it fails
            counter = {
                "hit": "result_cache_hits",
                "miss": "result_cache_misses",
                "coalesced": "singleflight_coalesced",
            }[outcome]
            self.metrics.increment(counter)
            tracer.count(counter)

        return self._cache.get_or_compute(
            key, compute, timeout=token.remaining(), observe=observe
        )

    def _compute_via_pool(
        self,
        runtime: _Runtime,
        request: ServiceRequest,
        k: int,
        token: CancellationToken,
        key: Tuple[Any, ...],
    ) -> Dict[str, Any]:
        """Serve one cache miss through the process worker tier.

        The dispatch carries the dataset's invalidation epoch (cache
        coherence for lagging or respawned workers), the remaining
        deadline (the worker runs its own cancellation scope; the parent
        kills it past deadline + grace), and — for semantic searches —
        the shared compile artifact when some worker already rendered
        this query's interpretations, so the receiving worker skips the
        compile tier entirely."""
        pool = self._pool
        assert pool is not None
        token.check()  # don't ship work the deadline already killed
        deadline_s = token.remaining()
        with self._epochs_lock:
            epoch = self._epochs.get(runtime.name, 0)
        if request.mode == "analyze":
            result = pool.dispatch(
                proto.OP_ANALYZE,
                dataset=runtime.name,
                query=request.query,
                deadline_s=deadline_s,
                k=k,
                epoch=epoch,
            )
            return result["payload"]
        if request.engine == "sqak":
            result = pool.dispatch(
                proto.OP_SQAK,
                dataset=runtime.name,
                query=request.query,
                deadline_s=deadline_s,
                epoch=epoch,
            )
            return result["payload"]
        artifact = self._plan_cache.get(key)
        # the epoch observed *before* the compile ran gates the store,
        # exactly like the result cache's invalidation guard
        artifact_epoch = self._plan_cache.epoch
        self.metrics.increment(
            "plan_cache_hits" if artifact is not None else "plan_cache_misses"
        )
        result = pool.dispatch(
            proto.OP_SEARCH,
            dataset=runtime.name,
            query=request.query,
            deadline_s=deadline_s,
            k=k,
            backend=request.backend,
            epoch=epoch,
            artifact=artifact,
        )
        fragment = result.get("fragment")
        if artifact is None and fragment is not None:
            self._plan_cache.put(key, fragment, artifact_epoch)
        return result["payload"]

    def _log_transitions(self, runtime: _Runtime, transitions, tracer) -> None:
        for old, new in transitions:
            self.metrics.increment("breaker_transitions")
            if new == OPEN:
                self.metrics.increment("breaker_open_total")
            with tracer.span(
                "breaker_transition",
                dataset=runtime.name,
                from_state=old,
                to_state=new,
            ):
                pass

    # ------------------------------------------------------------------
    # Metrics export
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload: service counters, per-engine metrics
        and breaker states.

        The request-lifecycle counters (``requests_*``, cache outcomes)
        live entirely in this front-end process — admission, gates and
        the result cache never moved — so their reconciliation identities
        hold exactly in pool mode too.  What *does* cross processes is
        engine work: in pool mode the ``engines`` section is the
        per-dataset **sum** over every worker's engine registry, and the
        raw per-worker breakdowns appear under a ``workers`` key."""
        pool = self._pool
        pool_snapshot = (
            pool.metrics_snapshot() if pool is not None and pool.running else None
        )
        if pool_snapshot is None:
            engines = {
                name: runtime.engine.metrics.snapshot()
                for name, runtime in self._runtimes.items()
                if getattr(runtime.engine, "metrics", None) is not None
            }
        else:
            engines = self._sum_worker_engines(pool_snapshot)
        snapshot: Dict[str, Any] = {
            "service": self.metrics.snapshot(),
            "engines": engines,
            "breakers": {
                name: runtime.breaker.snapshot()
                for name, runtime in self._runtimes.items()
            },
            "cache": {
                "entries": len(self._cache),
                "invalidations": self._cache.invalidations,
                "plan_entries": len(self._plan_cache),
            },
        }
        if pool_snapshot is not None:
            snapshot["workers"] = pool_snapshot
        return snapshot

    @staticmethod
    def _sum_worker_engines(pool_snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Per-dataset engine metrics summed across worker processes."""
        totals: Dict[str, Dict[str, Any]] = {}
        for worker in pool_snapshot["workers"].values():
            for name, snapshot in worker.get("engines", {}).items():
                bucket = totals.setdefault(name, {"counters": {}, "timings": {}})
                for counter, value in snapshot.get("counters", {}).items():
                    bucket["counters"][counter] = (
                        bucket["counters"].get(counter, 0) + value
                    )
                for timing, entry in snapshot.get("timings", {}).items():
                    merged = bucket["timings"].get(timing)
                    if merged is None:
                        bucket["timings"][timing] = dict(entry)
                    else:
                        merged["count"] += entry["count"]
                        merged["total_s"] += entry["total_s"]
                        merged["min_s"] = min(merged["min_s"], entry["min_s"])
                        merged["max_s"] = max(merged["max_s"], entry["max_s"])
        return totals
