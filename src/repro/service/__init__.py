"""Concurrent query serving: admission control, deadlines, caching,
circuit breaking and an HTTP front end.

See ``docs/SERVING.md`` for the request lifecycle and the degradation
ladder.  Quick start::

    from repro.service import QueryService, ServiceConfig, ServiceRequest

    service = QueryService(ServiceConfig(max_workers=4))
    service.register_dataset("university", engine, sqak=sqak)
    with service:
        response = service.serve(ServiceRequest(query="AVG Credit"))
        assert response.ok and response.http_status == 200
"""

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.cache import PlanArtifactCache, ResultCache
from repro.service.config import ServiceConfig
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.pool import WorkerPool
from repro.service.service import (
    QueryService,
    ServiceRequest,
    ServiceResponse,
    canonical_json,
)

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "OPEN",
    "PlanArtifactCache",
    "QueryService",
    "ResultCache",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceRequest",
    "ServiceResponse",
    "WorkerPool",
    "canonical_json",
    "make_server",
]
