"""Per-dataset circuit breaker with exponential-backoff half-open probes.

Protects the service from hammering a dataset whose engine keeps failing
(a poisoned plan cache, a bug tripped by one schema, resource
exhaustion).  Standard three-state machine:

* ``closed`` — requests flow; ``failure_threshold`` *consecutive*
  failures trip it open.
* ``open`` — requests are rejected immediately with
  :class:`~repro.errors.ServiceUnavailableError` until ``reset_s``
  seconds pass, then the next request becomes a *probe*.
* ``half-open`` — exactly one probe is allowed through (concurrent
  requests are still rejected).  A successful probe closes the breaker
  and resets the backoff; a failed probe re-opens it with the wait
  multiplied by ``backoff_factor`` (capped at ``max_reset_s``).

Shed and timed-out-in-queue requests never reach the breaker; the
service records engine timeouts and unexpected errors as failures, and
client errors (unparseable queries) as successes — a bad query says
nothing about the dataset's health.

State transitions are returned by :meth:`allow` / :meth:`record_success`
/ :meth:`record_failure` so the service can log them as spans and count
``breaker_open_total``.  The clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.errors import ServiceUnavailableError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: ``(old_state, new_state)`` pair describing one transition.
Transition = Tuple[str, str]


class CircuitBreaker:
    """Three-state circuit breaker guarding one dataset's engines."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_s: float = 1.0,
        backoff_factor: float = 2.0,
        max_reset_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.base_reset_s = reset_s
        self.backoff_factor = backoff_factor
        self.max_reset_s = max_reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock
        self._current_reset_s = reset_s  # guarded-by: _lock
        self._opened_at: Optional[float] = None  # guarded-by: _lock
        self._probe_in_flight = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "reset_s": self._current_reset_s,
            }

    def would_reject(self) -> bool:
        """Non-mutating fast check used at admission time.

        True only while the breaker is open and the reset wait has not
        elapsed — the service sheds these before they occupy a queue
        slot.  Everything else (closed, half-open, open-but-due-for-a-
        probe) returns False so the mutating :meth:`allow` in the worker
        keeps sole ownership of probe bookkeeping.
        """
        with self._lock:
            return (
                self._state == OPEN
                and self._opened_at is not None
                and self._clock() - self._opened_at < self._current_reset_s
            )

    # ------------------------------------------------------------------
    # Protocol: allow -> (record_success | record_failure)
    # ------------------------------------------------------------------
    def allow(self) -> List[Transition]:
        """Admit one request, or raise :class:`ServiceUnavailableError`.

        Returns the transitions this call performed (``open`` →
        ``half-open`` when the reset wait elapsed).  Callers that were
        admitted MUST later call exactly one of :meth:`record_success` /
        :meth:`record_failure` so half-open probe bookkeeping stays
        balanced.
        """
        with self._lock:
            if self._state == CLOSED:
                return []
            if self._state == OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self._current_reset_s:
                    raise ServiceUnavailableError(
                        f"circuit breaker open (retry in "
                        f"{self._current_reset_s:.1f}s)"
                    )
                self._state = HALF_OPEN
                self._probe_in_flight = True
                return [(OPEN, HALF_OPEN)]
            # HALF_OPEN: one probe at a time
            if self._probe_in_flight:
                raise ServiceUnavailableError(
                    "circuit breaker half-open (probe in flight)"
                )
            self._probe_in_flight = True
            return []

    def record_success(self) -> List[Transition]:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probe_in_flight = False
                self._current_reset_s = self.base_reset_s
                self._opened_at = None
                return [(HALF_OPEN, CLOSED)]
            return []

    def record_failure(self) -> List[Transition]:
        with self._lock:
            if self._state == HALF_OPEN:
                # failed probe: back off harder
                self._state = OPEN
                self._probe_in_flight = False
                self._opened_at = self._clock()
                self._current_reset_s = min(
                    self._current_reset_s * self.backoff_factor,
                    self.max_reset_s,
                )
                return [(HALF_OPEN, OPEN)]
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                return [(CLOSED, OPEN)]
            return []
