"""SQL analyzers: resolution/shape checks plus schema-aware type checks.

:func:`analyze_select` is the analysis layer's entry point for one SQL
statement.  It folds :func:`repro.sql.validate.validate_select`'s coded
issues into :class:`~repro.analysis.diagnostics.Diagnostic` values and adds
the checks that need column datatypes:

* **S010** — ``SUM``/``AVG`` over a non-numeric column (summing course
  titles is a translation bug, not a user preference);
* **S011** — comparisons across datatypes with no common widening
  (``INT = TEXT`` would silently match nothing in the executor);
* **S012** — arithmetic on non-numeric operands;
* **S013** — ``contains`` on a numeric/boolean column (warning: the
  matcher should have produced an exact equality condition instead);
* **S015** — §5.1 aggregate-nesting legality: an outer aggregate is only
  meaningful over a *grouped* inner aggregate query (warning — a
  single-row inner result makes the outer aggregate a no-op).

:func:`analyze_dialect` adds **S016** — the statement cannot be rendered
as SQL text for an execution backend's dialect (e.g. a string literal
carrying control characters no quoting scheme round-trips): the backend
would reject it at execution time, so strict mode surfaces it up front.

This module must stay independent of ``repro.patterns``/``repro.engine``
so the executor can import it without a layering cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.type_inference import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    TypeScope,
    build_scope,
    infer_expr_type,
)
from repro.errors import TypeMismatchError
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType, common_type, is_numeric
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Contains,
    DerivedTable,
    Expr,
    FuncCall,
    Select,
)
from repro.sql.validate import validate_select

_CONTAINS_OK = (DataType.TEXT, DataType.DATE)


def analyze_select(
    select: Select, schema: DatabaseSchema, location: str = ""
) -> List[Diagnostic]:
    """All diagnostics for one statement: validation plus type checks."""
    diagnostics: List[Diagnostic] = []
    for issue in validate_select(select, schema, path=location):
        diagnostics.append(
            Diagnostic(
                code=issue.code,
                severity=Severity.ERROR,
                message=issue.message,
                location=issue.path,
            )
        )
    diagnostics.extend(_type_checks(select, schema, location))
    return diagnostics


def analyze_dialect(
    select: Select, dialect: object, location: str = ""
) -> List[Diagnostic]:
    """S016 when *select* cannot be rendered for *dialect*.

    Rendering itself is the single source of truth: any
    :class:`~repro.errors.SqlRenderError` (unrepresentable string
    literal, unquotable identifier) becomes one diagnostic instead of a
    backend failure at execution time.
    """
    from repro.errors import SqlRenderError
    from repro.sql.render import render

    try:
        render(select, dialect)  # type: ignore[arg-type]
    except SqlRenderError as exc:
        name = getattr(dialect, "name", str(dialect))
        return [
            Diagnostic(
                code="S016",
                severity=Severity.ERROR,
                message=f"not renderable in the {name!r} dialect: {exc}",
                location=location,
                hint="the execution backend would reject this statement",
            )
        ]
    return []


def _type_checks(
    select: Select, schema: DatabaseSchema, location: str
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    scope = build_scope(select, schema)
    derived: Dict[str, Select] = {
        item.alias: item.select
        for item in select.from_items
        if isinstance(item, DerivedTable)
    }

    def check(expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, FuncCall) and node.is_aggregate:
                _check_aggregate(node)
            elif isinstance(node, BinaryOp):
                _check_binary(node)
            elif isinstance(node, Contains):
                _check_contains(node)

    def _check_aggregate(call: FuncCall) -> None:
        if not call.args:
            return
        arg = call.args[0]
        if call.name.upper() in ("SUM", "AVG"):
            arg_type = infer_expr_type(arg, scope)
            if arg_type is not None and not is_numeric(arg_type):
                diagnostics.append(
                    Diagnostic(
                        "S010",
                        Severity.ERROR,
                        f"{call.name.upper()}({arg}) aggregates a "
                        f"{arg_type} column",
                        location,
                        hint="aggregate a numeric attribute, or use "
                        "COUNT/MIN/MAX",
                    )
                )
        inner = _ungrouped_aggregate_source(arg)
        if inner is not None:
            diagnostics.append(
                Diagnostic(
                    "S015",
                    Severity.WARNING,
                    f"outer {call.name.upper()}({arg}) ranges over an "
                    "aggregate subquery with no GROUP BY (single-row "
                    "input)",
                    location,
                    hint="group the inner query so the outer aggregate "
                    "summarizes per-group values (Section 5.1)",
                )
            )

    def _ungrouped_aggregate_source(arg: Expr) -> Optional[str]:
        """Alias of an ungrouped aggregate subquery *arg* reads, if any."""
        if not isinstance(arg, ColumnRef):
            return None
        if arg.qualifier is not None:
            owners = [arg.qualifier] if arg.qualifier in derived else []
        else:
            name = arg.name.lower()
            owners = [
                alias for alias, cols in scope.items() if name in cols
            ]
        if len(owners) != 1 or owners[0] not in derived:
            return None
        inner = derived[owners[0]]
        if inner.has_aggregates() and not inner.group_by:
            return owners[0]
        return None

    def _check_binary(node: BinaryOp) -> None:
        left = infer_expr_type(node.left, scope)
        right = infer_expr_type(node.right, scope)
        if node.op in COMPARISON_OPS:
            if left is None or right is None:
                return
            try:
                common_type(left, right)
            except TypeMismatchError:
                diagnostics.append(
                    Diagnostic(
                        "S011",
                        Severity.ERROR,
                        f"comparison {node.left} {node.op} {node.right} "
                        f"mixes {left} and {right}",
                        location,
                        hint="compare values of compatible types",
                    )
                )
        elif node.op in ARITHMETIC_OPS:
            for operand, operand_type in ((node.left, left), (node.right, right)):
                if operand_type is not None and not is_numeric(operand_type):
                    diagnostics.append(
                        Diagnostic(
                            "S012",
                            Severity.ERROR,
                            f"arithmetic {node.op} on {operand_type} "
                            f"operand {operand}",
                            location,
                        )
                    )

    def _check_contains(node: Contains) -> None:
        column_type = infer_expr_type(node.column, scope)
        if column_type is not None and column_type not in _CONTAINS_OK:
            diagnostics.append(
                Diagnostic(
                    "S013",
                    Severity.WARNING,
                    f"contains({node.column}, {node.phrase!r}) on a "
                    f"{column_type} column",
                    location,
                    hint="numeric terms should match by equality, not "
                    "substring",
                )
            )

    for item in select.items:
        check(item.expr)
    if select.where is not None:
        check(select.where)
    for expr in select.group_by:
        check(expr)
    for order in select.order_by:
        check(order.expr)

    # recurse into derived tables with a nested location
    for alias, inner in derived.items():
        sub_location = (
            f"{location}/subquery {alias}" if location else f"subquery {alias}"
        )
        diagnostics.extend(_type_checks(inner, schema, sub_location))
    return diagnostics
