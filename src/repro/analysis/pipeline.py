"""The analysis pipeline: one compiled interpretation, every analyzer.

:func:`analyze_compilation` is the glue the engine's strict mode and the
``repro check`` CLI share: given the artifacts one pattern compilation
produced — the annotated pattern, the direct translation, the final
(possibly rewritten) SQL and the fragment-use metadata — it runs the
pattern, translation, SQL/type and rewrite analyzer families and returns
their combined diagnostics.  Plan diagnostics are appended by the caller
(they need an :class:`~repro.relational.executor.Executor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pattern_analyzers import (
    analyze_pattern,
    analyze_translation,
)
from repro.analysis.rewrite_analyzers import analyze_rewrite
from repro.analysis.sql_analyzers import analyze_select
from repro.orm.graph import OrmSchemaGraph
from repro.patterns.pattern import QueryPattern
from repro.relational.schema import DatabaseSchema
from repro.sql.ast import Select
from repro.unnormalized.provider import FragmentUse


@dataclass
class TranslationParts:
    """What one pattern translation produced.

    ``raw`` is the direct translator output (node aliases intact); ``final``
    is what the engine will execute — identical to ``raw`` for normalized
    databases, the §4.1-rewritten statement for unnormalized ones.
    """

    raw: Select
    final: Select
    fragment_uses: Dict[str, FragmentUse] = field(default_factory=dict)

    @property
    def was_rewritten(self) -> bool:
        return self.final is not self.raw


def analyze_compilation(
    pattern: QueryPattern,
    parts: TranslationParts,
    graph: OrmSchemaGraph,
    schema: DatabaseSchema,
    dedup_enabled: bool = True,
    location: str = "",
) -> List[Diagnostic]:
    """All static diagnostics for one compiled interpretation.

    *schema* is the stored database schema — the one the final SQL runs
    against (for unnormalized databases the raw translation also only
    reads stored relations, inside fragment subqueries).
    """
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(analyze_pattern(pattern, graph, location))
    diagnostics.extend(
        analyze_translation(
            pattern, parts.raw, graph, enabled=dedup_enabled, location=location
        )
    )
    diagnostics.extend(analyze_select(parts.final, schema, location))
    if parts.was_rewritten:
        diagnostics.extend(
            analyze_rewrite(
                parts.raw, parts.final, parts.fragment_uses, schema, location
            )
        )
    return diagnostics
