"""Whole-program lock-discipline analysis over the repro codebase.

PRs 4 and 6 made the repository a genuinely concurrent system: worker
threads draining a bounded queue, a result cache with single-flight
leaders and followers, circuit breakers, duplex pipes into worker
processes, and a multi-stage shutdown drain.  This module makes the
locking discipline those layers depend on *checkable*: it parses every
module under ``src/repro`` once (sharing :class:`SourceFile` loading
with the LR lint pass), builds a **lock model** — which classes own
which ``threading.Lock``/``RLock``/``Condition`` attributes, which
attributes their methods only ever mutate while holding them — and
emits the C-code diagnostic family:

* **C001** — an attribute is mutated both inside and outside its guard.
  The guard is *inferred* (every non-``__init__`` write holds the same
  lock) and may be *declared* with a ``# guarded-by: <attr>`` comment on
  the attribute's assignment, which the analyzer verifies against the
  inference.
* **C002** — a cycle in the inter-class lock-acquisition-order graph
  (potential deadlock).  Edges are recorded whenever a lock is acquired
  while another is held, including acquisitions reached through
  intra-class method calls.
* **C003** — a blocking call (pipe ``send``/``recv``, un-timed
  ``Queue.get`` / ``Event.wait`` / ``join``, ``engine.search``,
  ``time.sleep``) while holding a lock.
* **C004** — a manual ``acquire()`` without a ``try``/``finally``
  release in the same function, or a lock object escaping its owner via
  ``return``/``yield``.
* **C005** — fork-safety violations: a thread created at import time
  (it would predate a ``fork`` start), or a pool broadcast issued from
  a function without an ``os.getpid()`` owner check (a forked child
  inheriting the service object must never write the parent's pipes).
* **C006** — an un-timed ``.wait()`` on the request path
  (``repro/service/``): every wait a request can reach must be bounded
  by the deadline budget.

Two discipline mechanisms keep the tree clean *and honest*:

* ``# lock-ok: C00x <justification>`` on the finding line (or the line
  above) suppresses that one finding — but only with a non-empty
  justification; a bare ``lock-ok`` keeps the finding.
* helpers documented as "caller holds the lock" are handled by **held
  inheritance**: a private method whose intra-class call sites *all*
  hold lock ``L`` is analyzed as if its body held ``L``.

The runtime side of this contract lives in
:mod:`repro.analysis.runtime`: an instrumented-lock sanitizer that
observes real acquisition order during the test suite and
cross-validates this static model (codes C002/C007/C008).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.codebase import SourceFile, default_root, load_tree
from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "ClassModel",
    "ConcurrencyReport",
    "LockId",
    "LockModel",
    "LockSite",
    "SuppressedFinding",
    "WriteSite",
    "analyze_concurrency",
    "build_lock_model",
]

_LOCK_KINDS = ("Lock", "RLock", "Condition")
_INIT_METHODS = ("__init__", "__post_init__", "__new__")
_SUPPRESS_RE = re.compile(r"lock-ok:\s*(C\d{3})\b[ \t]*(.*)")
_GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _find_suppression(
    source: SourceFile, lineno: int, code: str
) -> Optional["re.Match[str]"]:
    """The ``lock-ok: <code>`` marker covering *lineno*, if present.

    A marker covers the finding line itself (inline comment) or any line
    of the contiguous comment block immediately above it, so multi-line
    justifications work naturally.
    """
    match = _SUPPRESS_RE.search(source.comments.get(lineno, ""))
    if match is not None and match.group(1) == code:
        return match
    lines = source.text.splitlines()
    current = lineno - 1
    while 1 <= current <= len(lines) and lines[current - 1].lstrip().startswith(
        "#"
    ):
        match = _SUPPRESS_RE.search(source.comments.get(current, ""))
        if match is not None and match.group(1) == code:
            return match
        current -= 1
    return None

#: container methods that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


# ----------------------------------------------------------------------
# Model types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockId:
    """One lock *attribute* (all instances of ``owner`` share the id)."""

    owner: str
    attr: str

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass(frozen=True)
class LockSite:
    """Where a lock attribute is created."""

    lock: LockId
    kind: str  # Lock | RLock | Condition
    path: str  # root-relative POSIX path
    lineno: int
    via_factory: bool = False  # dataclasses field(default_factory=...)


@dataclass(frozen=True)
class WriteSite:
    """One attribute mutation and the locks lexically held around it."""

    owner: str
    attr: str
    path: str
    lineno: int
    held: FrozenSet[LockId]
    in_init: bool
    fresh: bool  # receiver constructed in the same function (unpublished)


@dataclass
class ClassModel:
    """Everything the analyzer knows about one class."""

    name: str
    module: str
    path: str
    locks: Dict[str, LockSite] = field(default_factory=dict)
    #: attr -> (declared guard lock attr, annotation line)
    annotations: Dict[str, Tuple[str, int]] = field(default_factory=dict)


@dataclass
class LockModel:
    """The whole-program lock model the C-codes are computed from."""

    classes: Dict[str, ClassModel] = field(default_factory=dict)
    writes: List[WriteSite] = field(default_factory=list)
    #: (held, acquired) -> example sites ("path:lineno")
    order_edges: Dict[Tuple[LockId, LockId], List[str]] = field(
        default_factory=dict
    )
    #: (owner class, attr) -> the locks every non-init write holds
    guards: Dict[Tuple[str, str], Tuple[LockId, ...]] = field(
        default_factory=dict
    )

    def lock_sites(self) -> List[LockSite]:
        return [
            site
            for model in self.classes.values()
            for site in model.locks.values()
        ]

    def guarding_locks(self) -> Dict[LockId, LockSite]:
        """Locks that guard at least one attribute (inferred or declared)."""
        guarding: Set[LockId] = set()
        for locks in self.guards.values():
            guarding.update(locks)
        for model in self.classes.values():
            for lock_attr, _ in model.annotations.values():
                if lock_attr in model.locks:
                    guarding.add(LockId(model.name, lock_attr))
        return {
            site.lock: site
            for site in self.lock_sites()
            if site.lock in guarding
        }


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding silenced by an inline ``lock-ok`` justification."""

    diagnostic: Diagnostic
    justification: str


@dataclass
class ConcurrencyReport:
    """The outcome of one static concurrency analysis."""

    findings: List[Diagnostic]
    suppressed: List[SuppressedFinding]
    model: LockModel

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self, indent: str = "") -> str:
        lines = [f"{indent}{finding}" for finding in self.findings]
        if not lines:
            locks = len(self.model.lock_sites())
            guarded = len(self.model.guards)
            lines = [
                f"{indent}concurrency: clean ({locks} locks, "
                f"{guarded} guarded attributes, "
                f"{len(self.suppressed)} justified suppressions)"
            ]
        return "\n".join(lines)


@dataclass(frozen=True)
class _RawFinding:
    """A finding before suppression comments are applied."""

    code: str
    severity: Severity
    message: str
    source: SourceFile
    lineno: int
    hint: str = ""


@dataclass
class _MethodFacts:
    """Phase-1 facts about one method, used for inter-method reasoning."""

    acquires: Set[LockId] = field(default_factory=set)
    #: methods this one calls on ``self`` -> held sets at each call
    calls: Dict[str, List[FrozenSet[LockId]]] = field(default_factory=dict)
    blocking: bool = False


# ----------------------------------------------------------------------
# Pass 1: collect classes, lock attributes and guarded-by annotations
# ----------------------------------------------------------------------
def _lock_kind(value: ast.expr) -> Optional[Tuple[str, bool]]:
    """``(kind, via_factory)`` when *value* creates a threading lock."""
    if isinstance(value, ast.Call):
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LOCK_KINDS
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        ):
            return func.attr, False
        # dataclasses: field(default_factory=threading.Lock)
        if isinstance(func, ast.Name) and func.id == "field" or (
            isinstance(func, ast.Attribute) and func.attr == "field"
        ):
            for keyword in value.keywords:
                if keyword.arg != "default_factory":
                    continue
                factory = keyword.value
                if (
                    isinstance(factory, ast.Attribute)
                    and factory.attr in _LOCK_KINDS
                    and isinstance(factory.value, ast.Name)
                    and factory.value.id == "threading"
                ):
                    return factory.attr, True
    return None


def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """The class a parameter annotation names, if syntactically simple."""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.strip().rsplit(".", 1)[-1] or None
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def _stmt_lines(stmt: ast.stmt) -> Iterable[int]:
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    return range(stmt.lineno, end + 1)


def _collect_classes(
    sources: Sequence[SourceFile], rel: Dict[str, str]
) -> Dict[str, ClassModel]:
    classes: Dict[str, ClassModel] = {}
    for source in sources:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = ClassModel(
                name=node.name, module=source.module, path=rel[source.posix]
            )
            for stmt in node.body:
                _collect_class_stmt(model, source, rel, stmt)
            for method in node.body:
                if isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    for stmt in method.body:
                        _collect_method_stmt(model, source, rel, stmt)
            classes[node.name] = model
    return classes


def _collect_class_stmt(
    model: ClassModel,
    source: SourceFile,
    rel: Dict[str, str],
    stmt: ast.stmt,
) -> None:
    """Class-body statement: dataclass fields and class-level locks."""
    target: Optional[str] = None
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        target, value = stmt.target.id, stmt.value
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
        stmt.targets[0], ast.Name
    ):
        target, value = stmt.targets[0].id, stmt.value
    if target is None:
        return
    if value is not None:
        kind = _lock_kind(value)
        if kind is not None:
            model.locks[target] = LockSite(
                lock=LockId(model.name, target),
                kind=kind[0],
                path=rel[source.posix],
                lineno=stmt.lineno,
                via_factory=kind[1],
            )
            return
    _collect_annotation(model, source, stmt, target)


def _collect_method_stmt(
    model: ClassModel,
    source: SourceFile,
    rel: Dict[str, str],
    stmt: ast.stmt,
) -> None:
    """Method-body statement: ``self.X = threading.Lock()`` and friends."""
    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return
    targets = (
        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
    )
    value = stmt.value
    for target in targets:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        if value is not None:
            kind = _lock_kind(value)
            if kind is not None:
                model.locks[target.attr] = LockSite(
                    lock=LockId(model.name, target.attr),
                    kind=kind[0],
                    path=rel[source.posix],
                    lineno=stmt.lineno,
                    via_factory=kind[1],
                )
                continue
        _collect_annotation(model, source, stmt, target.attr)


def _collect_annotation(
    model: ClassModel, source: SourceFile, stmt: ast.stmt, attr: str
) -> None:
    for lineno in _stmt_lines(stmt):
        match = _GUARDED_BY_RE.search(source.comments.get(lineno, ""))
        if match is not None:
            model.annotations[attr] = (match.group(1), lineno)
            return


# ----------------------------------------------------------------------
# Pass 2: per-function analysis
# ----------------------------------------------------------------------
class _FunctionAnalyzer:
    """Walks one function body tracking the lexically held lock set."""

    def __init__(
        self,
        analysis: "_Analysis",
        source: SourceFile,
        cls: Optional[ClassModel],
        func: ast.AST,
        name: str,
        inherited: FrozenSet[LockId],
        record: bool,
    ) -> None:
        self.analysis = analysis
        self.source = source
        self.cls = cls
        self.func = func
        self.name = name
        self.inherited = inherited
        self.record = record
        self.facts = _MethodFacts()
        self.in_init = name in _INIT_METHODS
        self.bindings: Dict[str, str] = {}
        self.aliases: Dict[str, LockId] = {}
        self.fresh: Set[str] = set()
        self.manual_acquires: List[Tuple[LockId, int]] = []
        self.released_in_finally: Set[LockId] = set()
        self.has_getpid = False
        self.broadcasts: List[int] = []
        self._collect_bindings()

    # -- environment ---------------------------------------------------
    def _collect_bindings(self) -> None:
        args = getattr(self.func, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                bound = _annotation_class(arg.annotation)
                if bound is not None and bound in self.analysis.classes:
                    self.bindings[arg.arg] = bound
        for node in ast.walk(self.func):  # flow-insensitive, deliberately
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    value = node.value
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in self.analysis.classes
                    ):
                        self.bindings[target.id] = value.func.id
                        self.fresh.add(target.id)
                    else:
                        alias = self._self_lock(value)
                        if alias is not None:
                            self.aliases[target.id] = alias
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id != "self"
                and node.value.id not in self.bindings
            ):
                owner = self.analysis.unique_lock_owner.get(node.attr)
                if owner is not None:
                    self.bindings[node.value.id] = owner
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "getpid"
            ):
                self.has_getpid = True

    def _self_lock(self, expr: ast.expr) -> Optional[LockId]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.cls is not None
            and expr.attr in self.cls.locks
        ):
            return LockId(self.cls.name, expr.attr)
        return None

    def resolve_lock(self, expr: ast.expr) -> Optional[LockId]:
        """The :class:`LockId` an expression refers to, if resolvable."""
        direct = self._self_lock(expr)
        if direct is not None:
            return direct
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            base = expr.value.id
            if base == "self":
                return None
            bound = self.bindings.get(base)
            if bound is not None:
                owner = self.analysis.classes.get(bound)
                if owner is not None and expr.attr in owner.locks:
                    return LockId(bound, expr.attr)
                return None
            unique = self.analysis.unique_lock_owner.get(expr.attr)
            if unique is not None:
                return LockId(unique, expr.attr)
        if isinstance(expr, ast.Name):
            return self.aliases.get(expr.id)
        return None

    def _receiver(self, expr: ast.expr) -> Tuple[Optional[str], bool]:
        """(owning class, receiver-is-fresh) for an attribute receiver."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return (self.cls.name if self.cls else None), False
            return self.bindings.get(expr.id), expr.id in self.fresh
        return None, False

    def site(self, lineno: int) -> str:
        return f"{self.analysis.rel[self.source.posix]}:{lineno}"

    # -- main walk -----------------------------------------------------
    def run(self) -> None:
        body = getattr(self.func, "body", [])
        self._walk_body(body, tuple(sorted(self.inherited, key=str)))
        for lock, lineno in self.manual_acquires:
            if lock not in self.released_in_finally:
                self._finding(
                    "C004",
                    Severity.ERROR,
                    f"manual {lock}.acquire() without a try/finally "
                    f"release in {self.name}()",
                    lineno,
                    hint="release in a finally block, or use 'with'",
                )

    def _walk_body(
        self, stmts: Sequence[ast.stmt], held: Tuple[LockId, ...]
    ) -> None:
        pending: Set[LockId] = set()
        for stmt in stmts:
            self._scan_statement(stmt, held, pending)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested functions run later (thread targets, closures):
                # no lock held here is guaranteed to be held there
                self.analysis.analyze_function(
                    self.source, self.cls, stmt, stmt.name,
                    frozenset(), self.record,
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                continue  # local classes are out of scope
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = []
                for item in stmt.items:
                    lock = self.resolve_lock(item.context_expr)
                    if lock is not None:
                        self._acquire(lock, held + tuple(acquired), stmt.lineno)
                        acquired.append(lock)
                self._walk_body(stmt.body, held + tuple(acquired))
            elif isinstance(stmt, ast.Try):
                released = self._finally_releases(stmt.finalbody)
                self.released_in_finally.update(released)
                extra = tuple(
                    lock for lock in released if lock in pending
                )
                inner = held + extra
                self._walk_body(stmt.body, inner)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, inner)
                self._walk_body(stmt.orelse, inner)
                self._walk_body(stmt.finalbody, held)
                pending.difference_update(extra)
            else:
                for field_name in ("body", "orelse", "cases"):
                    children = getattr(stmt, field_name, None)
                    if not children:
                        continue
                    if field_name == "cases":  # match statement
                        for case in children:
                            self._walk_body(case.body, held)
                    else:
                        self._walk_body(children, held)

    def _finally_releases(
        self, finalbody: Sequence[ast.stmt]
    ) -> Set[LockId]:
        released: Set[LockId] = set()
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                ):
                    lock = self.resolve_lock(node.func.value)
                    if lock is not None:
                        released.add(lock)
        return released

    # -- statement-level scanning --------------------------------------
    def _scan_statement(
        self,
        stmt: ast.stmt,
        held: Tuple[LockId, ...],
        pending: Set[LockId],
    ) -> None:
        self._record_writes(stmt, held)
        for node in _expression_nodes(stmt):
            if not isinstance(node, ast.Call):
                continue
            self._scan_call(node, held, pending)

    def _record_writes(
        self, stmt: ast.stmt, held: Tuple[LockId, ...]
    ) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            for receiver, attr in _write_targets(target):
                self._write(receiver, attr, stmt.lineno, held)

    def _write(
        self,
        receiver: ast.expr,
        attr: str,
        lineno: int,
        held: Tuple[LockId, ...],
    ) -> None:
        owner, fresh = self._receiver(receiver)
        if owner is None or not self.record:
            return
        self.analysis.model.writes.append(
            WriteSite(
                owner=owner,
                attr=attr,
                path=self.analysis.rel[self.source.posix],
                lineno=lineno,
                held=frozenset(held),
                in_init=self.in_init and owner == (
                    self.cls.name if self.cls else None
                ),
                fresh=fresh,
            )
        )

    def _scan_call(
        self,
        call: ast.Call,
        held: Tuple[LockId, ...],
        pending: Set[LockId],
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        # container mutations count as attribute writes
        if func.attr in _MUTATORS and isinstance(func.value, ast.Attribute):
            self._write(
                func.value.value, func.value.attr, call.lineno, held
            )
        # manual lock management
        if func.attr == "acquire":
            lock = self.resolve_lock(func.value)
            if lock is not None:
                self._acquire(lock, held, call.lineno)
                self.manual_acquires.append((lock, call.lineno))
                pending.add(lock)
                return
        # intra-class calls (held inheritance + acquisition closure)
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.cls is not None
        ):
            self.facts.calls.setdefault(func.attr, []).append(
                frozenset(held)
            )
            if held and self.record:
                callee = self.analysis.closure_acquires.get(
                    (self.cls.name, func.attr), set()
                )
                for acquired in callee:
                    for holder in held:
                        self._edge(holder, acquired, call.lineno)
                if self.analysis.may_block.get(
                    (self.cls.name, func.attr), False
                ):
                    self._finding(
                        "C003",
                        Severity.WARNING,
                        f"call to self.{func.attr}() (which performs "
                        f"blocking I/O) while holding "
                        f"{_held_names(held)}",
                        call.lineno,
                        hint="move the call outside the lock",
                    )
        # fork-safety: pool broadcasts need the owner-pid guard
        if func.attr == "broadcast_clear" and not self.source.posix.endswith(
            "service/pool.py"
        ):
            self.broadcasts.append(call.lineno)
        reason = _blocking_reason(call)
        if reason is not None:
            self.facts.blocking = True
            if held and self.record:
                self._finding(
                    "C003",
                    Severity.WARNING,
                    f"blocking {reason} while holding {_held_names(held)}",
                    call.lineno,
                    hint="move the blocking call outside the lock",
                )
            if (
                self.record
                and reason.startswith("un-timed wait")
                and "repro/service/" in self.source.posix
            ):
                self._finding(
                    "C006",
                    Severity.WARNING,
                    "un-timed wait() on the request path",
                    call.lineno,
                    hint="bound the wait with the request deadline",
                )

    def _acquire(
        self, lock: LockId, held: Tuple[LockId, ...], lineno: int
    ) -> None:
        self.facts.acquires.add(lock)
        if not self.record:
            return
        for holder in held:
            self._edge(holder, lock, lineno)

    def _edge(self, holder: LockId, acquired: LockId, lineno: int) -> None:
        if holder == acquired:
            return
        sites = self.analysis.model.order_edges.setdefault(
            (holder, acquired), []
        )
        site = self.site(lineno)
        if site not in sites:
            sites.append(site)

    def _finding(
        self,
        code: str,
        severity: Severity,
        message: str,
        lineno: int,
        hint: str = "",
    ) -> None:
        if self.record:
            self.analysis.raw_findings.append(
                _RawFinding(code, severity, message, self.source, lineno, hint)
            )

    def finish(self) -> None:
        """Findings that need the whole function analyzed first."""
        if not self.record:
            return
        if self.broadcasts and not self.has_getpid:
            for lineno in self.broadcasts:
                self._finding(
                    "C005",
                    Severity.ERROR,
                    "pool broadcast without an os.getpid() owner check: a "
                    "forked child inheriting this object would write the "
                    "parent's pipes",
                    lineno,
                    hint="guard with os.getpid() == owner pid",
                )
        # lock escape: returning/yielding a lock hands it to strangers
        for node in ast.walk(self.func):
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                lock = self._self_lock(node.value)
                if lock is not None:
                    self._finding(
                        "C004",
                        Severity.ERROR,
                        f"{lock} escapes its owner via "
                        f"{type(node).__name__.lower()} in {self.name}()",
                        node.lineno,
                        hint="expose an operation, not the lock",
                    )


def _write_targets(
    target: ast.expr,
) -> Iterable[Tuple[ast.expr, str]]:
    """(receiver, attribute) pairs a store target mutates."""
    if isinstance(target, ast.Attribute):
        yield target.value, target.attr
    elif isinstance(target, ast.Subscript):
        if isinstance(target.value, ast.Attribute):
            yield target.value.value, target.value.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _write_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _write_targets(target.value)


def _expression_nodes(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Every expression node directly owned by *stmt* (not by nested
    statements — those are walked with their own held set)."""
    stack = [
        child
        for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, (ast.stmt, ast.ExceptHandler))
    ]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(child, (ast.stmt, ast.ExceptHandler))
        )


def _terminal_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _untimed(call: ast.Call) -> bool:
    """True when the call has no bounding timeout argument."""
    timeout_kw = next(
        (kw for kw in call.keywords if kw.arg in ("timeout", "block")), None
    )
    if timeout_kw is not None:
        return (
            isinstance(timeout_kw.value, ast.Constant)
            and timeout_kw.value.value is None
        )
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return True


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    receiver = _terminal_name(func.value).lower()
    pipe_like = any(tag in receiver for tag in ("conn", "pipe", "sock"))
    if attr in ("send", "recv") and pipe_like:
        return f"pipe {attr}()"
    if attr == "poll" and pipe_like and _untimed(call):
        return "un-timed pipe poll()"
    if attr == "get" and "queue" in receiver and _untimed(call):
        return "un-timed queue get()"
    if attr == "wait" and _untimed(call):
        return "un-timed wait()"
    if attr == "join" and not call.args and not call.keywords:
        return "un-timed join()"
    if attr.startswith("search") and "engine" in receiver:
        return f"engine {attr}()"
    if attr == "sleep" and receiver == "time":
        return "time.sleep()"
    return None


def _held_names(held: Tuple[LockId, ...]) -> str:
    return ", ".join(str(lock) for lock in held)


# ----------------------------------------------------------------------
# The analysis driver
# ----------------------------------------------------------------------
class _Analysis:
    def __init__(self, sources: Sequence[SourceFile], root: Path) -> None:
        self.sources = sources
        self.root = root
        self.rel = {
            source.posix: _relative(source.path, root)
            for source in sources
        }
        self.classes = _collect_classes(sources, self.rel)
        self.unique_lock_owner: Dict[str, str] = {}
        owners: Dict[str, List[str]] = {}
        for model in self.classes.values():
            for attr in model.locks:
                owners.setdefault(attr, []).append(model.name)
        for attr, names in owners.items():
            if len(names) == 1:
                self.unique_lock_owner[attr] = names[0]
        self.model = LockModel(classes=self.classes)
        self.raw_findings: List[_RawFinding] = []
        self.phase1: Dict[Tuple[str, str], _MethodFacts] = {}
        self.closure_acquires: Dict[Tuple[str, str], Set[LockId]] = {}
        self.may_block: Dict[Tuple[str, str], bool] = {}

    def analyze_function(
        self,
        source: SourceFile,
        cls: Optional[ClassModel],
        func: ast.AST,
        name: str,
        inherited: FrozenSet[LockId],
        record: bool,
    ) -> _MethodFacts:
        analyzer = _FunctionAnalyzer(
            self, source, cls, func, name, inherited, record
        )
        analyzer.run()
        analyzer.finish()
        return analyzer.facts

    # -- phases --------------------------------------------------------
    def run(self) -> None:
        methods = self._enumerate_methods()
        # phase 1: facts only (no findings recorded)
        for source, cls, func, name in methods:
            facts = self.analyze_function(
                source, cls, func, name, frozenset(), record=False
            )
            key = (cls.name if cls else "", name)
            self.phase1[key] = facts
        self._close_acquires()
        inherited = self._inherited_held()
        # phase 2: full analysis with inherited held sets
        for source, cls, func, name in methods:
            key = (cls.name if cls else "", name)
            self.analyze_function(
                source, cls, func, name,
                inherited.get(key, frozenset()), record=True,
            )
        self._module_level_threads()
        self._check_guards()
        self._check_cycles()

    def _enumerate_methods(
        self,
    ) -> List[Tuple[SourceFile, Optional[ClassModel], ast.AST, str]]:
        methods: List[
            Tuple[SourceFile, Optional[ClassModel], ast.AST, str]
        ] = []
        for source in self.sources:
            for stmt in source.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append((source, None, stmt, stmt.name))
                elif isinstance(stmt, ast.ClassDef):
                    cls = self.classes.get(stmt.name)
                    for member in stmt.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            methods.append(
                                (source, cls, member, member.name)
                            )
        return methods

    def _close_acquires(self) -> None:
        """Fixed point: locks a method may acquire through self-calls."""
        closure = {
            key: set(facts.acquires) for key, facts in self.phase1.items()
        }
        blocking = {
            key: facts.blocking for key, facts in self.phase1.items()
        }
        changed = True
        while changed:
            changed = False
            for key, facts in self.phase1.items():
                for callee_name in facts.calls:
                    callee = (key[0], callee_name)
                    if callee not in closure:
                        continue
                    before = len(closure[key])
                    closure[key].update(closure[callee])
                    if len(closure[key]) != before:
                        changed = True
                    if blocking[callee] and not blocking[key]:
                        blocking[key] = True
                        changed = True
        self.closure_acquires = closure
        self.may_block = blocking

    def _inherited_held(self) -> Dict[Tuple[str, str], FrozenSet[LockId]]:
        """Locks every intra-class call site of a private method holds.

        Computed to a fixed point so inheritance flows through chains of
        "caller holds the lock" helpers (``load`` -> ``_ensure_fresh``
        -> ``_materialize``): a call site contributes the locks it holds
        lexically *plus* whatever its own method inherited.
        """
        call_sites: Dict[
            Tuple[str, str], List[Tuple[Tuple[str, str], FrozenSet[LockId]]]
        ] = {}
        for caller_key, facts in self.phase1.items():
            for callee_name, held_sets in facts.calls.items():
                callee_key = (caller_key[0], callee_name)
                for held in held_sets:
                    call_sites.setdefault(callee_key, []).append(
                        (caller_key, held)
                    )
        candidates = [
            key
            for key, method in (
                (key, key[1]) for key in call_sites
            )
            if key in self.phase1
            and method.startswith("_")
            and not (method.startswith("__") and method.endswith("__"))
        ]
        inherited: Dict[Tuple[str, str], FrozenSet[LockId]] = {}
        changed = True
        while changed:
            changed = False
            for key in candidates:
                common = frozenset.intersection(
                    *[
                        held | inherited.get(caller_key, frozenset())
                        for caller_key, held in call_sites[key]
                    ]
                )
                if common != inherited.get(key, frozenset()):
                    inherited[key] = common
                    changed = True
        return {key: held for key, held in inherited.items() if held}

    def _module_level_threads(self) -> None:
        """C005: threads created at import time predate any fork."""

        def scan(stmts: Sequence[ast.stmt], source: SourceFile) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                for node in _expression_nodes(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "Thread"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "threading"
                    ):
                        self.raw_findings.append(
                            _RawFinding(
                                "C005",
                                Severity.ERROR,
                                "thread created at import time: it would "
                                "predate a fork start and silently vanish "
                                "in the child",
                                source,
                                node.lineno,
                                hint="create threads inside start()",
                            )
                        )
                for field_name in ("body", "orelse", "finalbody"):
                    children = getattr(stmt, field_name, None)
                    if children:
                        scan(children, source)
                for handler in getattr(stmt, "handlers", []) or []:
                    scan(handler.body, source)

        for source in self.sources:
            scan(source.tree.body, source)

    # -- C001: guard discipline ---------------------------------------
    def _check_guards(self) -> None:
        by_attr: Dict[Tuple[str, str], List[WriteSite]] = {}
        for write in self.model.writes:
            if write.in_init or write.fresh:
                continue
            by_attr.setdefault((write.owner, write.attr), []).append(write)
        source_by_rel = {
            self.rel[source.posix]: source for source in self.sources
        }
        for (owner, attr), writes in sorted(by_attr.items()):
            cls = self.classes.get(owner)
            declared: Optional[LockId] = None
            if cls is not None and attr in cls.annotations:
                lock_attr, ann_line = cls.annotations[attr]
                if lock_attr not in cls.locks:
                    source = source_by_rel.get(cls.path)
                    if source is not None:
                        self.raw_findings.append(
                            _RawFinding(
                                "C001",
                                Severity.ERROR,
                                f"guarded-by annotation on {owner}.{attr} "
                                f"names unknown lock {lock_attr!r}",
                                source,
                                ann_line,
                            )
                        )
                else:
                    declared = LockId(owner, lock_attr)
            locked = [write for write in writes if write.held]
            unlocked = [write for write in writes if not write.held]
            if declared is not None:
                for write in writes:
                    if declared not in write.held:
                        self._guard_finding(
                            write,
                            f"{owner}.{attr} is declared guarded-by "
                            f"{declared.attr} but written without it",
                            source_by_rel,
                        )
                if all(declared in write.held for write in writes):
                    self.model.guards[(owner, attr)] = (declared,)
                continue
            if locked and unlocked:
                for write in unlocked:
                    guards = sorted(
                        set.intersection(
                            *[set(write.held) for write in locked]
                        )
                        or set.union(*[set(write.held) for write in locked]),
                        key=str,
                    )
                    self._guard_finding(
                        write,
                        f"{owner}.{attr} is written under "
                        f"{_held_names(tuple(guards))} elsewhere but "
                        f"written here without any lock",
                        source_by_rel,
                    )
            elif locked:
                common = frozenset.intersection(
                    *[write.held for write in locked]
                )
                own = tuple(
                    sorted(
                        (lock for lock in common if lock.owner == owner),
                        key=str,
                    )
                ) or tuple(sorted(common, key=str))
                if own:
                    self.model.guards[(owner, attr)] = own

    def _guard_finding(
        self,
        write: WriteSite,
        message: str,
        source_by_rel: Dict[str, SourceFile],
    ) -> None:
        source = source_by_rel.get(write.path)
        if source is None:  # pragma: no cover - writes come from sources
            return
        self.raw_findings.append(
            _RawFinding(
                "C001",
                Severity.ERROR,
                message,
                source,
                write.lineno,
                hint="hold the guard for every mutation, or justify with "
                "'# lock-ok: C001 <reason>'",
            )
        )

    # -- C002: lock-order cycles ---------------------------------------
    def _check_cycles(self) -> None:
        graph: Dict[LockId, Set[LockId]] = {}
        for (holder, acquired) in self.model.order_edges:
            graph.setdefault(holder, set()).add(acquired)
        reported: Set[FrozenSet[LockId]] = set()
        for start in sorted(graph, key=str):
            cycle = _find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            edge = (cycle[0], cycle[1 % len(cycle)])
            sites = self.model.order_edges.get(edge, [])
            source, lineno = self._site_source(sites)
            if source is None:
                continue
            path = " -> ".join(str(lock) for lock in cycle + [cycle[0]])
            self.raw_findings.append(
                _RawFinding(
                    "C002",
                    Severity.ERROR,
                    f"lock-acquisition-order cycle: {path}",
                    source,
                    lineno,
                    hint="impose a global acquisition order",
                )
            )

    def _site_source(
        self, sites: Sequence[str]
    ) -> Tuple[Optional[SourceFile], int]:
        source_by_rel = {
            self.rel[source.posix]: source for source in self.sources
        }
        for site in sites:
            path, _, lineno = site.rpartition(":")
            source = source_by_rel.get(path)
            if source is not None:
                return source, int(lineno)
        return None, 0

    # -- suppression ---------------------------------------------------
    def finalize(self) -> ConcurrencyReport:
        findings: List[Diagnostic] = []
        suppressed: List[SuppressedFinding] = []
        ordered = sorted(
            self.raw_findings,
            key=lambda raw: (raw.source.posix, raw.lineno, raw.code),
        )
        for raw in ordered:
            diagnostic = Diagnostic(
                code=raw.code,
                severity=raw.severity,
                message=raw.message,
                location=(
                    f"{self.rel[raw.source.posix]}:{raw.lineno}"
                ),
                hint=raw.hint,
            )
            match = _find_suppression(raw.source, raw.lineno, raw.code)
            if match is not None:
                justification = match.group(2).strip()
                if justification:
                    suppressed.append(
                        SuppressedFinding(diagnostic, justification)
                    )
                    continue
                diagnostic = Diagnostic(
                    code=raw.code,
                    severity=raw.severity,
                    message=raw.message
                    + " (lock-ok suppression needs a justification)",
                    location=diagnostic.location,
                    hint=raw.hint,
                )
            findings.append(diagnostic)
        return ConcurrencyReport(
            findings=findings, suppressed=suppressed, model=self.model
        )


def _find_cycle(
    graph: Dict[LockId, Set[LockId]], start: LockId
) -> Optional[List[LockId]]:
    """A simple cycle reachable from *start*, as the node list, if any."""
    path: List[LockId] = []
    on_path: Set[LockId] = set()
    visited: Set[LockId] = set()

    def visit(node: LockId) -> Optional[List[LockId]]:
        if node in on_path:
            index = path.index(node)
            return path[index:]
        if node in visited:
            return None
        visited.add(node)
        path.append(node)
        on_path.add(node)
        for neighbor in sorted(graph.get(node, ()), key=str):
            found = visit(neighbor)
            if found is not None:
                return found
        path.pop()
        on_path.discard(node)
        return None

    return visit(start)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.parent).as_posix()
    except ValueError:
        return path.as_posix()


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def build_lock_model(
    root: Optional[Path] = None,
    sources: Optional[Sequence[SourceFile]] = None,
) -> LockModel:
    """The lock model of the tree under *root* (default: ``src/repro``)."""
    return analyze_concurrency(root=root, sources=sources).model


def analyze_concurrency(
    root: Optional[Path] = None,
    sources: Optional[Sequence[SourceFile]] = None,
) -> ConcurrencyReport:
    """Run the static concurrency pass and return its report."""
    base = root if root is not None else default_root()
    if sources is None:
        sources = load_tree(base)
    analysis = _Analysis(sources, base)
    analysis.run()
    return analysis.finalize()
